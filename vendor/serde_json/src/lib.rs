//! Vendored `serde_json` front-end: `to_string`, `to_string_pretty` and
//! `from_str` over the vendored `serde` traits and JSON model.

pub use serde::json::Value;

/// Serialisation / deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(serde::json::Error);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise to compact JSON. Infallible for the vendored data model,
/// but keeps serde_json's `Result` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = serde::json::JsonSer::new();
    value.json_write(&mut out);
    Ok(out.out)
}

/// Serialise to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = serde::json::JsonSer::pretty();
    value.json_write(&mut out);
    Ok(out.out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text).map_err(Error)?;
    T::json_read(&value).map_err(Error)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Inner {
        xs: Vec<f32>,
        name: String,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    enum Tag {
        Alpha,
        Beta,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Outer {
        tag: Tag,
        inner: Inner,
        count: usize,
        ratio: f64,
        flag: bool,
        maybe: Option<u32>,
        #[serde(skip)]
        scratch: Vec<u8>,
    }

    impl Default for Outer {
        fn default() -> Outer {
            Outer {
                tag: Tag::Beta,
                inner: Inner { xs: vec![0.1, -2.5, 3.0], name: "a\"b\n".into() },
                count: 7,
                ratio: 0.125,
                flag: true,
                maybe: None,
                scratch: vec![1, 2, 3],
            }
        }
    }

    #[test]
    fn derive_round_trip() {
        let v = Outer::default();
        let json = super::to_string(&v).unwrap();
        let back: Outer = super::from_str(&json).unwrap();
        // skip field is dropped on the wire and default-initialised back
        assert!(back.scratch.is_empty());
        assert_eq!(back.tag, v.tag);
        assert_eq!(back.inner, v.inner);
        assert_eq!(back.count, v.count);
        assert_eq!(back.ratio, v.ratio);
        assert_eq!(back.maybe, v.maybe);
        assert!(!json.contains("scratch"));
    }

    #[test]
    fn f32_bits_survive() {
        let xs: Vec<f32> = vec![0.1, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -0.0];
        let json = super::to_string(&xs).unwrap();
        let back: Vec<f32> = super::from_str(&json).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-trips");
        }
    }

    #[test]
    fn errors_name_the_path() {
        let err = super::from_str::<Outer>(r#"{"tag": "Alpha", "count": 1}"#).unwrap_err();
        assert!(err.to_string().contains("inner"), "got: {err}");
        let err = super::from_str::<Tag>("\"Gamma\"").unwrap_err();
        assert!(err.to_string().contains("Gamma"), "got: {err}");
    }

    #[test]
    fn pretty_is_indented() {
        let v = Inner { xs: vec![1.0], name: "n".into() };
        let json = super::to_string_pretty(&v).unwrap();
        assert!(json.contains("\n  \"xs\""), "got: {json}");
        let back: Inner = super::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
