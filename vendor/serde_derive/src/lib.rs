//! Vendored `serde` derive macros, written against `proc_macro` alone
//! (no `syn`/`quote` in the offline container). Supports the two shapes
//! the workspace uses: named-field structs (with `#[serde(skip)]`) and
//! unit-variant enums serialised as their variant-name string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Ser,
    De,
}

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Struct(Vec<Field>),
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let code = match (dir, &shape) {
                (Direction::Ser, Shape::Struct(fields)) => ser_struct(&name, fields),
                (Direction::De, Shape::Struct(fields)) => de_struct(&name, fields),
                (Direction::Ser, Shape::UnitEnum(variants)) => ser_enum(&name, variants),
                (Direction::De, Shape::UnitEnum(variants)) => de_enum(&name, variants),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

/// Parse the derive input down to (type name, shape). Only the subset
/// the workspace needs is accepted; anything else is a compile error
/// with a message naming the limitation.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("serde derive: expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, found {other:?}")),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("serde derive: generics on `{name}` are not supported"));
        }
        other => return Err(format!("serde derive: expected {{...}} body, found {other:?}")),
    };
    if kind == "struct" {
        parse_struct_fields(body).map(|f| (name, Shape::Struct(f)))
    } else {
        parse_unit_variants(body).map(|v| (name, Shape::UnitEnum(v)))
    }
}

/// Advance past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// True when an attribute group is `serde(... skip ...)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn parse_struct_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Leading attributes: note `#[serde(skip)]`, ignore the rest.
        let mut skip = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if attr_is_serde_skip(g) {
                            skip = true;
                        }
                        i += 1;
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(
                        tokens.get(i),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde derive: expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde derive: tuple structs are not supported (near `{name}`)"
                ))
            }
        }
        // Consume the type up to a top-level comma. Generic angle
        // brackets nest, so track their depth.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip doc comments / attributes before the variant.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde derive: expected variant, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde derive: only unit enum variants are supported (`{name}` has data)"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde derive: explicit discriminants are not supported (`{name}`)"
                ))
            }
            None => {}
            other => return Err(format!("serde derive: unexpected token {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

// ------------------------------------------------------------- codegen

fn ser_struct(name: &str, fields: &[Field]) -> String {
    let mut body = String::from("out.begin_obj();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "out.key({n:?});\n::serde::Serialize::json_write(&self.{n}, out);\n",
            n = f.name
        ));
    }
    body.push_str("out.end_obj();\n");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn json_write(&self, out: &mut ::serde::json::JsonSer) {{\n{body}}}\n}}\n"
    )
}

fn de_struct(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
        } else {
            inits.push_str(&format!(
                "{n}: match ::serde::json::find(pairs, {n:?}) {{\n\
                 Some(fv) => ::serde::Deserialize::json_read(fv).map_err(|e| \
                 ::serde::json::Error::msg(format!(\"{name}.{n}: {{e}}\")))?,\n\
                 None => return Err(::serde::json::Error::msg(\
                 \"{name}: missing field `{n}`\")),\n}},\n",
                n = f.name
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn json_read(v: &::serde::json::Value) -> \
         ::core::result::Result<Self, ::serde::json::Error> {{\n\
         let pairs = v.as_object().ok_or_else(|| ::serde::json::Error::msg(\
         format!(\"expected object for {name}, found {{}}\", v.kind())))?;\n\
         ::core::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
    )
}

fn ser_enum(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for v in variants {
        arms.push_str(&format!("{name}::{v} => out.write_str({v:?}),\n"));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn json_write(&self, out: &mut ::serde::json::JsonSer) {{\n\
         match self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn de_enum(name: &str, variants: &[String]) -> String {
    let mut arms = String::new();
    for v in variants {
        arms.push_str(&format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn json_read(v: &::serde::json::Value) -> \
         ::core::result::Result<Self, ::serde::json::Error> {{\n\
         match v {{\n\
         ::serde::json::Value::Str(s) => match s.as_str() {{\n{arms}\
         other => Err(::serde::json::Error::msg(format!(\
         \"unknown {name} variant {{other:?}}\"))),\n}},\n\
         other => Err(::serde::json::Error::msg(format!(\
         \"expected string for {name}, found {{}}\", other.kind()))),\n}}\n}}\n}}\n"
    )
}
