//! `any::<T>()` — full-domain strategies for primitive types and
//! fixed-size arrays of them.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over `T`'s full domain.
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_fill_every_slot() {
        let mut rng = TestRng::from_seed(3);
        let a: [u8; 4] = <[u8; 4]>::arbitrary(&mut rng);
        let b: [u8; 4] = <[u8; 4]>::arbitrary(&mut rng);
        assert_ne!(a, b, "consecutive draws should differ");
    }
}
