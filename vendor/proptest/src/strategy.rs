//! Value-generation strategies. Ranges, tuples and `any::<T>()` all
//! implement [`Strategy`]; the `proptest!` macro samples each argument
//! once per case.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can produce a value for one test case.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let f = rng.unit_f64();
                let v = self.start as f64 + f * (self.end as f64 - self.start as f64);
                // rounding can land exactly on the excluded endpoint
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// String strategies from a small regex subset: literal characters,
/// `[..]` / `[^..]` character classes (with `\n`-style escapes and
/// `a-z` ranges), `.`, and the quantifiers `{m}`, `{m,n}`, `?`, `*`,
/// `+`. Enough for the patterns the workspace's tests use.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Literal(char),
    Dot,
    Class { negated: bool, singles: Vec<char>, ranges: Vec<(char, char)> },
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = parse_atom(&chars, &mut i, pattern);
        let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
        let n = lo + rng.below((hi - lo + 1) as u128) as usize;
        for _ in 0..n {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn parse_atom(chars: &[char], i: &mut usize, pattern: &str) -> Atom {
    match chars[*i] {
        '[' => {
            *i += 1;
            let negated = chars.get(*i) == Some(&'^');
            if negated {
                *i += 1;
            }
            let mut singles = Vec::new();
            let mut ranges = Vec::new();
            while *i < chars.len() && chars[*i] != ']' {
                let c = class_char(chars, i, pattern);
                if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&n| n != ']') {
                    *i += 1;
                    let end = class_char(chars, i, pattern);
                    ranges.push((c, end));
                } else {
                    singles.push(c);
                }
            }
            assert!(chars.get(*i) == Some(&']'), "unterminated class in regex {pattern:?}");
            *i += 1;
            Atom::Class { negated, singles, ranges }
        }
        '.' => {
            *i += 1;
            Atom::Dot
        }
        '\\' => {
            *i += 1;
            let c = escape_char(chars[*i]);
            *i += 1;
            Atom::Literal(c)
        }
        c => {
            *i += 1;
            Atom::Literal(c)
        }
    }
}

fn class_char(chars: &[char], i: &mut usize, pattern: &str) -> char {
    if chars[*i] == '\\' {
        *i += 1;
        assert!(*i < chars.len(), "dangling escape in regex {pattern:?}");
        let c = escape_char(chars[*i]);
        *i += 1;
        c
    } else {
        let c = chars[*i];
        *i += 1;
        c
    }
}

fn escape_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Dot => (0x20 + rng.below(0x5f) as u8) as char,
        Atom::Class { negated: false, singles, ranges } => {
            let range_total: u128 =
                ranges.iter().map(|&(a, b)| (b as u128).saturating_sub(a as u128) + 1).sum();
            let total = singles.len() as u128 + range_total;
            assert!(total > 0, "empty character class");
            let mut pick = rng.below(total);
            if pick < singles.len() as u128 {
                return singles[pick as usize];
            }
            pick -= singles.len() as u128;
            for &(a, b) in ranges {
                let span = (b as u128) - (a as u128) + 1;
                if pick < span {
                    return char::from_u32(a as u32 + pick as u32).expect("range char");
                }
                pick -= span;
            }
            unreachable!()
        }
        Atom::Class { negated: true, singles, ranges } => loop {
            // printable ASCII, rejection-sampled against the exclusions
            let c = (0x20 + rng.below(0x5f) as u8) as char;
            let excluded =
                singles.contains(&c) || ranges.iter().any(|&(a, b)| (a..=b).contains(&c));
            if !excluded {
                return c;
            }
        },
    }
}

/// A fixed value, drawn every case.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (1u16..u16::MAX).sample(&mut rng);
            assert!((1..u16::MAX).contains(&v));
            let v = (1u8..=255).sample(&mut rng);
            assert!(v >= 1);
            let v = (-1e6f32..1e6).sample(&mut rng);
            assert!((-1e6..1e6).contains(&v));
        }
    }

    #[test]
    fn regex_strategy_matches_its_own_pattern() {
        let mut rng = TestRng::from_seed(21);
        for _ in 0..200 {
            let s = "[^\\n\"\\\\]{1,40}".sample(&mut rng);
            assert!((1..=40).contains(&s.chars().count()), "len of {s:?}");
            assert!(!s.contains(['\n', '"', '\\']), "exclusions hold in {s:?}");
            let t = "[a-z]{3}-[0-9]{2}".sample(&mut rng);
            assert_eq!(t.len(), 6);
            assert!(t.chars().take(3).all(|c| c.is_ascii_lowercase()));
            assert_eq!(t.as_bytes()[3], b'-');
            assert!(t.chars().skip(4).all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_seed(9);
        let (a, b, c) = (0u32..10, 5u64..6, -1.0f32..1.0).sample(&mut rng);
        assert!(a < 10);
        assert_eq!(b, 5);
        assert!((-1.0..1.0).contains(&c));
    }
}
