//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Supports what the workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(..)]`), integer/float range
//! strategies, `any::<T>()`, `proptest::collection::vec`, tuple
//! strategies, and the `prop_assert*` macros. Case generation is
//! deterministic (seeded from the test name + case index) so failures
//! reproduce; there is no shrinking — the failing case's seed is
//! reported instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skip the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assume failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Entry macro: a block of `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __pt_rng);)*
                    let __pt_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| { $body ::core::result::Result::Ok(()) })();
                    __pt_result
                });
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fail the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}
