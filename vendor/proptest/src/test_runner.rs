//! Deterministic case runner: each case's RNG is seeded from the test
//! name and case index, so a failure reproduces on every run.

use std::fmt;

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or assume-rejected) property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
    reject: bool,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into(), reject: false }
    }

    /// Build a `prop_assume!` rejection — the runner skips the case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into(), reject: true }
    }

    /// True for `prop_assume!` rejections.
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// SplitMix64 generator — more than adequate for property-test case
/// generation, and trivially reproducible from the reported seed.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `f` once per case, panicking (with the reproducing seed) on the
/// first failure — error or panic — a test harness surfaces either.
pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let seed = fnv64(name.as_bytes()) ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = f(&mut rng) {
            if e.is_reject() {
                continue;
            }
            panic!("proptest `{name}` failed at case {case} (seed {seed:#018x}): {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_seed() {
        run(&ProptestConfig::with_cases(4), "demo", |_rng| Err(TestCaseError::fail("boom")));
    }
}
