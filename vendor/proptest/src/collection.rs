//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Half-open length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of `element` draws.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u128;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 3);
        assert_eq!(fixed.sample(&mut rng).len(), 3);
    }

    #[test]
    fn nested_vecs_compose() {
        let mut rng = TestRng::from_seed(13);
        let s = vec(vec(any::<u8>(), 0..3), 1..4);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty());
    }
}
