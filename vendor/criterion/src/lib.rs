//! Vendored, dependency-free subset of the `criterion` API: enough for
//! the workspace's `harness = false` benches to compile and produce
//! useful wall-clock numbers. No statistics, plots or reports — each
//! benchmark runs a short calibrated loop and prints a mean time per
//! iteration (with derived throughput when one is set).

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value pass-through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration workload scale, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    /// Measurement budget per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// No-op for CLI-arg compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measure_for;
        run_bench(&name.into(), None, budget, f);
        self
    }

    /// No-op finaliser for API compatibility.
    pub fn final_summary(&self) {}
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored runner calibrates
    /// iteration counts from wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(2));
        self
    }

    /// Set per-iteration workload for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_bench(&label, self.throughput, self.criterion.measure_for, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(label: &str, throughput: Option<Throughput>, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: run once, scale the iteration count to fill the budget.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("bench {label:<48} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs() {
        let mut c = Criterion { measure_for: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        let mut count = 0u64;
        g.throughput(Throughput::Elements(10)).bench_function("f", |b| {
            b.iter(|| count = count.wrapping_add(1));
        });
        g.finish();
        assert!(count > 0);
    }
}
