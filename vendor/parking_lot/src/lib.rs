//! Vendored, dependency-free subset of the `parking_lot` API, backed by
//! `std::sync`. Matches the observable semantics the workspace relies
//! on: `lock()` returns a guard directly (no `Result`) and a panic
//! while holding the lock does not poison it for later callers.

use std::sync::TryLockError;

/// Mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock must not stay poisoned");
    }
}
