//! The standard RNG: ChaCha with 12 rounds, matching `rand 0.8`'s
//! `StdRng` (`rand_chacha 0.3::ChaCha12Rng`) stream exactly: 64-bit
//! block counter starting at zero, zero nonce, four blocks buffered per
//! refill, words consumed in RFC 7539 order.

use crate::{RngCore, SeedableRng};

const ROUNDS: usize = 12;
/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;
/// Blocks generated per refill (matches `rand_chacha`'s 4-block buffer;
/// the buffer size is observable through `next_u64`'s straddling case).
const BUF_BLOCKS: usize = 4;
const BUF_WORDS: usize = BLOCK_WORDS * BUF_BLOCKS;

/// ChaCha12-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Nonce words (state words 14..16).
    nonce: [u32; 2],
    /// Buffered output words.
    buf: [u32; BUF_WORDS],
    /// Next unconsumed index into `buf`; `BUF_WORDS` means empty.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
    }

    fn refill(&mut self) {
        for b in 0..BUF_BLOCKS {
            let counter = self.counter.wrapping_add(b as u64);
            let start = b * BLOCK_WORDS;
            let mut tmp = [0u32; BLOCK_WORDS];
            self.block(counter, &mut tmp);
            self.buf[start..start + BLOCK_WORDS].copy_from_slice(&tmp);
        }
        self.counter = self.counter.wrapping_add(BUF_BLOCKS as u64);
    }

    fn generate_and_set(&mut self, index: usize) {
        self.refill();
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng { key, counter: 0, nonce: [0, 0], buf: [0; BUF_WORDS], index: BUF_WORDS }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // Mirrors rand_core's BlockRng::next_u64, including the case
        // where the two halves straddle a buffer refill.
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            u64::from(self.buf[index]) | u64::from(self.buf[index + 1]) << 32
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            u64::from(self.buf[0]) | u64::from(self.buf[1]) << 32
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate_and_set(1);
            lo | u64::from(self.buf[0]) << 32
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Whole words are consumed little-endian; a partial trailing
        // word discards its unused bytes (BlockRng semantics).
        let mut written = 0;
        while written < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let word = self.buf[self.index].to_le_bytes();
            self.index += 1;
            let n = (dest.len() - written).min(4);
            dest[written..written + n].copy_from_slice(&word[..n]);
            written += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ietf_chacha_structure() {
        // The same seed must give the same stream; advancing by u32 or
        // u64 must agree on the underlying words.
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), lo | hi << 32);
    }

    #[test]
    fn straddling_next_u64_consumes_last_word() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        // Drain all but one word.
        for _ in 0..super::BUF_WORDS - 1 {
            a.next_u32();
            b.next_u32();
        }
        let last = b.next_u32() as u64;
        let first_of_next = b.next_u32() as u64;
        assert_eq!(a.next_u64(), last | first_of_next << 32);
    }
}
