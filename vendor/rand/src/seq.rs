//! Slice shuffling/choosing, matching `rand 0.8`'s `SliceRandom`
//! (Fisher–Yates from the top, 32-bit index sampling for small slices).

use crate::{Rng, RngCore};

/// Random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements must move something");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
