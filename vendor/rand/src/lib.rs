//! Vendored, dependency-free subset of the `rand 0.8` API.
//!
//! The build container has no network access and no crates-io mirror,
//! so the workspace vendors the exact slice of `rand` it uses. The
//! algorithms are bit-compatible re-implementations of `rand 0.8.5` +
//! `rand_chacha 0.3` (`StdRng` = ChaCha with 12 rounds, PCG32-filled
//! `seed_from_u64`, Lemire-style integer ranges, 24/53-bit float
//! conversion), so seeded streams match what the repo's datasets and
//! test thresholds were originally tuned against.

pub mod rngs;
pub mod seq;

/// Low-level RNG interface (the `rand_core` subset the workspace uses).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full-size seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG32 filler
    /// as `rand_core 0.6`.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let block = pcg32(&mut state);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: p scaled into a u64 threshold.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.gen::<u64>() < p_int
    }

    /// Fill `dest` with random data (byte buffers use `fill_bytes`).
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

/// Buffer types that [`Rng::fill`] can populate.
pub trait Fill {
    /// Fill `self` from the generator.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" (full-range / unit-interval)
/// distribution.
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_from_u32 {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! std_from_u64 {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_from_u32!(u8, i8, u16, i16, u32, i32);
std_from_u64!(u64, i64, usize, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Sign test on the most significant bit, like rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // Multiply-based [0,1) with 24 bits of precision.
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Multiply-based [0,1) with 53 bits of precision.
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform range sampler.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening multiply helper (Lemire rejection sampling).
trait WideMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}
impl WideMul for u32 {
    fn wmul(self, other: u32) -> (u32, u32) {
        let t = self as u64 * other as u64;
        ((t >> 32) as u32, t as u32)
    }
}
impl WideMul for u64 {
    fn wmul(self, other: u64) -> (u64, u64) {
        let t = self as u128 * other as u128;
        ((t >> 64) as u64, t as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "sample_single_inclusive: low > high");
                let range =
                    (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $u_large;
                if range == 0 {
                    // Span is the full integer range.
                    return <$ty as SampleStandard>::sample_standard(rng);
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    // Small types: conservative modulo zone.
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$u_large as SampleStandard>::sample_standard(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(i8, u8, u32);
uniform_int_impl!(i16, u16, u32);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(i64, u64, u64);
uniform_int_impl!(isize, usize, u64);
uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(usize, usize, u64);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bits:expr, $bias:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                debug_assert!(low < high, "sample_single: low >= high");
                let scale = high - low;
                loop {
                    // Generate a value in [1, 2) by pasting random
                    // fraction bits under a fixed exponent.
                    let bits = <$uty as SampleStandard>::sample_standard(rng);
                    let value1_2 = <$ty>::from_bits(
                        (bits >> $bits_to_discard) | (($bias as $uty) << $exp_bits),
                    );
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                // Floats don't distinguish inclusive ranges in rand 0.8
                // beyond allowing low == high.
                if low == high {
                    return low;
                }
                Self::sample_single(low, high, rng)
            }
        }
    };
}

uniform_float_impl!(f32, u32, 9, 23, 127u32);
uniform_float_impl!(f64, u64, 12, 52, 1023u64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn chacha_reference_stream() {
        // RFC 8439 test vector structure check: with an all-zero key the
        // first block of ChaCha must differ from the second, and a
        // one-bit key change must change the stream.
        let mut a = StdRng::from_seed([0u8; 32]);
        let mut key = [0u8; 32];
        key[0] = 1;
        let mut b = StdRng::from_seed(key);
        let first: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let second: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_ne!(first, second);
        assert_ne!(&first[..16], &first[16..], "blocks must differ");
    }
}
