//! Vendored, dependency-free subset of the `serde` API.
//!
//! The build container has no network access, so the workspace vendors
//! the slice of serde it uses: `Serialize`/`Deserialize` traits over a
//! JSON-only data model, derive macros for named-field structs and
//! unit-variant enums (including `#[serde(skip)]`), and the primitive /
//! `Vec` / `Option` / `String` impls the repo's checkpoint and record
//! types need. `serde_json` (also vendored) drives these traits.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Serialise into the JSON writer. The derive macro generates
/// field-by-field calls; `serde_json::to_string` drives it.
pub trait Serialize {
    /// Append `self`'s JSON encoding to the writer.
    fn json_write(&self, out: &mut json::JsonSer);
}

/// Deserialise from a parsed JSON value tree.
pub trait Deserialize: Sized {
    /// Decode `self` from a JSON value; any mismatch is an error.
    fn json_read(v: &json::Value) -> Result<Self, json::Error>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut json::JsonSer) {
                out.write_int(*self as i128);
            }
        }
        impl Deserialize for $t {
            fn json_read(v: &json::Value) -> Result<$t, json::Error> {
                match v {
                    json::Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        json::Error::msg(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(json::Error::msg(format!(
                        "expected integer for {}, found {}",
                        stringify!($t),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.write_f64_like(f64::from(*self), !self.is_finite());
    }
}
impl Deserialize for f32 {
    fn json_read(v: &json::Value) -> Result<f32, json::Error> {
        match v {
            json::Value::Float(f) => Ok(*f as f32),
            json::Value::Int(i) => Ok(*i as f32),
            other => Err(json::Error::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.write_f64_like(*self, !self.is_finite());
    }
}
impl Deserialize for f64 {
    fn json_read(v: &json::Value) -> Result<f64, json::Error> {
        match v {
            json::Value::Float(f) => Ok(*f),
            json::Value::Int(i) => Ok(*i as f64),
            other => Err(json::Error::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for bool {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.write_bool(*self);
    }
}
impl Deserialize for bool {
    fn json_read(v: &json::Value) -> Result<bool, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(json::Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.write_str(self);
    }
}
impl Serialize for str {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.write_str(self);
    }
}
impl Deserialize for String {
    fn json_read(v: &json::Value) -> Result<String, json::Error> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            other => Err(json::Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.begin_arr();
        for item in self {
            out.item();
            item.json_write(out);
        }
        out.end_arr();
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn json_read(v: &json::Value) -> Result<Vec<T>, json::Error> {
        match v {
            json::Value::Array(items) => items.iter().map(T::json_read).collect(),
            other => Err(json::Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut json::JsonSer) {
        match self {
            Some(v) => v.json_write(out),
            None => out.write_null(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn json_read(v: &json::Value) -> Result<Option<T>, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::json_read(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut json::JsonSer) {
        (**self).json_write(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut json::JsonSer) {
        out.begin_arr();
        for item in self {
            out.item();
            item.json_write(out);
        }
        out.end_arr();
    }
}
