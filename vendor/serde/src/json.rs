//! JSON value tree, parser and writer shared by the vendored `serde`
//! and `serde_json` crates.

use std::fmt;

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Number written without `.`/exponent, preserved exactly.
    Int(i128),
    /// Number with a fractional part or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs (duplicate keys keep first).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow the object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// First value under `key` in an object's pair list.
pub fn find<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// JSON error (parse or shape mismatch).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build from a message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------- writer

/// Streaming JSON writer with optional 2-space pretty printing.
pub struct JsonSer {
    /// Accumulated output.
    pub out: String,
    pretty: bool,
    /// Per-container "has at least one element" flags.
    stack: Vec<bool>,
    /// Set right after a key is written (suppresses indent before the
    /// value).
    after_key: bool,
}

impl JsonSer {
    /// Compact writer.
    pub fn new() -> JsonSer {
        JsonSer { out: String::new(), pretty: false, stack: Vec::new(), after_key: false }
    }

    /// Pretty writer (2-space indent).
    pub fn pretty() -> JsonSer {
        JsonSer { out: String::new(), pretty: true, stack: Vec::new(), after_key: false }
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    fn before_value(&mut self) {
        if self.after_key {
            self.after_key = false;
        }
    }

    /// Start an object (`{`).
    pub fn begin_obj(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Write a key inside an object; call before the value.
    pub fn key(&mut self, k: &str) {
        let has_items = self.stack.last_mut().expect("key outside object");
        if *has_items {
            self.out.push(',');
        }
        *has_items = true;
        if self.pretty {
            self.newline_indent();
        }
        write_escaped(&mut self.out, k);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.after_key = true;
    }

    /// Close an object (`}`).
    pub fn end_obj(&mut self) {
        let had_items = self.stack.pop().expect("end_obj without begin_obj");
        if self.pretty && had_items {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Start an array (`[`).
    pub fn begin_arr(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Mark the start of the next array element.
    pub fn item(&mut self) {
        let has_items = self.stack.last_mut().expect("item outside array");
        if *has_items {
            self.out.push(',');
        }
        *has_items = true;
        if self.pretty {
            self.newline_indent();
        }
        self.after_key = true;
    }

    /// Close an array (`]`).
    pub fn end_arr(&mut self) {
        let had_items = self.stack.pop().expect("end_arr without begin_arr");
        if self.pretty && had_items {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// `null`
    pub fn write_null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// `true` / `false`
    pub fn write_bool(&mut self, b: bool) {
        self.before_value();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Integer.
    pub fn write_int(&mut self, v: i128) {
        self.before_value();
        let mut buf = [0u8; 40];
        let mut n = v;
        let neg = n < 0;
        let mut i = buf.len();
        loop {
            i -= 1;
            buf[i] = b'0' + (n % 10).unsigned_abs() as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        if neg {
            i -= 1;
            buf[i] = b'-';
        }
        self.out.push_str(std::str::from_utf8(&buf[i..]).expect("digits are utf8"));
    }

    /// Float using Rust's shortest round-trip formatting; serde_json
    /// writes non-finite values as `null`, and so does this.
    pub fn write_f64_like(&mut self, v: f64, non_finite: bool) {
        self.before_value();
        if non_finite || !v.is_finite() {
            self.out.push_str("null");
            return;
        }
        let start = self.out.len();
        use fmt::Write;
        write!(self.out, "{v}").expect("string write");
        // Match serde_json's "always a float" shape: integral values get
        // a trailing `.0` (Display prints `1`, serde_json prints `1.0`).
        if !self.out[start..].contains(['.', 'e', 'E']) {
            self.out.push_str(".0");
        }
    }

    /// String with JSON escaping.
    pub fn write_str(&mut self, s: &str) {
        self.before_value();
        write_escaped(&mut self.out, s);
    }
}

impl Default for JsonSer {
    fn default() -> JsonSer {
        JsonSer::new()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting ceiling; the deepest workspace structure is ~6 levels.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!("expected ',' or ']' at {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::msg(format!("expected ',' or '}}' at {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!("unexpected byte '{}' at {}", b as char, self.pos))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("non-utf8 number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number '{text}': {e}")))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Out-of-range integers degrade to float like serde_json's
                // arbitrary-precision fallback would for f64 targets.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error::msg(format!("bad number '{text}': {e}"))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let len = utf8_len(b).ok_or_else(|| Error::msg("invalid utf8 in string"))?;
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated utf8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("non-utf8 \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(
            find(obj, "a"),
            Some(&Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Int(-3)]))
        );
        assert_eq!(find(obj, "b"), Some(&Value::Str("x\ny".into())));
        assert_eq!(find(obj, "c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn float_formatting_keeps_round_trip() {
        let mut s = JsonSer::new();
        s.write_f64_like(1.0, false);
        assert_eq!(s.out, "1.0");
        let mut s = JsonSer::new();
        s.write_f64_like(f64::NAN, true);
        assert_eq!(s.out, "null");
        let x = 0.1f32;
        let mut s = JsonSer::new();
        s.write_f64_like(f64::from(x), false);
        // f32 via f64 Display must parse back to the same f32
        assert_eq!(s.out.parse::<f64>().unwrap() as f32, x);
    }
}
