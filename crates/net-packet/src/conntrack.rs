//! TCP connection tracking: follow the three-way handshake and
//! teardown of a flow's packets, expose the connection state and the
//! handshake RTT estimate.

use crate::frame::{ParsedFrame, TransportInfo};

/// TCP connection states (simplified conntrack lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No packet seen yet.
    None,
    /// SYN seen from the initiator.
    SynSent,
    /// SYN-ACK seen from the responder.
    SynReceived,
    /// Handshake complete (ACK after SYN-ACK, or data on both sides).
    Established,
    /// FIN seen from one side.
    FinWait,
    /// FIN seen from both sides (or RST).
    Closed,
}

/// Tracks one TCP connection from its packet sequence.
#[derive(Debug, Clone)]
pub struct ConnTracker {
    state: TcpState,
    syn_ts: Option<f64>,
    synack_ts: Option<f64>,
    ack_ts: Option<f64>,
    fin_seen_fwd: bool,
    fin_seen_bwd: bool,
    packets: usize,
    bytes: usize,
}

impl Default for ConnTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnTracker {
    /// Fresh tracker.
    pub fn new() -> ConnTracker {
        ConnTracker {
            state: TcpState::None,
            syn_ts: None,
            synack_ts: None,
            ack_ts: None,
            fin_seen_fwd: false,
            fin_seen_bwd: false,
            packets: 0,
            bytes: 0,
        }
    }

    /// Feed one packet (parsed + timestamp + direction).
    pub fn push(&mut self, parsed: &ParsedFrame, ts: f64, from_client: bool) {
        let TransportInfo::Tcp { flags, .. } = parsed.transport else {
            return;
        };
        self.packets += 1;
        self.bytes += parsed.frame_len;
        let syn = flags & 0x02 != 0;
        let ack = flags & 0x10 != 0;
        let fin = flags & 0x01 != 0;
        let rst = flags & 0x04 != 0;
        if rst {
            self.state = TcpState::Closed;
            return;
        }
        match (syn, ack) {
            (true, false) => {
                self.state = TcpState::SynSent;
                self.syn_ts = Some(ts);
            }
            (true, true) => {
                if self.state == TcpState::SynSent {
                    self.state = TcpState::SynReceived;
                    self.synack_ts = Some(ts);
                }
            }
            _ => {
                if self.state == TcpState::SynReceived && ack {
                    self.state = TcpState::Established;
                    self.ack_ts = Some(ts);
                } else if self.state == TcpState::None {
                    // mid-stream capture (e.g. handshake-stripped
                    // CSTNET flows): treat as established
                    self.state = TcpState::Established;
                }
            }
        }
        if fin {
            if from_client {
                self.fin_seen_fwd = true;
            } else {
                self.fin_seen_bwd = true;
            }
            self.state = if self.fin_seen_fwd && self.fin_seen_bwd {
                TcpState::Closed
            } else {
                TcpState::FinWait
            };
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Handshake round-trip estimate: SYN→SYN-ACK plus SYN-ACK→ACK
    /// (the full 3-way time), if the handshake was observed.
    pub fn handshake_rtt(&self) -> Option<f64> {
        Some(self.ack_ts? - self.syn_ts?)
    }

    /// SYN → SYN-ACK latency (server-side distance), if observed.
    pub fn syn_synack_latency(&self) -> Option<f64> {
        Some(self.synack_ts? - self.syn_ts?)
    }

    /// Packets seen.
    pub fn packets(&self) -> usize {
        self.packets
    }

    /// Bytes seen.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FrameBuilder;
    use crate::tcp::TcpFlags;

    fn parse(frame: &[u8]) -> ParsedFrame {
        ParsedFrame::parse(frame).unwrap()
    }

    fn packet(flags: TcpFlags) -> Vec<u8> {
        FrameBuilder::tcp_ipv4_default().flags(flags).build()
    }

    #[test]
    fn full_lifecycle() {
        let mut c = ConnTracker::new();
        assert_eq!(c.state(), TcpState::None);
        c.push(&parse(&packet(TcpFlags::SYN)), 0.0, true);
        assert_eq!(c.state(), TcpState::SynSent);
        c.push(&parse(&packet(TcpFlags::SYN | TcpFlags::ACK)), 0.03, false);
        assert_eq!(c.state(), TcpState::SynReceived);
        c.push(&parse(&packet(TcpFlags::ACK)), 0.05, true);
        assert_eq!(c.state(), TcpState::Established);
        assert!((c.handshake_rtt().unwrap() - 0.05).abs() < 1e-9);
        assert!((c.syn_synack_latency().unwrap() - 0.03).abs() < 1e-9);
        c.push(&parse(&packet(TcpFlags::FIN | TcpFlags::ACK)), 1.0, true);
        assert_eq!(c.state(), TcpState::FinWait);
        c.push(&parse(&packet(TcpFlags::FIN | TcpFlags::ACK)), 1.1, false);
        assert_eq!(c.state(), TcpState::Closed);
        assert_eq!(c.packets(), 5);
    }

    #[test]
    fn rst_closes_immediately() {
        let mut c = ConnTracker::new();
        c.push(&parse(&packet(TcpFlags::SYN)), 0.0, true);
        c.push(&parse(&packet(TcpFlags::RST)), 0.1, false);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn midstream_capture_is_established() {
        let mut c = ConnTracker::new();
        c.push(&parse(&packet(TcpFlags::PSH | TcpFlags::ACK)), 0.0, true);
        assert_eq!(c.state(), TcpState::Established);
        assert!(c.handshake_rtt().is_none());
    }

    #[test]
    fn synthetic_flow_tracks_cleanly() {
        use rand::SeedableRng;
        // Track a generator flow end-to-end: must establish and close,
        // with a positive handshake RTT.
        let profile = super::test_support::tls_profile();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let flow = super::test_support::synth(&profile, &mut rng);
        let mut c = ConnTracker::new();
        for p in &flow {
            let parsed = ParsedFrame::parse(&p.1).unwrap();
            c.push(&parsed, p.0, p.2);
        }
        assert_eq!(c.state(), TcpState::Closed);
        let rtt = c.handshake_rtt().expect("handshake observed");
        assert!(rtt > 0.0 && rtt < 1.0, "rtt {rtt}");
    }
}

/// Test-only helpers that avoid a circular dev-dependency on
/// `traffic-synth` (which depends on this crate).
#[cfg(test)]
mod test_support {
    /// Minimal TLS-like flow: handshake, two data packets, teardown —
    /// hand-built with the frame builder.
    #[allow(clippy::unused_unit)]
    pub fn tls_profile() {}

    /// Returns (ts, frame, from_client) triples.
    pub fn synth(_: &(), rng: &mut rand::rngs::StdRng) -> Vec<(f64, Vec<u8>, bool)> {
        use crate::builder::FrameBuilder;
        use crate::tcp::TcpFlags;
        use rand::Rng;
        let isn_c: u32 = rng.gen();
        let isn_s: u32 = rng.gen();
        let mk = |flags: TcpFlags, seq: u32, ack: u32, _from_client: bool, payload: usize| {
            let b = FrameBuilder::tcp_ipv4_default()
                .flags(flags)
                .seq_ack(seq, ack)
                .payload(vec![0xaa; payload]);
            b.build()
        };
        vec![
            (0.00, mk(TcpFlags::SYN, isn_c, 0, true, 0), true),
            (0.02, mk(TcpFlags::SYN | TcpFlags::ACK, isn_s, isn_c + 1, false, 0), false),
            (0.04, mk(TcpFlags::ACK, isn_c + 1, isn_s + 1, true, 0), true),
            (0.05, mk(TcpFlags::PSH | TcpFlags::ACK, isn_c + 1, isn_s + 1, true, 100), true),
            (0.08, mk(TcpFlags::PSH | TcpFlags::ACK, isn_s + 1, isn_c + 101, false, 500), false),
            (0.10, mk(TcpFlags::FIN | TcpFlags::ACK, isn_c + 101, isn_s + 501, true, 0), true),
            (0.12, mk(TcpFlags::FIN | TcpFlags::ACK, isn_s + 501, isn_c + 102, false, 0), false),
        ]
    }
}
