//! Frame-level protocol identification, the primitive behind the
//! dataset-cleaning filters (paper §4.1 / Table 13).
//!
//! Mirrors how the paper's Tshark filter superset labels traffic:
//! link-layer types, IP protocol numbers, and well-known ports.

use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::ipv6::Ipv6Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;

/// Identified protocol of a raw Ethernet frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// TCP carrying application traffic (incl. TLS).
    Tcp,
    /// UDP carrying application traffic.
    Udp,
    /// ARP (network-management family).
    Arp,
    /// ICMPv4/v6 (network-management family).
    Icmp,
    /// IGMP (network-management family).
    Igmp,
    /// DHCP (network-management family).
    Dhcp,
    /// mDNS (link-local family).
    Mdns,
    /// LLMNR (link-local family).
    Llmnr,
    /// NBNS (link-local family).
    Nbns,
    /// SSDP (service-management family).
    Ssdp,
    /// NTP (network-time family).
    Ntp,
    /// STUN (NAT family).
    Stun,
    /// DNS on port 53 (treated as application-relevant traffic).
    Dns,
    /// Anything unrecognised.
    Other,
}

impl ProtocolId {
    /// Table-13 family name used in the cleaning report.
    pub fn family(&self) -> &'static str {
        match self {
            ProtocolId::Tcp | ProtocolId::Udp | ProtocolId::Dns => "application",
            ProtocolId::Arp | ProtocolId::Icmp | ProtocolId::Igmp | ProtocolId::Dhcp => {
                "network management"
            }
            ProtocolId::Mdns | ProtocolId::Llmnr | ProtocolId::Nbns => "link-local",
            ProtocolId::Ssdp => "service management",
            ProtocolId::Ntp => "network time",
            ProtocolId::Stun => "nat",
            ProtocolId::Other => "others",
        }
    }

    /// True if the paper's filter superset removes this protocol before
    /// classification (everything that is not application traffic).
    pub fn is_spurious(&self) -> bool {
        !matches!(self, ProtocolId::Tcp | ProtocolId::Udp | ProtocolId::Dns)
    }
}

fn classify_udp_ports(src: u16, dst: u16) -> ProtocolId {
    let port_match = |p: u16| src == p || dst == p;
    if port_match(5353) {
        ProtocolId::Mdns
    } else if port_match(5355) {
        ProtocolId::Llmnr
    } else if port_match(137) || port_match(138) {
        ProtocolId::Nbns
    } else if port_match(67) || port_match(68) {
        ProtocolId::Dhcp
    } else if port_match(1900) {
        ProtocolId::Ssdp
    } else if port_match(123) {
        ProtocolId::Ntp
    } else if port_match(3478) || port_match(5349) {
        ProtocolId::Stun
    } else if port_match(53) {
        ProtocolId::Dns
    } else {
        ProtocolId::Udp
    }
}

/// Identify the protocol of a raw Ethernet frame.
///
/// Unparseable frames are classified as [`ProtocolId::Other`] and thus
/// filtered by the cleaning stage — matching the paper's stance that
/// only well-formed application traffic should reach the classifier.
pub fn identify(frame: &[u8]) -> ProtocolId {
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return ProtocolId::Other;
    };
    match eth.ethertype() {
        EtherType::Arp => ProtocolId::Arp,
        EtherType::Ipv4 => {
            let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
                return ProtocolId::Other;
            };
            match ip.protocol() {
                IpProtocol::Icmp => ProtocolId::Icmp,
                IpProtocol::Igmp => ProtocolId::Igmp,
                IpProtocol::Tcp => {
                    if TcpSegment::new_checked(ip.payload()).is_ok() {
                        ProtocolId::Tcp
                    } else {
                        ProtocolId::Other
                    }
                }
                IpProtocol::Udp => match UdpDatagram::new_checked(ip.payload()) {
                    Ok(udp) => classify_udp_ports(udp.src_port(), udp.dst_port()),
                    Err(_) => ProtocolId::Other,
                },
                _ => ProtocolId::Other,
            }
        }
        EtherType::Ipv6 => {
            let Ok(ip) = Ipv6Packet::new_checked(eth.payload()) else {
                return ProtocolId::Other;
            };
            match ip.next_header() {
                IpProtocol::Icmpv6 => ProtocolId::Icmp,
                IpProtocol::Tcp => {
                    if TcpSegment::new_checked(ip.payload()).is_ok() {
                        ProtocolId::Tcp
                    } else {
                        ProtocolId::Other
                    }
                }
                IpProtocol::Udp => match UdpDatagram::new_checked(ip.payload()) {
                    Ok(udp) => classify_udp_ports(udp.src_port(), udp.dst_port()),
                    Err(_) => ProtocolId::Other,
                },
                _ => ProtocolId::Other,
            }
        }
        EtherType::Other(_) => ProtocolId::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FrameBuilder;

    #[test]
    fn tcp_frame_is_application() {
        let f = FrameBuilder::tcp_ipv4_default().build();
        assert_eq!(identify(&f), ProtocolId::Tcp);
        assert!(!ProtocolId::Tcp.is_spurious());
    }

    #[test]
    fn garbage_is_other() {
        assert_eq!(identify(&[0u8; 5]), ProtocolId::Other);
        assert_eq!(identify(&[0xffu8; 64]), ProtocolId::Other);
        assert!(ProtocolId::Other.is_spurious());
    }

    #[test]
    fn families_cover_table13() {
        assert_eq!(ProtocolId::Mdns.family(), "link-local");
        assert_eq!(ProtocolId::Dhcp.family(), "network management");
        assert_eq!(ProtocolId::Stun.family(), "nat");
        assert_eq!(ProtocolId::Ssdp.family(), "service management");
        assert_eq!(ProtocolId::Ntp.family(), "network time");
    }

    #[test]
    fn dns_kept_as_application() {
        assert!(!ProtocolId::Dns.is_spurious());
    }
}
