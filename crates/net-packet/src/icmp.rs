//! ICMPv4 / ICMPv6 message views and serialisers.

use crate::checksum;
use crate::error::{Error, Result};

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMPv4 message types relevant to the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Other type value.
    Other(u8),
}

impl From<u8> for IcmpType {
    fn from(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            o => IcmpType::Other(o),
        }
    }
}

impl From<IcmpType> for u8 {
    fn from(v: IcmpType) -> u8 {
        match v {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(o) => o,
        }
    }
}

/// A read view over an ICMPv4 message.
#[derive(Debug, Clone, Copy)]
pub struct IcmpMessage<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpMessage<T> {
    /// Wrap a buffer, validating minimal length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Message type.
    pub fn msg_type(&self) -> IcmpType {
        self.buffer.as_ref()[0].into()
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Echo identifier (for echo messages).
    pub fn echo_id(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Echo sequence number (for echo messages).
    pub fn echo_seq(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Data after the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Verify the message checksum (plain RFC 1071 over the message).
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

/// Serialise an ICMPv4 echo message with a valid checksum.
pub fn emit_echo(ty: IcmpType, id: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; HEADER_LEN + payload.len()];
    out[0] = ty.into();
    out[4..6].copy_from_slice(&id.to_be_bytes());
    out[6..8].copy_from_slice(&seq.to_be_bytes());
    out[HEADER_LEN..].copy_from_slice(payload);
    let ck = checksum::checksum(&out);
    out[2..4].copy_from_slice(&ck.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let raw = emit_echo(IcmpType::EchoRequest, 0x1234, 7, b"ping");
        let m = IcmpMessage::new_checked(&raw[..]).unwrap();
        assert_eq!(m.msg_type(), IcmpType::EchoRequest);
        assert_eq!(m.code(), 0);
        assert_eq!(m.echo_id(), 0x1234);
        assert_eq!(m.echo_seq(), 7);
        assert_eq!(m.payload(), b"ping");
        assert!(m.verify_checksum());
    }

    #[test]
    fn corrupt_detected() {
        let mut raw = emit_echo(IcmpType::EchoReply, 1, 1, &[]);
        raw[4] ^= 1;
        let m = IcmpMessage::new_checked(&raw[..]).unwrap();
        assert!(!m.verify_checksum());
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(IcmpMessage::new_checked(&[0u8; 7][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn type_round_trip() {
        for t in [0u8, 3, 8, 11, 42] {
            assert_eq!(u8::from(IcmpType::from(t)), t);
        }
    }
}
