//! IPv4 packet view and serialiser.

use crate::checksum;
use crate::error::{Error, Result};
use std::fmt;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Construct from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self([a, b, c, d])
    }

    /// True for 224.0.0.0/4.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0xf0 == 0xe0
    }

    /// True for 255.255.255.255.
    pub fn is_broadcast(&self) -> bool {
        self.0 == [255; 4]
    }

    /// True for RFC 1918 private ranges.
    pub fn is_private(&self) -> bool {
        matches!(self.0, [10, ..])
            || matches!(self.0, [172, b, ..] if (16..32).contains(&b))
            || matches!(self.0, [192, 168, ..])
    }

    /// The address as a big-endian u32.
    pub fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Build from a big-endian u32.
    pub fn from_u32(v: u32) -> Self {
        Self(v.to_be_bytes())
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol numbers used by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1)
    Icmp,
    /// IGMP (2)
    Igmp,
    /// TCP (6)
    Tcp,
    /// UDP (17)
    Udp,
    /// ICMPv6 (58)
    Icmpv6,
    /// Any other protocol number.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            2 => IpProtocol::Igmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            58 => IpProtocol::Icmpv6,
            o => IpProtocol::Other(o),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Icmp => 1,
            IpProtocol::Igmp => 2,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Icmpv6 => 58,
            IpProtocol::Other(o) => o,
        }
    }
}

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// A read/write view over an IPv4 packet.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let pkt = Self { buffer };
        if pkt.version() != 4 {
            return Err(Error::BadVersion);
        }
        let ihl = pkt.header_len();
        if ihl < MIN_HEADER_LEN || ihl > len {
            return Err(Error::BadLength);
        }
        if (pkt.total_length() as usize) < ihl || pkt.total_length() as usize > len {
            return Err(Error::BadLength);
        }
        Ok(pkt)
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// DSCP/ECN byte (historically "type of service").
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total length field.
    pub fn total_length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Flags (3 bits): bit 1 = DF, bit 2 = MF.
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[6] >> 5
    }

    /// True if the Don't Fragment flag is set.
    pub fn dont_fragment(&self) -> bool {
        self.flags() & 0b010 != 0
    }

    /// True if the More Fragments flag is set.
    pub fn more_fragments(&self) -> bool {
        self.flags() & 0b001 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn fragment_offset(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]]) & 0x1fff
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Encapsulated protocol.
    pub fn protocol(&self) -> IpProtocol {
        self.buffer.as_ref()[9].into()
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[16], b[17], b[18], b[19]])
    }

    /// Options bytes (empty when IHL = 5).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[MIN_HEADER_LEN..self.header_len()]
    }

    /// Payload after the header, bounded by total length.
    pub fn payload(&self) -> &[u8] {
        let start = self.header_len();
        let end = self.total_length() as usize;
        &self.buffer.as_ref()[start..end]
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buffer.as_ref()[..self.header_len()])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set the TTL field.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Set the identification field.
    pub fn set_identification(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Set the source address (checksum must be refreshed afterwards).
    pub fn set_src_addr(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.0);
    }

    /// Set the destination address (checksum must be refreshed afterwards).
    pub fn set_dst_addr(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.0);
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        let buf = self.buffer.as_mut();
        buf[10] = 0;
        buf[11] = 0;
        let ck = checksum::checksum(&buf[..hl]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let end = self.total_length() as usize;
        &mut self.buffer.as_mut()[start..end]
    }
}

/// Field bundle used to serialise an IPv4 header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Encapsulated protocol.
    pub protocol: IpProtocol,
    /// TTL.
    pub ttl: u8,
    /// Type of service byte.
    pub tos: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
}

impl Default for Ipv4Repr {
    fn default() -> Self {
        Self {
            src: Ipv4Addr::default(),
            dst: Ipv4Addr::default(),
            protocol: IpProtocol::Tcp,
            ttl: 64,
            tos: 0,
            identification: 0,
            dont_fragment: true,
        }
    }
}

impl Ipv4Repr {
    /// Serialise header + payload into a fresh Vec with a valid checksum.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let total = MIN_HEADER_LEN + payload.len();
        let mut out = vec![0u8; total];
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.tos;
        out[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let flags: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        out[6..8].copy_from_slice(&flags.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol.into();
        out[12..16].copy_from_slice(&self.src.0);
        out[16..20].copy_from_slice(&self.dst.0);
        let ck = checksum::checksum(&out[..MIN_HEADER_LEN]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out[MIN_HEADER_LEN..].copy_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        Ipv4Repr {
            src: Ipv4Addr::new(192, 168, 1, 10),
            dst: Ipv4Addr::new(93, 184, 216, 34),
            protocol: IpProtocol::Tcp,
            ttl: 57,
            tos: 0x10,
            identification: 0xbeef,
            dont_fragment: true,
        }
        .emit(&[1, 2, 3, 4, 5])
    }

    #[test]
    fn emit_parse_round_trip() {
        let raw = sample();
        let p = Ipv4Packet::new_checked(&raw[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.ttl(), 57);
        assert_eq!(p.tos(), 0x10);
        assert_eq!(p.identification(), 0xbeef);
        assert_eq!(p.protocol(), IpProtocol::Tcp);
        assert_eq!(p.src_addr(), Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(p.dst_addr(), Ipv4Addr::new(93, 184, 216, 34));
        assert!(p.dont_fragment());
        assert!(!p.more_fragments());
        assert_eq!(p.payload(), &[1, 2, 3, 4, 5]);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut raw = sample();
        raw[8] ^= 0xff; // flip TTL without refreshing checksum
        let p = Ipv4Packet::new_checked(&raw[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn fill_checksum_repairs() {
        let mut raw = sample();
        {
            let mut p = Ipv4Packet::new_checked(&mut raw[..]).unwrap();
            p.set_ttl(1);
            p.fill_checksum();
        }
        let p = Ipv4Packet::new_checked(&raw[..]).unwrap();
        assert_eq!(p.ttl(), 1);
        assert!(p.verify_checksum());
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = sample();
        raw[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::new_checked(&raw[..]).unwrap_err(), Error::BadVersion);
    }

    #[test]
    fn rejects_bad_total_length() {
        let mut raw = sample();
        raw[2..4].copy_from_slice(&9999u16.to_be_bytes());
        assert_eq!(Ipv4Packet::new_checked(&raw[..]).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(Ipv4Packet::new_checked(&[0x45u8; 10][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn address_classification() {
        assert!(Ipv4Addr::new(10, 0, 0, 1).is_private());
        assert!(Ipv4Addr::new(172, 16, 0, 1).is_private());
        assert!(Ipv4Addr::new(192, 168, 0, 1).is_private());
        assert!(!Ipv4Addr::new(8, 8, 8, 8).is_private());
        assert!(Ipv4Addr::new(224, 0, 0, 251).is_multicast());
        assert!(Ipv4Addr::new(255, 255, 255, 255).is_broadcast());
    }

    #[test]
    fn u32_round_trip() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
        assert_eq!(a.to_u32(), 0x01020304);
    }

    #[test]
    fn addr_mutators_and_payload_mut() {
        let mut raw = sample();
        {
            let mut p = Ipv4Packet::new_checked(&mut raw[..]).unwrap();
            p.set_src_addr(Ipv4Addr::new(1, 1, 1, 1));
            p.set_dst_addr(Ipv4Addr::new(2, 2, 2, 2));
            p.set_identification(7);
            p.payload_mut()[0] = 0xaa;
            p.fill_checksum();
        }
        let p = Ipv4Packet::new_checked(&raw[..]).unwrap();
        assert_eq!(p.src_addr(), Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(p.dst_addr(), Ipv4Addr::new(2, 2, 2, 2));
        assert_eq!(p.identification(), 7);
        assert_eq!(p.payload()[0], 0xaa);
        assert!(p.verify_checksum());
    }
}
