//! RFC 1071 Internet checksum with IPv4/IPv6 pseudo-header support.
//!
//! Used by IPv4 header checksums and TCP/UDP/ICMP transport checksums.

/// Incremental one's-complement sum accumulator.
///
/// Fold with [`Checksum::finish`] to obtain the 16-bit checksum value
/// (already complemented, ready to be written into the packet).
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed a byte slice. Odd-length slices are padded with a zero byte,
    /// so only the final `add_bytes` call may legally be odd-length.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feed a single big-endian 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
    }

    /// Feed a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16(v as u16);
    }

    /// Fold carries and return the one's-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the plain RFC 1071 checksum of `data`.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify that `data` (which embeds its checksum field) sums to zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Compute a transport checksum over an IPv4 pseudo-header plus segment.
///
/// `protocol` is the IP protocol number (6 TCP, 17 UDP).
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], protocol: u8, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16(u16::from(protocol));
    c.add_u16(segment.len() as u16);
    c.add_bytes(segment);
    c.finish()
}

/// Compute a transport checksum over an IPv6 pseudo-header plus segment.
pub fn pseudo_header_v6(src: [u8; 16], dst: [u8; 16], next_header: u8, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u32(segment.len() as u32);
    c.add_u32(u32::from(next_header));
    c.add_bytes(segment);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_vector() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padding() {
        // Odd slice [ab] == even slice [ab 00]
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..100]);
        c.add_bytes(&data[100..]);
        assert_eq!(c.finish(), checksum(&data));
    }

    #[test]
    fn pseudo_header_zero_segment() {
        // A zero-length segment still folds the pseudo-header fields.
        let ck = pseudo_header_v4([1, 2, 3, 4], [5, 6, 7, 8], 6, &[]);
        assert_ne!(ck, 0xffff); // all-zero sum would complement to 0xffff
    }
}
