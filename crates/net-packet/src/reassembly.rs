//! TCP stream reassembly: order segments by sequence number, handle
//! retransmissions, overlaps and out-of-order arrival, and expose the
//! contiguous byte stream.
//!
//! Needed whenever application-layer parsing (e.g. a TLS ClientHello
//! that spans segments) must operate on the *stream*, not a packet.

use std::collections::BTreeMap;

/// One direction of a TCP stream being reassembled.
#[derive(Debug, Clone)]
pub struct StreamReassembler {
    /// Initial sequence number (first byte of the stream is `isn + 1`
    /// when constructed from a SYN, or `isn` when constructed from the
    /// first data segment).
    base_seq: u32,
    /// Out-of-order segments keyed by relative offset.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Contiguously assembled bytes from `base_seq`.
    assembled: Vec<u8>,
    /// Cap on buffered bytes (pending + assembled) to bound memory.
    max_buffer: usize,
    /// Count of bytes dropped because the buffer cap was hit.
    dropped: usize,
}

/// Relative offset of `seq` from `base`, handling 32-bit wraparound.
fn rel_offset(base: u32, seq: u32) -> u64 {
    u64::from(seq.wrapping_sub(base))
}

impl StreamReassembler {
    /// Start a reassembler at the given initial sequence number (the
    /// sequence number of the first payload byte).
    pub fn new(base_seq: u32) -> StreamReassembler {
        StreamReassembler {
            base_seq,
            pending: BTreeMap::new(),
            assembled: Vec::new(),
            max_buffer: 1 << 20, // 1 MiB default cap
            dropped: 0,
        }
    }

    /// Override the buffer cap.
    pub fn with_max_buffer(mut self, bytes: usize) -> StreamReassembler {
        self.max_buffer = bytes;
        self
    }

    /// Feed one segment (`seq` = sequence number of `payload[0]`).
    /// Duplicate and overlapping bytes are resolved first-writer-wins,
    /// matching common OS behaviour.
    pub fn push(&mut self, seq: u32, payload: &[u8]) {
        if payload.is_empty() {
            return;
        }
        let off = rel_offset(self.base_seq, seq);
        let have = self.assembled.len() as u64;
        // Clip the part already assembled.
        let (off, payload): (u64, &[u8]) = if off < have {
            let skip = (have - off) as usize;
            if skip >= payload.len() {
                return; // full retransmission of old data
            }
            (have, &payload[skip..])
        } else {
            (off, payload)
        };
        if self.buffered() + payload.len() > self.max_buffer {
            self.dropped += payload.len();
            return;
        }
        // First-writer-wins for overlapping pending segments.
        self.pending.entry(off).or_insert_with(|| payload.to_vec());
        self.drain();
    }

    fn drain(&mut self) {
        loop {
            let have = self.assembled.len() as u64;
            let Some((&off, _)) = self.pending.first_key_value() else {
                break;
            };
            if off > have {
                break; // gap remains
            }
            let (off, data) = self.pending.pop_first().expect("checked non-empty");
            let skip = (have - off) as usize;
            if skip < data.len() {
                self.assembled.extend_from_slice(&data[skip..]);
            }
        }
    }

    /// Contiguously assembled stream bytes so far.
    pub fn assembled(&self) -> &[u8] {
        &self.assembled
    }

    /// Bytes currently buffered (assembled + pending out-of-order).
    pub fn buffered(&self) -> usize {
        self.assembled.len() + self.pending.values().map(Vec::len).sum::<usize>()
    }

    /// Whether out-of-order segments are waiting on a gap.
    pub fn has_gap(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Bytes dropped due to the buffer cap.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_segments_concatenate() {
        let mut r = StreamReassembler::new(1000);
        r.push(1000, b"hello ");
        r.push(1006, b"world");
        assert_eq!(r.assembled(), b"hello world");
        assert!(!r.has_gap());
    }

    #[test]
    fn out_of_order_reordered() {
        let mut r = StreamReassembler::new(0);
        r.push(6, b"world");
        assert_eq!(r.assembled(), b"");
        assert!(r.has_gap());
        r.push(0, b"hello ");
        assert_eq!(r.assembled(), b"hello world");
        assert!(!r.has_gap());
    }

    #[test]
    fn retransmission_ignored() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"abcdef");
        r.push(0, b"abcdef");
        r.push(2, b"cdef");
        assert_eq!(r.assembled(), b"abcdef");
    }

    #[test]
    fn partial_overlap_clipped() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"abcd");
        r.push(2, b"cdEFGH"); // bytes 2..8, first 2 already assembled
        assert_eq!(r.assembled(), b"abcdEFGH");
    }

    #[test]
    fn sequence_wraparound_handled() {
        let base = u32::MAX - 2;
        let mut r = StreamReassembler::new(base);
        r.push(base, b"abc"); // crosses the 2^32 boundary
        r.push(base.wrapping_add(3), b"def");
        assert_eq!(r.assembled(), b"abcdef");
    }

    #[test]
    fn buffer_cap_drops_excess() {
        let mut r = StreamReassembler::new(0).with_max_buffer(8);
        r.push(0, b"abcd");
        r.push(100, b"ZZZZZZZZ"); // would exceed cap while gapped
        assert_eq!(r.dropped(), 8);
        r.push(4, b"efgh");
        assert_eq!(r.assembled(), b"abcdefgh");
    }

    #[test]
    fn reassemble_split_tls_client_hello() {
        // A ClientHello split across three segments must parse from the
        // reassembled stream even though no single packet contains it.
        let hello = crate::tls::emit_client_hello([9u8; 32], Some("split.example.org"));
        let mut r = StreamReassembler::new(5555);
        let third = hello.len() / 3;
        r.push(5555 + 2 * third as u32, &hello[2 * third..]);
        r.push(5555, &hello[..third]);
        r.push(5555 + third as u32, &hello[third..2 * third]);
        let rec = crate::tls::TlsRecord::new_checked(r.assembled()).expect("stream parses");
        assert_eq!(rec.sni().as_deref(), Some("split.example.org"));
    }

    #[test]
    fn gap_blocks_later_data() {
        let mut r = StreamReassembler::new(0);
        r.push(10, b"later");
        r.push(20, b"even later");
        assert_eq!(r.assembled(), b"");
        assert_eq!(r.buffered(), 15);
        r.push(0, b"0123456789");
        // 0..15 contiguous; 15..20 still missing
        assert_eq!(r.assembled().len(), 15);
        assert!(r.has_gap());
        r.push(15, b"fill!");
        assert_eq!(r.assembled().len(), 30);
        assert!(!r.has_gap());
    }
}
