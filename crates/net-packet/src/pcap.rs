//! libpcap file format reader/writer (the classic `.pcap` container,
//! magic 0xa1b2c3d4, microsecond timestamps, LINKTYPE_ETHERNET).
//!
//! The generator can persist synthetic traces to pcap for inspection in
//! Wireshark, and the pipeline can ingest external pcaps.

use crate::error::{Error, Result};
use std::io::{Read, Write};

/// Global header magic (native byte order, microsecond resolution).
pub const MAGIC: u32 = 0xa1b2_c3d4;
/// Swapped magic indicating the opposite byte order.
pub const MAGIC_SWAPPED: u32 = 0xd4c3_b2a1;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// One captured packet: timestamp plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Seconds since the Unix epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Captured frame bytes.
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// Timestamp as f64 seconds.
    pub fn timestamp(&self) -> f64 {
        f64::from(self.ts_sec) + f64::from(self.ts_usec) * 1e-6
    }

    /// Build from an f64 seconds timestamp.
    pub fn at(timestamp: f64, data: Vec<u8>) -> Self {
        let ts_sec = timestamp as u32;
        let ts_usec = ((timestamp - f64::from(ts_sec)) * 1e6).round() as u32;
        Self { ts_sec, ts_usec: ts_usec.min(999_999), data }
    }
}

/// Streaming pcap writer.
///
/// ```
/// use net_packet::pcap::{read_all, PcapPacket, PcapWriter};
/// let mut w = PcapWriter::new(Vec::new()).unwrap();
/// w.write_packet(&PcapPacket { ts_sec: 1, ts_usec: 2, data: vec![0xab; 60] }).unwrap();
/// let bytes = w.into_inner().unwrap();
/// assert_eq!(read_all(&bytes[..]).unwrap().len(), 1);
/// ```
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut inner: W) -> std::io::Result<Self> {
        inner.write_all(&MAGIC.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&65535u32.to_le_bytes())?; // snaplen
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self { inner })
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, pkt: &PcapPacket) -> std::io::Result<()> {
        self.inner.write_all(&pkt.ts_sec.to_le_bytes())?;
        self.inner.write_all(&pkt.ts_usec.to_le_bytes())?;
        let len = pkt.data.len() as u32;
        self.inner.write_all(&len.to_le_bytes())?; // incl_len
        self.inner.write_all(&len.to_le_bytes())?; // orig_len
        self.inner.write_all(&pkt.data)
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Read an entire pcap stream into memory.
///
/// Handles both byte orders. Returns [`Error::BadPcap`] on a bad magic
/// or a truncated record.
pub fn read_all<R: Read>(mut reader: R) -> Result<Vec<PcapPacket>> {
    let mut header = [0u8; 24];
    reader.read_exact(&mut header).map_err(|_| Error::BadPcap)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let swapped = match magic {
        MAGIC => false,
        MAGIC_SWAPPED => true,
        _ => return Err(Error::BadPcap),
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr = [b[0], b[1], b[2], b[3]];
        if swapped {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    let linktype = read_u32(&header[20..24]);
    if linktype != LINKTYPE_ETHERNET {
        return Err(Error::BadPcap);
    }
    let mut packets = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match reader.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(_) => return Err(Error::BadPcap),
        }
        let ts_sec = read_u32(&rec[0..4]);
        let ts_usec = read_u32(&rec[4..8]);
        let incl_len = read_u32(&rec[8..12]) as usize;
        if incl_len > 0x0400_0000 {
            return Err(Error::BadPcap); // 64 MiB sanity cap
        }
        let mut data = vec![0u8; incl_len];
        reader.read_exact(&mut data).map_err(|_| Error::BadPcap)?;
        packets.push(PcapPacket { ts_sec, ts_usec, data });
    }
    Ok(packets)
}

/// Serialise packets to an in-memory pcap byte vector.
pub fn write_all(packets: &[PcapPacket]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).expect("Vec write cannot fail");
    for p in packets {
        w.write_packet(p).expect("Vec write cannot fail");
    }
    w.into_inner().expect("Vec flush cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<PcapPacket> {
        vec![
            PcapPacket { ts_sec: 100, ts_usec: 5, data: vec![1, 2, 3] },
            PcapPacket { ts_sec: 101, ts_usec: 999_999, data: vec![0xff; 60] },
        ]
    }

    #[test]
    fn write_read_round_trip() {
        let pkts = sample_packets();
        let bytes = write_all(&pkts);
        let back = read_all(&bytes[..]).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn empty_capture() {
        let bytes = write_all(&[]);
        assert_eq!(bytes.len(), 24);
        assert!(read_all(&bytes[..]).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = write_all(&sample_packets());
        bytes[0] = 0;
        assert_eq!(read_all(&bytes[..]).unwrap_err(), Error::BadPcap);
    }

    #[test]
    fn rejects_truncated_record() {
        let mut bytes = write_all(&sample_packets());
        bytes.truncate(bytes.len() - 2);
        assert_eq!(read_all(&bytes[..]).unwrap_err(), Error::BadPcap);
    }

    #[test]
    fn swapped_byte_order_supported() {
        // Hand-craft a big-endian pcap with a single empty packet.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&1u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&1u32.to_be_bytes()); // orig
        bytes.push(0xaa);
        let pkts = read_all(&bytes[..]).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ts_sec, 7);
        assert_eq!(pkts[0].data, vec![0xaa]);
    }

    #[test]
    fn timestamp_conversion() {
        let p = PcapPacket::at(12.5, vec![]);
        assert_eq!(p.ts_sec, 12);
        assert_eq!(p.ts_usec, 500_000);
        assert!((p.timestamp() - 12.5).abs() < 1e-6);
    }
}
