//! Builders for "spurious" LAN traffic: the extraneous protocols that
//! contaminate the public datasets (Table 13) and that the cleaning
//! filters must remove — ARP, DHCP, mDNS, LLMNR, NBNS, SSDP, NTP, STUN,
//! IGMP, ICMP.

use crate::dns;
use crate::ethernet::{self, EtherType, MacAddr};
use crate::icmp;
use crate::ipv4::{IpProtocol, Ipv4Addr, Ipv4Repr};
use crate::udp;

/// ARP packet body length for Ethernet/IPv4.
pub const ARP_LEN: usize = 28;

/// Build a full Ethernet frame containing an ARP request.
pub fn arp_request(src_mac: MacAddr, src_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Vec<u8> {
    let mut body = vec![0u8; ARP_LEN];
    body[0..2].copy_from_slice(&1u16.to_be_bytes()); // HTYPE ethernet
    body[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // PTYPE IPv4
    body[4] = 6; // HLEN
    body[5] = 4; // PLEN
    body[6..8].copy_from_slice(&1u16.to_be_bytes()); // OPER request
    body[8..14].copy_from_slice(&src_mac.0);
    body[14..18].copy_from_slice(&src_ip.0);
    // target MAC zero
    body[24..28].copy_from_slice(&target_ip.0);
    ethernet::emit(MacAddr::BROADCAST, src_mac, EtherType::Arp, &body)
}

fn udp_ipv4_frame(
    src_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut seg = udp::emit(src_port, dst_port, payload);
    {
        let mut d = udp::UdpDatagram::new_checked(&mut seg[..]).expect("fresh UDP is valid");
        d.fill_checksum_v4(src, dst);
    }
    let ip = Ipv4Repr {
        src,
        dst,
        protocol: IpProtocol::Udp,
        ttl: if dst.is_multicast() { 1 } else { 64 },
        ..Default::default()
    }
    .emit(&seg);
    let dst_mac = if dst.is_multicast() || dst.is_broadcast() {
        MacAddr::BROADCAST
    } else {
        MacAddr([0x02, 0, 0, 0, 0, 0xfe])
    };
    ethernet::emit(dst_mac, src_mac, EtherType::Ipv4, &ip)
}

/// mDNS query (UDP 5353 to 224.0.0.251).
pub fn mdns_query(src_mac: MacAddr, src: Ipv4Addr, name: &str) -> Vec<u8> {
    let q = dns::emit_query(0, name, dns::RecordType::Ptr);
    udp_ipv4_frame(src_mac, src, Ipv4Addr::new(224, 0, 0, 251), 5353, 5353, &q)
}

/// LLMNR query (UDP 5355 to 224.0.0.252).
pub fn llmnr_query(src_mac: MacAddr, src: Ipv4Addr, name: &str) -> Vec<u8> {
    let q = dns::emit_query(0x11, name, dns::RecordType::A);
    udp_ipv4_frame(src_mac, src, Ipv4Addr::new(224, 0, 0, 252), 5355, 5355, &q)
}

/// NBNS name query (UDP 137 broadcast).
pub fn nbns_query(src_mac: MacAddr, src: Ipv4Addr, name: &str) -> Vec<u8> {
    let q = dns::emit_query(0x22, name, dns::RecordType::Other(32));
    udp_ipv4_frame(src_mac, src, Ipv4Addr::new(255, 255, 255, 255), 137, 137, &q)
}

/// DHCP Discover (UDP 68 -> 67 broadcast), minimal BOOTP body.
pub fn dhcp_discover(src_mac: MacAddr, xid: u32) -> Vec<u8> {
    let mut body = vec![0u8; 240 + 8];
    body[0] = 1; // BOOTREQUEST
    body[1] = 1; // ethernet
    body[2] = 6; // hlen
    body[4..8].copy_from_slice(&xid.to_be_bytes());
    body[28..34].copy_from_slice(&src_mac.0);
    body[236..240].copy_from_slice(&[99, 130, 83, 99]); // magic cookie
    body[240..243].copy_from_slice(&[53, 1, 1]); // option: DHCP Discover
    body[243] = 255; // end
    udp_ipv4_frame(
        src_mac,
        Ipv4Addr::new(0, 0, 0, 0),
        Ipv4Addr::new(255, 255, 255, 255),
        68,
        67,
        &body,
    )
}

/// SSDP M-SEARCH (UDP 1900 to 239.255.255.250).
pub fn ssdp_msearch(src_mac: MacAddr, src: Ipv4Addr) -> Vec<u8> {
    let body = b"M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nMAN: \"ssdp:discover\"\r\nMX: 1\r\nST: ssdp:all\r\n\r\n";
    udp_ipv4_frame(src_mac, src, Ipv4Addr::new(239, 255, 255, 250), 50000, 1900, body)
}

/// NTP client request (UDP 123).
pub fn ntp_request(src_mac: MacAddr, src: Ipv4Addr, server: Ipv4Addr) -> Vec<u8> {
    let mut body = vec![0u8; 48];
    body[0] = 0x23; // LI=0 VN=4 Mode=3 (client)
    udp_ipv4_frame(src_mac, src, server, 48330, 123, &body)
}

/// STUN binding request (UDP 3478), RFC 5389 magic cookie.
pub fn stun_binding(src_mac: MacAddr, src: Ipv4Addr, server: Ipv4Addr) -> Vec<u8> {
    let mut body = vec![0u8; 20];
    body[0..2].copy_from_slice(&0x0001u16.to_be_bytes()); // binding request
    body[4..8].copy_from_slice(&0x2112A442u32.to_be_bytes());
    body[8..20].copy_from_slice(&[0xab; 12]);
    udp_ipv4_frame(src_mac, src, server, 54000, 3478, &body)
}

/// IGMPv2 membership report (IP protocol 2).
pub fn igmp_report(src_mac: MacAddr, src: Ipv4Addr, group: Ipv4Addr) -> Vec<u8> {
    let mut body = vec![0u8; 8];
    body[0] = 0x16; // v2 membership report
    body[4..8].copy_from_slice(&group.0);
    let ck = crate::checksum::checksum(&body);
    body[2..4].copy_from_slice(&ck.to_be_bytes());
    let ip = Ipv4Repr { src, dst: group, protocol: IpProtocol::Igmp, ttl: 1, ..Default::default() }
        .emit(&body);
    ethernet::emit(MacAddr::BROADCAST, src_mac, EtherType::Ipv4, &ip)
}

/// ICMP echo request frame (network-management family of Table 13).
pub fn icmp_ping(src_mac: MacAddr, src: Ipv4Addr, dst: Ipv4Addr, seq: u16) -> Vec<u8> {
    let body = icmp::emit_echo(icmp::IcmpType::EchoRequest, 0x0042, seq, &[0x61; 16]);
    let ip = Ipv4Repr { src, dst, protocol: IpProtocol::Icmp, ttl: 64, ..Default::default() }
        .emit(&body);
    ethernet::emit(MacAddr([0x02, 0, 0, 0, 0, 0xfe]), src_mac, EtherType::Ipv4, &ip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::EthernetFrame;
    use crate::ident::{identify, ProtocolId};

    fn mac() -> MacAddr {
        MacAddr([2, 0, 0, 0, 0, 1])
    }

    fn ip() -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 1, 50)
    }

    #[test]
    fn arp_identified() {
        let f = arp_request(mac(), ip(), Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(identify(&f), ProtocolId::Arp);
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Arp);
        assert!(eth.dst_addr().is_broadcast());
    }

    #[test]
    fn mdns_identified() {
        assert_eq!(
            identify(&mdns_query(mac(), ip(), "_services._dns-sd._udp.local")),
            ProtocolId::Mdns
        );
    }

    #[test]
    fn llmnr_identified() {
        assert_eq!(identify(&llmnr_query(mac(), ip(), "host")), ProtocolId::Llmnr);
    }

    #[test]
    fn nbns_identified() {
        assert_eq!(identify(&nbns_query(mac(), ip(), "WORKGROUP")), ProtocolId::Nbns);
    }

    #[test]
    fn dhcp_identified() {
        assert_eq!(identify(&dhcp_discover(mac(), 0x1234)), ProtocolId::Dhcp);
    }

    #[test]
    fn ssdp_identified() {
        assert_eq!(identify(&ssdp_msearch(mac(), ip())), ProtocolId::Ssdp);
    }

    #[test]
    fn ntp_identified() {
        assert_eq!(
            identify(&ntp_request(mac(), ip(), Ipv4Addr::new(17, 253, 14, 125))),
            ProtocolId::Ntp
        );
    }

    #[test]
    fn stun_identified() {
        assert_eq!(
            identify(&stun_binding(mac(), ip(), Ipv4Addr::new(74, 125, 1, 1))),
            ProtocolId::Stun
        );
    }

    #[test]
    fn igmp_identified() {
        assert_eq!(
            identify(&igmp_report(mac(), ip(), Ipv4Addr::new(224, 0, 0, 251))),
            ProtocolId::Igmp
        );
    }

    #[test]
    fn icmp_identified() {
        assert_eq!(
            identify(&icmp_ping(mac(), ip(), Ipv4Addr::new(8, 8, 8, 8), 1)),
            ProtocolId::Icmp
        );
    }

    #[test]
    fn udp_checksums_valid() {
        let f = ntp_request(mac(), ip(), Ipv4Addr::new(1, 2, 3, 4));
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        let ipv4 = crate::ipv4::Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ipv4.verify_checksum());
        let u = udp::UdpDatagram::new_checked(ipv4.payload()).unwrap();
        assert!(u.verify_checksum_v4(ipv4.src_addr(), ipv4.dst_addr()));
    }
}
