//! ICMPv6 Neighbor Discovery views: Router/Neighbor Solicitation and
//! Advertisement — the IPv6 counterpart of ARP, part of the
//! network-management family the cleaning filters remove.

use crate::error::{Error, Result};
use crate::ipv6::Ipv6Addr;

/// NDP message types (ICMPv6 type codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NdpType {
    /// Router Solicitation (133).
    RouterSolicitation,
    /// Router Advertisement (134).
    RouterAdvertisement,
    /// Neighbor Solicitation (135).
    NeighborSolicitation,
    /// Neighbor Advertisement (136).
    NeighborAdvertisement,
}

impl NdpType {
    /// Map from an ICMPv6 type byte.
    pub fn from_icmpv6_type(t: u8) -> Option<NdpType> {
        match t {
            133 => Some(NdpType::RouterSolicitation),
            134 => Some(NdpType::RouterAdvertisement),
            135 => Some(NdpType::NeighborSolicitation),
            136 => Some(NdpType::NeighborAdvertisement),
            _ => None,
        }
    }

    /// The ICMPv6 type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            NdpType::RouterSolicitation => 133,
            NdpType::RouterAdvertisement => 134,
            NdpType::NeighborSolicitation => 135,
            NdpType::NeighborAdvertisement => 136,
        }
    }
}

/// A read view over a Neighbor Solicitation/Advertisement body
/// (the ICMPv6 message starting at its type byte).
#[derive(Debug, Clone, Copy)]
pub struct NeighborMessage<T: AsRef<[u8]>> {
    buffer: T,
}

/// Fixed length of NS/NA messages before options.
pub const NEIGHBOR_LEN: usize = 24;

impl<T: AsRef<[u8]>> NeighborMessage<T> {
    /// Wrap a buffer, validating length and message type.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < NEIGHBOR_LEN {
            return Err(Error::Truncated);
        }
        match NdpType::from_icmpv6_type(b[0]) {
            Some(NdpType::NeighborSolicitation) | Some(NdpType::NeighborAdvertisement) => {
                Ok(Self { buffer })
            }
            _ => Err(Error::BadVersion),
        }
    }

    /// Message kind (solicitation or advertisement).
    pub fn ndp_type(&self) -> NdpType {
        NdpType::from_icmpv6_type(self.buffer.as_ref()[0]).expect("validated in new_checked")
    }

    /// The target address field.
    pub fn target(&self) -> Ipv6Addr {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buffer.as_ref()[8..24]);
        Ipv6Addr(a)
    }

    /// Advertisement flags: (router, solicited, override). Zeros for
    /// solicitations.
    pub fn flags(&self) -> (bool, bool, bool) {
        let f = self.buffer.as_ref()[4];
        (f & 0x80 != 0, f & 0x40 != 0, f & 0x20 != 0)
    }
}

/// Build a Neighbor Solicitation body (checksum left to the caller's
/// ICMPv6 embedding).
pub fn emit_neighbor_solicitation(target: Ipv6Addr) -> Vec<u8> {
    let mut out = vec![0u8; NEIGHBOR_LEN];
    out[0] = NdpType::NeighborSolicitation.type_byte();
    out[8..24].copy_from_slice(&target.0);
    out
}

/// Build a Neighbor Advertisement body.
pub fn emit_neighbor_advertisement(
    target: Ipv6Addr,
    router: bool,
    solicited: bool,
    override_cache: bool,
) -> Vec<u8> {
    let mut out = vec![0u8; NEIGHBOR_LEN];
    out[0] = NdpType::NeighborAdvertisement.type_byte();
    out[4] = (u8::from(router) << 7) | (u8::from(solicited) << 6) | (u8::from(override_cache) << 5);
    out[8..24].copy_from_slice(&target.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Ipv6Addr {
        let mut a = [0u8; 16];
        a[0] = 0xfe;
        a[1] = 0x80;
        a[15] = 0x42;
        Ipv6Addr(a)
    }

    #[test]
    fn solicitation_round_trip() {
        let raw = emit_neighbor_solicitation(addr());
        let m = NeighborMessage::new_checked(&raw[..]).unwrap();
        assert_eq!(m.ndp_type(), NdpType::NeighborSolicitation);
        assert_eq!(m.target(), addr());
        assert_eq!(m.flags(), (false, false, false));
    }

    #[test]
    fn advertisement_flags() {
        let raw = emit_neighbor_advertisement(addr(), true, true, false);
        let m = NeighborMessage::new_checked(&raw[..]).unwrap();
        assert_eq!(m.ndp_type(), NdpType::NeighborAdvertisement);
        assert_eq!(m.flags(), (true, true, false));
        assert_eq!(m.target(), addr());
    }

    #[test]
    fn rejects_non_ndp() {
        let mut raw = emit_neighbor_solicitation(addr());
        raw[0] = 128; // echo request
        assert_eq!(NeighborMessage::new_checked(&raw[..]).unwrap_err(), Error::BadVersion);
        assert_eq!(NeighborMessage::new_checked(&raw[..8]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn type_byte_round_trip() {
        for t in [133u8, 134, 135, 136] {
            assert_eq!(NdpType::from_icmpv6_type(t).unwrap().type_byte(), t);
        }
        assert!(NdpType::from_icmpv6_type(1).is_none());
    }
}
