//! UDP datagram view and serialiser.

use crate::checksum;
use crate::error::{Error, Result};
use crate::ipv4::Ipv4Addr;
use crate::ipv6::Ipv6Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A read/write view over a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap a buffer, validating header and length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let dg = Self { buffer };
        let l = dg.length() as usize;
        if l < HEADER_LEN || l > len {
            return Err(Error::BadLength);
        }
        Ok(dg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload bytes, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.length() as usize]
    }

    /// Verify the checksum against an IPv4 pseudo-header.
    /// A zero checksum means "not computed" and is accepted (RFC 768).
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        checksum::pseudo_header_v4(
            src.0,
            dst.0,
            17,
            &self.buffer.as_ref()[..self.length() as usize],
        ) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Overwrite the source port.
    pub fn set_src_port(&mut self, v: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&v.to_be_bytes());
    }

    /// Recompute and store the checksum for an IPv4 pseudo-header.
    pub fn fill_checksum_v4(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = self.length() as usize;
        let buf = self.buffer.as_mut();
        buf[6] = 0;
        buf[7] = 0;
        let mut ck = checksum::pseudo_header_v4(src.0, dst.0, 17, &buf[..len]);
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Recompute and store the checksum for an IPv6 pseudo-header.
    pub fn fill_checksum_v6(&mut self, src: Ipv6Addr, dst: Ipv6Addr) {
        let len = self.length() as usize;
        let buf = self.buffer.as_mut();
        buf[6] = 0;
        buf[7] = 0;
        let mut ck = checksum::pseudo_header_v6(src.0, dst.0, 17, &buf[..len]);
        if ck == 0 {
            ck = 0xffff;
        }
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
    }
}

/// Serialise a UDP datagram (checksum zero; fill afterwards if desired).
pub fn emit(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
    let total = HEADER_LEN + payload.len();
    let mut out = vec![0u8; total];
    out[0..2].copy_from_slice(&src_port.to_be_bytes());
    out[2..4].copy_from_slice(&dst_port.to_be_bytes());
    out[4..6].copy_from_slice(&(total as u16).to_be_bytes());
    out[HEADER_LEN..].copy_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let raw = emit(5353, 53, b"query");
        let d = UdpDatagram::new_checked(&raw[..]).unwrap();
        assert_eq!(d.src_port(), 5353);
        assert_eq!(d.dst_port(), 53);
        assert_eq!(d.length() as usize, raw.len());
        assert_eq!(d.payload(), b"query");
    }

    #[test]
    fn checksum_round_trip() {
        let mut raw = emit(1000, 2000, &[1, 2, 3]);
        let src = Ipv4Addr::new(10, 1, 1, 1);
        let dst = Ipv4Addr::new(10, 1, 1, 2);
        {
            let mut d = UdpDatagram::new_checked(&mut raw[..]).unwrap();
            d.fill_checksum_v4(src, dst);
        }
        let d = UdpDatagram::new_checked(&raw[..]).unwrap();
        assert_ne!(d.checksum(), 0);
        assert!(d.verify_checksum_v4(src, dst));
        assert!(!d.verify_checksum_v4(Ipv4Addr::new(10, 1, 1, 3), dst));
    }

    #[test]
    fn zero_checksum_accepted() {
        let raw = emit(1, 2, &[0xaa]);
        let d = UdpDatagram::new_checked(&raw[..]).unwrap();
        assert!(d.verify_checksum_v4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)));
    }

    #[test]
    fn rejects_short_length_field() {
        let mut raw = emit(1, 2, &[0xaa; 4]);
        raw[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(UdpDatagram::new_checked(&raw[..]).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn port_mutators() {
        let mut raw = emit(1, 2, &[]);
        {
            let mut d = UdpDatagram::new_checked(&mut raw[..]).unwrap();
            d.set_src_port(9);
            d.set_dst_port(10);
        }
        let d = UdpDatagram::new_checked(&raw[..]).unwrap();
        assert_eq!((d.src_port(), d.dst_port()), (9, 10));
    }
}
