//! Error type shared by all parsers in this crate.

use std::fmt;

/// Parsing/validation failure for a wire-format view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated,
    /// A length field points outside the buffer.
    BadLength,
    /// A version / type discriminant does not match the protocol.
    BadVersion,
    /// A checksum failed verification.
    BadChecksum,
    /// The value of a field is outside its legal range.
    Malformed,
    /// A pcap file was structurally invalid.
    BadPcap,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Error::Truncated => "buffer truncated",
            Error::BadLength => "length field out of bounds",
            Error::BadVersion => "version/type mismatch",
            Error::BadChecksum => "checksum verification failed",
            Error::Malformed => "malformed field",
            Error::BadPcap => "invalid pcap structure",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;
