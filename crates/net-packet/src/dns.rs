//! Minimal DNS message view and query builder.
//!
//! The benchmark needs DNS both as legitimate traffic (the VPN dataset
//! contains DNS) and as the carrier for mDNS/LLMNR/NBNS spurious traffic
//! (same wire format, different ports). Only the header and the first
//! question are modelled.

use crate::error::{Error, Result};

/// DNS header length.
pub const HEADER_LEN: usize = 12;

/// Record types used by the generator and by Pcap-Encoder's Q&A corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordType {
    /// IPv4 host address (1).
    A,
    /// IPv6 host address (28).
    Aaaa,
    /// Pointer record (12) — used by mDNS service discovery.
    Ptr,
    /// Other type code.
    Other(u16),
}

impl From<u16> for RecordType {
    fn from(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            28 => RecordType::Aaaa,
            12 => RecordType::Ptr,
            o => RecordType::Other(o),
        }
    }
}

impl From<RecordType> for u16 {
    fn from(v: RecordType) -> u16 {
        match v {
            RecordType::A => 1,
            RecordType::Aaaa => 28,
            RecordType::Ptr => 12,
            RecordType::Other(o) => o,
        }
    }
}

/// A read view over a DNS message.
#[derive(Debug, Clone, Copy)]
pub struct DnsMessage<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> DnsMessage<T> {
    /// Wrap a buffer, validating the fixed header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Transaction ID.
    pub fn id(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// True if this is a response (QR bit).
    pub fn is_response(&self) -> bool {
        self.buffer.as_ref()[2] & 0x80 != 0
    }

    /// Question count.
    pub fn question_count(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Answer count.
    pub fn answer_count(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Decode the first question name (dot-separated) and type.
    pub fn first_question(&self) -> Result<(String, RecordType)> {
        let b = self.buffer.as_ref();
        if self.question_count() == 0 {
            return Err(Error::Malformed);
        }
        let mut i = HEADER_LEN;
        let mut name = String::new();
        loop {
            if i >= b.len() {
                return Err(Error::Truncated);
            }
            let len = usize::from(b[i]);
            if len == 0 {
                i += 1;
                break;
            }
            if len & 0xc0 != 0 {
                return Err(Error::Malformed); // compression not supported here
            }
            if i + 1 + len > b.len() {
                return Err(Error::Truncated);
            }
            if !name.is_empty() {
                name.push('.');
            }
            name.push_str(&String::from_utf8_lossy(&b[i + 1..i + 1 + len]));
            i += 1 + len;
        }
        if i + 4 > b.len() {
            return Err(Error::Truncated);
        }
        let qtype = u16::from_be_bytes([b[i], b[i + 1]]).into();
        Ok((name, qtype))
    }
}

/// Build a single-question DNS query message.
pub fn emit_query(id: u16, name: &str, qtype: RecordType) -> Vec<u8> {
    let mut out = vec![0u8; HEADER_LEN];
    out[0..2].copy_from_slice(&id.to_be_bytes());
    out[2] = 0x01; // RD
    out[4..6].copy_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        out.push(bytes.len().min(63) as u8);
        out.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    out.push(0);
    let t: u16 = qtype.into();
    out.extend_from_slice(&t.to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // IN class
    out
}

/// Build a response echoing the question with `answers` A records.
pub fn emit_response(id: u16, name: &str, addrs: &[[u8; 4]]) -> Vec<u8> {
    let mut out = emit_query(id, name, RecordType::A);
    out[2] |= 0x80; // QR
    out[6..8].copy_from_slice(&(addrs.len() as u16).to_be_bytes());
    for a in addrs {
        out.extend_from_slice(&[0xc0, 0x0c]); // name pointer to question
        out.extend_from_slice(&1u16.to_be_bytes()); // type A
        out.extend_from_slice(&1u16.to_be_bytes()); // class IN
        out.extend_from_slice(&60u32.to_be_bytes()); // TTL
        out.extend_from_slice(&4u16.to_be_bytes()); // RDLENGTH
        out.extend_from_slice(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let raw = emit_query(0xbeef, "www.example.org", RecordType::Aaaa);
        let m = DnsMessage::new_checked(&raw[..]).unwrap();
        assert_eq!(m.id(), 0xbeef);
        assert!(!m.is_response());
        assert_eq!(m.question_count(), 1);
        let (name, ty) = m.first_question().unwrap();
        assert_eq!(name, "www.example.org");
        assert_eq!(ty, RecordType::Aaaa);
    }

    #[test]
    fn response_has_answers() {
        let raw = emit_response(7, "example.org", &[[93, 184, 216, 34]]);
        let m = DnsMessage::new_checked(&raw[..]).unwrap();
        assert!(m.is_response());
        assert_eq!(m.answer_count(), 1);
        assert_eq!(m.first_question().unwrap().0, "example.org");
    }

    #[test]
    fn rejects_truncated_header() {
        assert_eq!(DnsMessage::new_checked(&[0u8; 11][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn rejects_truncated_question() {
        let mut raw = emit_query(1, "abc.de", RecordType::A);
        raw.truncate(HEADER_LEN + 2);
        let m = DnsMessage::new_checked(&raw[..]).unwrap();
        assert!(m.first_question().is_err());
    }

    #[test]
    fn no_question_is_malformed() {
        let raw = [0u8; HEADER_LEN];
        let m = DnsMessage::new_checked(&raw[..]).unwrap();
        assert_eq!(m.first_question().unwrap_err(), Error::Malformed);
    }
}
