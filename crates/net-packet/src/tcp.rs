//! TCP segment view, options parsing, and serialiser.
//!
//! TCP carries the *implicit flow identifiers* at the heart of the
//! paper's data-leakage argument: sequence/acknowledgement numbers and
//! the Timestamps option (RFC 7323). The view exposes all of them, and
//! the mutators allow the ablation transforms (randomise SeqNo/AckNo/TS)
//! to operate in place.

use crate::checksum;
use crate::error::{Error, Result};
use crate::ipv4::Ipv4Addr;
use crate::ipv6::Ipv6Addr;

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// Tiny local stand-in for the `bitflags` crate (kept dependency-free).
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty { $($flag:ident = $val:expr,)* }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name(pub $ty);
        impl $name {
            $(
                #[allow(missing_docs)]
                pub const $flag: $name = $name($val);
            )*
            /// True if every bit in `other` is set in `self`.
            pub fn contains(&self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            /// Bitwise-or two flag sets.
            pub fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }
        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }
    };
}

bitflags_lite! {
    /// TCP flag bits (lower byte of offset/flags word).
    pub struct TcpFlags: u8 {
        FIN = 0x01,
        SYN = 0x02,
        RST = 0x04,
        PSH = 0x08,
        ACK = 0x10,
        URG = 0x20,
        ECE = 0x40,
        CWR = 0x80,
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End of options list.
    EndOfList,
    /// No-operation padding.
    Nop,
    /// Maximum segment size (SYN only).
    Mss(u16),
    /// Window scale shift count (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// Timestamps: (TSval, TSecr). The implicit flow ID of §4.1.
    Timestamps(u32, u32),
    /// Unknown option: (kind, length).
    Unknown(u8, u8),
}

/// A read/write view over a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap a buffer, validating the data offset.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let seg = Self { buffer };
        let hl = seg.header_len();
        if hl < MIN_HEADER_LEN || hl > len {
            return Err(Error::BadLength);
        }
        Ok(seg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13])
    }

    /// SYN flag.
    pub fn syn(&self) -> bool {
        self.flags().contains(TcpFlags::SYN)
    }

    /// ACK flag.
    pub fn ack(&self) -> bool {
        self.flags().contains(TcpFlags::ACK)
    }

    /// FIN flag.
    pub fn fin(&self) -> bool {
        self.flags().contains(TcpFlags::FIN)
    }

    /// RST flag.
    pub fn rst(&self) -> bool {
        self.flags().contains(TcpFlags::RST)
    }

    /// PSH flag.
    pub fn psh(&self) -> bool {
        self.flags().contains(TcpFlags::PSH)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// Urgent pointer.
    pub fn urgent_pointer(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[18], b[19]])
    }

    /// Raw option bytes.
    pub fn options_raw(&self) -> &[u8] {
        &self.buffer.as_ref()[MIN_HEADER_LEN..self.header_len()]
    }

    /// Iterate over parsed options; stops at EOL or a malformed option.
    pub fn options(&self) -> OptionsIter<'_> {
        OptionsIter { data: self.options_raw() }
    }

    /// Convenience: the Timestamps option, if present.
    pub fn timestamps(&self) -> Option<(u32, u32)> {
        self.options().find_map(|o| match o {
            TcpOption::Timestamps(v, e) => Some((v, e)),
            _ => None,
        })
    }

    /// Convenience: the MSS option, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options().find_map(|o| match o {
            TcpOption::Mss(m) => Some(m),
            _ => None,
        })
    }

    /// Payload after the header (and options).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the transport checksum against an IPv4 pseudo-header.
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        checksum::pseudo_header_v4(src.0, dst.0, 6, self.buffer.as_ref()) == 0
    }

    /// Verify the transport checksum against an IPv6 pseudo-header.
    pub fn verify_checksum_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> bool {
        checksum::pseudo_header_v6(src.0, dst.0, 6, self.buffer.as_ref()) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Overwrite the sequence number.
    pub fn set_seq_number(&mut self, v: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the acknowledgement number.
    pub fn set_ack_number(&mut self, v: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the source port.
    pub fn set_src_port(&mut self, v: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&v.to_be_bytes());
    }

    /// Overwrite the Timestamps option values, if the option is present.
    /// Returns true on success.
    pub fn set_timestamps(&mut self, tsval: u32, tsecr: u32) -> bool {
        let hl = self.header_len();
        let opts = &mut self.buffer.as_mut()[MIN_HEADER_LEN..hl];
        let mut i = 0;
        while i < opts.len() {
            match opts[i] {
                0 => break,
                1 => i += 1,
                8 if i + 10 <= opts.len() && opts[i + 1] == 10 => {
                    opts[i + 2..i + 6].copy_from_slice(&tsval.to_be_bytes());
                    opts[i + 6..i + 10].copy_from_slice(&tsecr.to_be_bytes());
                    return true;
                }
                _ => {
                    if i + 1 >= opts.len() || opts[i + 1] < 2 {
                        break;
                    }
                    i += usize::from(opts[i + 1]);
                }
            }
        }
        false
    }

    /// Recompute and store the checksum for an IPv4 pseudo-header.
    pub fn fill_checksum_v4(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let buf = self.buffer.as_mut();
        buf[16] = 0;
        buf[17] = 0;
        let ck = checksum::pseudo_header_v4(src.0, dst.0, 6, buf);
        buf[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Recompute and store the checksum for an IPv6 pseudo-header.
    pub fn fill_checksum_v6(&mut self, src: Ipv6Addr, dst: Ipv6Addr) {
        let buf = self.buffer.as_mut();
        buf[16] = 0;
        buf[17] = 0;
        let ck = checksum::pseudo_header_v6(src.0, dst.0, 6, buf);
        buf[16..18].copy_from_slice(&ck.to_be_bytes());
    }
}

/// Iterator over TCP options.
#[derive(Debug)]
pub struct OptionsIter<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for OptionsIter<'a> {
    type Item = TcpOption;

    fn next(&mut self) -> Option<TcpOption> {
        if self.data.is_empty() {
            return None;
        }
        let kind = self.data[0];
        match kind {
            0 => {
                self.data = &[];
                Some(TcpOption::EndOfList)
            }
            1 => {
                self.data = &self.data[1..];
                Some(TcpOption::Nop)
            }
            _ => {
                if self.data.len() < 2 {
                    self.data = &[];
                    return None;
                }
                let len = usize::from(self.data[1]);
                if len < 2 || len > self.data.len() {
                    self.data = &[];
                    return None;
                }
                let body = &self.data[2..len];
                let opt = match (kind, body.len()) {
                    (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (8, 8) => TcpOption::Timestamps(
                        u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    ),
                    _ => TcpOption::Unknown(kind, len as u8),
                };
                self.data = &self.data[len..];
                Some(opt)
            }
        }
    }
}

/// Field bundle used to serialise a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Options to emit (padded to a 4-byte boundary with NOPs).
    pub options: Vec<TcpOption>,
}

impl Default for TcpRepr {
    fn default() -> Self {
        Self {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0xffff,
            urgent: 0,
            options: Vec::new(),
        }
    }
}

impl TcpRepr {
    fn emit_options(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for opt in &self.options {
            match *opt {
                TcpOption::EndOfList => out.push(0),
                TcpOption::Nop => out.push(1),
                TcpOption::Mss(m) => {
                    out.extend_from_slice(&[2, 4]);
                    out.extend_from_slice(&m.to_be_bytes());
                }
                TcpOption::WindowScale(s) => out.extend_from_slice(&[3, 3, s]),
                TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
                TcpOption::Timestamps(v, e) => {
                    out.extend_from_slice(&[8, 10]);
                    out.extend_from_slice(&v.to_be_bytes());
                    out.extend_from_slice(&e.to_be_bytes());
                }
                TcpOption::Unknown(kind, len) => {
                    out.push(kind);
                    out.push(len);
                    out.extend(std::iter::repeat_n(0, usize::from(len).saturating_sub(2)));
                }
            }
        }
        while out.len() % 4 != 0 {
            out.push(1); // NOP padding
        }
        out
    }

    /// Serialise header + options + payload (checksum left zero; use
    /// [`TcpSegment::fill_checksum_v4`] / `_v6` after embedding in IP).
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let opts = self.emit_options();
        let header_len = MIN_HEADER_LEN + opts.len();
        debug_assert!(header_len <= 60, "TCP header with options exceeds 60 bytes");
        let mut out = vec![0u8; header_len + payload.len()];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = ((header_len / 4) as u8) << 4;
        out[13] = self.flags.0;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        out[MIN_HEADER_LEN..header_len].copy_from_slice(&opts);
        out[header_len..].copy_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        TcpRepr {
            src_port: 44321,
            dst_port: 443,
            seq: 0x1234_5678,
            ack: 0x9abc_def0,
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 512,
            urgent: 0,
            options: vec![TcpOption::Nop, TcpOption::Nop, TcpOption::Timestamps(1000, 2000)],
        }
        .emit(b"hello")
    }

    #[test]
    fn emit_parse_round_trip() {
        let raw = sample();
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        assert_eq!(s.src_port(), 44321);
        assert_eq!(s.dst_port(), 443);
        assert_eq!(s.seq_number(), 0x1234_5678);
        assert_eq!(s.ack_number(), 0x9abc_def0);
        assert!(s.psh() && s.ack() && !s.syn() && !s.fin() && !s.rst());
        assert_eq!(s.window(), 512);
        assert_eq!(s.timestamps(), Some((1000, 2000)));
        assert_eq!(s.payload(), b"hello");
    }

    #[test]
    fn syn_options_parse() {
        let raw = TcpRepr {
            flags: TcpFlags::SYN,
            options: vec![
                TcpOption::Mss(1460),
                TcpOption::SackPermitted,
                TcpOption::WindowScale(7),
                TcpOption::Timestamps(42, 0),
            ],
            ..Default::default()
        }
        .emit(&[]);
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        let opts: Vec<_> = s.options().collect();
        assert!(opts.contains(&TcpOption::Mss(1460)));
        assert!(opts.contains(&TcpOption::SackPermitted));
        assert!(opts.contains(&TcpOption::WindowScale(7)));
        assert_eq!(s.mss(), Some(1460));
        assert!(s.syn());
    }

    #[test]
    fn checksum_v4_round_trip() {
        let mut raw = sample();
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        {
            let mut s = TcpSegment::new_checked(&mut raw[..]).unwrap();
            s.fill_checksum_v4(src, dst);
        }
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        assert!(s.verify_checksum_v4(src, dst));
        assert!(!s.verify_checksum_v4(Ipv4Addr::new(10, 0, 0, 3), dst));
    }

    #[test]
    fn checksum_v6_round_trip() {
        let mut raw = sample();
        let mut a = [0u8; 16];
        a[15] = 1;
        let src = Ipv6Addr(a);
        a[15] = 2;
        let dst = Ipv6Addr(a);
        {
            let mut s = TcpSegment::new_checked(&mut raw[..]).unwrap();
            s.fill_checksum_v6(src, dst);
        }
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        assert!(s.verify_checksum_v6(src, dst));
    }

    #[test]
    fn rewrite_implicit_flow_ids() {
        let mut raw = sample();
        {
            let mut s = TcpSegment::new_checked(&mut raw[..]).unwrap();
            s.set_seq_number(1);
            s.set_ack_number(2);
            assert!(s.set_timestamps(7, 8));
        }
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        assert_eq!(s.seq_number(), 1);
        assert_eq!(s.ack_number(), 2);
        assert_eq!(s.timestamps(), Some((7, 8)));
    }

    #[test]
    fn set_timestamps_absent_returns_false() {
        let mut raw = TcpRepr::default().emit(&[]);
        let mut s = TcpSegment::new_checked(&mut raw[..]).unwrap();
        assert!(!s.set_timestamps(1, 2));
    }

    #[test]
    fn malformed_option_stops_iteration() {
        // kind=2 (MSS) but bogus length 0 -> iterator terminates cleanly.
        let mut raw = TcpRepr::default().emit(&[]);
        raw[12] = 6 << 4; // pretend 24-byte header
        raw.extend_from_slice(&[2, 0, 0, 0]);
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        assert_eq!(s.options().count(), 0);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut raw = sample();
        raw[12] = 0xf0; // 60-byte header > buffer
        let short = &raw[..24];
        assert_eq!(TcpSegment::new_checked(short).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn port_mutators() {
        let mut raw = sample();
        {
            let mut s = TcpSegment::new_checked(&mut raw[..]).unwrap();
            s.set_src_port(1);
            s.set_dst_port(2);
        }
        let s = TcpSegment::new_checked(&raw[..]).unwrap();
        assert_eq!((s.src_port(), s.dst_port()), (1, 2));
    }
}
