//! ARP packet view (Ethernet/IPv4), plus reply construction.

use crate::error::{Error, Result};
use crate::ethernet::MacAddr;
use crate::ipv4::Ipv4Addr;

/// ARP body length for Ethernet/IPv4.
pub const PACKET_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Request (1).
    Request,
    /// Reply (2).
    Reply,
    /// Other operation value.
    Other(u16),
}

impl From<u16> for Operation {
    fn from(v: u16) -> Self {
        match v {
            1 => Operation::Request,
            2 => Operation::Reply,
            o => Operation::Other(o),
        }
    }
}

/// A read view over an ARP packet body (after the Ethernet header).
#[derive(Debug, Clone, Copy)]
pub struct ArpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> ArpPacket<T> {
    /// Wrap a buffer, validating length and hardware/protocol types.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < PACKET_LEN {
            return Err(Error::Truncated);
        }
        if u16::from_be_bytes([b[0], b[1]]) != 1 || u16::from_be_bytes([b[2], b[3]]) != 0x0800 {
            return Err(Error::Malformed); // only Ethernet/IPv4 supported
        }
        if b[4] != 6 || b[5] != 4 {
            return Err(Error::Malformed);
        }
        Ok(Self { buffer })
    }

    /// Operation (request/reply).
    pub fn operation(&self) -> Operation {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]]).into()
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[8], b[9], b[10], b[11], b[12], b[13]])
    }

    /// Sender protocol address.
    pub fn sender_ip(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[14], b[15], b[16], b[17]])
    }

    /// Target hardware address.
    pub fn target_mac(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[18], b[19], b[20], b[21], b[22], b[23]])
    }

    /// Target protocol address.
    pub fn target_ip(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[24], b[25], b[26], b[27]])
    }
}

/// Serialise an ARP body from parts.
pub fn emit(
    operation: Operation,
    sender_mac: MacAddr,
    sender_ip: Ipv4Addr,
    target_mac: MacAddr,
    target_ip: Ipv4Addr,
) -> Vec<u8> {
    let mut out = vec![0u8; PACKET_LEN];
    out[0..2].copy_from_slice(&1u16.to_be_bytes());
    out[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
    out[4] = 6;
    out[5] = 4;
    let op: u16 = match operation {
        Operation::Request => 1,
        Operation::Reply => 2,
        Operation::Other(o) => o,
    };
    out[6..8].copy_from_slice(&op.to_be_bytes());
    out[8..14].copy_from_slice(&sender_mac.0);
    out[14..18].copy_from_slice(&sender_ip.0);
    out[18..24].copy_from_slice(&target_mac.0);
    out[24..28].copy_from_slice(&target_ip.0);
    out
}

/// Build the reply to a request: swap roles, fill `our_mac`.
pub fn reply_to<T: AsRef<[u8]>>(request: &ArpPacket<T>, our_mac: MacAddr) -> Vec<u8> {
    emit(Operation::Reply, our_mac, request.target_ip(), request.sender_mac(), request.sender_ip())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (MacAddr, Ipv4Addr, Ipv4Addr) {
        (MacAddr([2, 0, 0, 0, 0, 9]), Ipv4Addr::new(192, 168, 1, 10), Ipv4Addr::new(192, 168, 1, 1))
    }

    #[test]
    fn emit_parse_round_trip() {
        let (mac, sip, tip) = addrs();
        let raw = emit(Operation::Request, mac, sip, MacAddr::default(), tip);
        let p = ArpPacket::new_checked(&raw[..]).unwrap();
        assert_eq!(p.operation(), Operation::Request);
        assert_eq!(p.sender_mac(), mac);
        assert_eq!(p.sender_ip(), sip);
        assert_eq!(p.target_ip(), tip);
    }

    #[test]
    fn reply_swaps_roles() {
        let (mac, sip, tip) = addrs();
        let raw = emit(Operation::Request, mac, sip, MacAddr::default(), tip);
        let req = ArpPacket::new_checked(&raw[..]).unwrap();
        let our = MacAddr([2, 0, 0, 0, 0, 1]);
        let rep_raw = reply_to(&req, our);
        let rep = ArpPacket::new_checked(&rep_raw[..]).unwrap();
        assert_eq!(rep.operation(), Operation::Reply);
        assert_eq!(rep.sender_mac(), our);
        assert_eq!(rep.sender_ip(), tip);
        assert_eq!(rep.target_mac(), mac);
        assert_eq!(rep.target_ip(), sip);
    }

    #[test]
    fn spurious_builder_parses_as_arp() {
        let (mac, sip, tip) = addrs();
        let frame = crate::spurious::arp_request(mac, sip, tip);
        let eth = crate::ethernet::EthernetFrame::new_checked(&frame[..]).unwrap();
        let p = ArpPacket::new_checked(eth.payload()).unwrap();
        assert_eq!(p.operation(), Operation::Request);
        assert_eq!(p.sender_ip(), sip);
    }

    #[test]
    fn rejects_wrong_types() {
        let mut raw = emit(
            Operation::Request,
            MacAddr::default(),
            Ipv4Addr::default(),
            MacAddr::default(),
            Ipv4Addr::default(),
        );
        raw[3] = 0x06; // protocol type 0x0806 (not IPv4)
        assert_eq!(ArpPacket::new_checked(&raw[..]).unwrap_err(), Error::Malformed);
        assert_eq!(ArpPacket::new_checked(&raw[..8]).unwrap_err(), Error::Truncated);
    }
}
