//! High-level frame builder: assemble complete Ethernet/IP/TCP|UDP
//! frames with correct lengths and checksums in one fluent expression.

use crate::ethernet::{self, EtherType, MacAddr};
use crate::ipv4::{IpProtocol, Ipv4Addr, Ipv4Repr};
use crate::ipv6::{Ipv6Addr, Ipv6Repr};
use crate::tcp::{TcpFlags, TcpOption, TcpRepr, TcpSegment};
use crate::udp::{self, UdpDatagram};

/// Which network layer the frame uses.
#[derive(Debug, Clone, Copy)]
enum NetLayer {
    V4 { src: Ipv4Addr, dst: Ipv4Addr },
    V6 { src: Ipv6Addr, dst: Ipv6Addr },
}

/// Which transport the frame uses.
#[derive(Debug, Clone)]
enum Transport {
    Tcp(TcpRepr),
    Udp { src_port: u16, dst_port: u16 },
}

/// Fluent builder for complete frames.
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    net: NetLayer,
    transport: Transport,
    ttl: u8,
    tos: u8,
    identification: u16,
    payload: Vec<u8>,
}

impl FrameBuilder {
    /// A TCP/IPv4 frame with sane defaults (used heavily in tests).
    pub fn tcp_ipv4_default() -> Self {
        Self {
            src_mac: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
            dst_mac: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
            net: NetLayer::V4 {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(93, 184, 216, 34),
            },
            transport: Transport::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 443,
                seq: 1000,
                ack: 2000,
                flags: TcpFlags::ACK,
                ..Default::default()
            }),
            ttl: 64,
            tos: 0,
            identification: 1,
            payload: Vec::new(),
        }
    }

    /// A UDP/IPv4 frame with sane defaults.
    pub fn udp_ipv4_default() -> Self {
        let mut b = Self::tcp_ipv4_default();
        b.transport = Transport::Udp { src_port: 40000, dst_port: 53 };
        b
    }

    /// Set IPv4 source address and transport source port.
    pub fn src(mut self, addr: Ipv4Addr, port: u16) -> Self {
        match &mut self.net {
            NetLayer::V4 { src, .. } => *src = addr,
            NetLayer::V6 { .. } => panic!("src(): builder is IPv6"),
        }
        match &mut self.transport {
            Transport::Tcp(t) => t.src_port = port,
            Transport::Udp { src_port, .. } => *src_port = port,
        }
        self
    }

    /// Set IPv4 destination address and transport destination port.
    pub fn dst(mut self, addr: Ipv4Addr, port: u16) -> Self {
        match &mut self.net {
            NetLayer::V4 { dst, .. } => *dst = addr,
            NetLayer::V6 { .. } => panic!("dst(): builder is IPv6"),
        }
        match &mut self.transport {
            Transport::Tcp(t) => t.dst_port = port,
            Transport::Udp { dst_port, .. } => *dst_port = port,
        }
        self
    }

    /// Switch to IPv6 with the given addresses (ports preserved).
    pub fn ipv6(mut self, src: Ipv6Addr, dst: Ipv6Addr) -> Self {
        self.net = NetLayer::V6 { src, dst };
        self
    }

    /// Set TCP sequence/ack numbers.
    pub fn seq_ack(mut self, seq: u32, ack: u32) -> Self {
        if let Transport::Tcp(t) = &mut self.transport {
            t.seq = seq;
            t.ack = ack;
        }
        self
    }

    /// Set TCP flags.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        if let Transport::Tcp(t) = &mut self.transport {
            t.flags = flags;
        }
        self
    }

    /// Set the TCP receive window.
    pub fn window(mut self, w: u16) -> Self {
        if let Transport::Tcp(t) = &mut self.transport {
            t.window = w;
        }
        self
    }

    /// Append a TCP option.
    pub fn option(mut self, o: TcpOption) -> Self {
        if let Transport::Tcp(t) = &mut self.transport {
            t.options.push(o);
        }
        self
    }

    /// Set IP TTL / hop limit.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Set IP TOS / traffic class.
    pub fn tos(mut self, tos: u8) -> Self {
        self.tos = tos;
        self
    }

    /// Set the IPv4 identification field.
    pub fn identification(mut self, id: u16) -> Self {
        self.identification = id;
        self
    }

    /// Set source/destination MAC addresses.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Set the application payload.
    pub fn payload(mut self, p: Vec<u8>) -> Self {
        self.payload = p;
        self
    }

    /// Assemble the frame with valid lengths and checksums.
    pub fn build(&self) -> Vec<u8> {
        let mut seg = match &self.transport {
            Transport::Tcp(t) => t.emit(&self.payload),
            Transport::Udp { src_port, dst_port } => udp::emit(*src_port, *dst_port, &self.payload),
        };
        match self.net {
            NetLayer::V4 { src, dst } => {
                match &self.transport {
                    Transport::Tcp(_) => {
                        let mut s = TcpSegment::new_checked(&mut seg[..]).expect("fresh TCP valid");
                        s.fill_checksum_v4(src, dst);
                    }
                    Transport::Udp { .. } => {
                        let mut d =
                            UdpDatagram::new_checked(&mut seg[..]).expect("fresh UDP valid");
                        d.fill_checksum_v4(src, dst);
                    }
                }
                let proto = match self.transport {
                    Transport::Tcp(_) => IpProtocol::Tcp,
                    Transport::Udp { .. } => IpProtocol::Udp,
                };
                let ip = Ipv4Repr {
                    src,
                    dst,
                    protocol: proto,
                    ttl: self.ttl,
                    tos: self.tos,
                    identification: self.identification,
                    dont_fragment: true,
                }
                .emit(&seg);
                ethernet::emit(self.dst_mac, self.src_mac, EtherType::Ipv4, &ip)
            }
            NetLayer::V6 { src, dst } => {
                match &self.transport {
                    Transport::Tcp(_) => {
                        let mut s = TcpSegment::new_checked(&mut seg[..]).expect("fresh TCP valid");
                        s.fill_checksum_v6(src, dst);
                    }
                    Transport::Udp { .. } => {
                        let mut d =
                            UdpDatagram::new_checked(&mut seg[..]).expect("fresh UDP valid");
                        d.fill_checksum_v6(src, dst);
                    }
                }
                let proto = match self.transport {
                    Transport::Tcp(_) => IpProtocol::Tcp,
                    Transport::Udp { .. } => IpProtocol::Udp,
                };
                let ip = Ipv6Repr {
                    src,
                    dst,
                    next_header: proto,
                    hop_limit: self.ttl,
                    traffic_class: self.tos,
                    flow_label: 0,
                }
                .emit(&seg);
                ethernet::emit(self.dst_mac, self.src_mac, EtherType::Ipv6, &ip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ParsedFrame;
    use crate::ipv4::Ipv4Packet;

    #[test]
    fn tcp_v4_checksums_valid() {
        let raw = FrameBuilder::tcp_ipv4_default()
            .payload(vec![1, 2, 3])
            .option(TcpOption::Timestamps(5, 6))
            .build();
        let eth = crate::ethernet::EthernetFrame::new_checked(&raw[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum_v4(ip.src_addr(), ip.dst_addr()));
        assert_eq!(tcp.timestamps(), Some((5, 6)));
        assert_eq!(tcp.payload(), &[1, 2, 3]);
    }

    #[test]
    fn udp_v4_parses() {
        let raw = FrameBuilder::udp_ipv4_default().payload(vec![9; 20]).build();
        let p = ParsedFrame::parse(&raw).unwrap();
        assert!(matches!(p.transport, crate::frame::TransportInfo::Udp { .. }));
        assert_eq!(p.payload_len(), 20);
    }

    #[test]
    fn tcp_v6_checksums_valid() {
        let mut a = [0u8; 16];
        a[15] = 1;
        let src = Ipv6Addr(a);
        a[15] = 2;
        let dst = Ipv6Addr(a);
        let raw = FrameBuilder::tcp_ipv4_default().ipv6(src, dst).payload(vec![7]).build();
        let p = ParsedFrame::parse(&raw).unwrap();
        assert!(p.transport.is_tcp());
        let eth = crate::ethernet::EthernetFrame::new_checked(&raw[..]).unwrap();
        let ip = crate::ipv6::Ipv6Packet::new_checked(eth.payload()).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum_v6(src, dst));
    }

    #[test]
    fn builder_setters_apply() {
        let raw = FrameBuilder::tcp_ipv4_default()
            .src(Ipv4Addr::new(1, 2, 3, 4), 1234)
            .dst(Ipv4Addr::new(5, 6, 7, 8), 80)
            .seq_ack(77, 88)
            .window(4096)
            .ttl(33)
            .tos(0x2e)
            .identification(0xabcd)
            .build();
        let p = ParsedFrame::parse(&raw).unwrap();
        match p.transport {
            crate::frame::TransportInfo::Tcp { src_port, dst_port, seq, ack, window, .. } => {
                assert_eq!((src_port, dst_port, seq, ack, window), (1234, 80, 77, 88, 4096));
            }
            _ => panic!("expected TCP"),
        }
        assert_eq!(p.ip.ttl(), 33);
    }
}
