//! # net-packet
//!
//! Typed wire-format views, builders, checksums and pcap I/O for the
//! protocols exercised by the traffic-classification benchmark:
//! Ethernet II, ARP, IPv4, IPv6, TCP (with options), UDP, ICMPv4/v6,
//! DNS, TLS records, and a set of "spurious" LAN protocols that the
//! dataset-cleaning stage must recognise and filter.
//!
//! The design follows the smoltcp idiom: a *view* type wraps a byte
//! buffer (`Packet<&[u8]>` / `Packet<&mut [u8]>`) and exposes typed
//! field accessors, while checked constructors validate length and
//! structure up front. Builders assemble full frames from the top of
//! the stack down, computing lengths and checksums.
//!
//! ```
//! use net_packet::ipv4::Ipv4Packet;
//! use net_packet::tcp::TcpSegment;
//!
//! let raw = net_packet::builder::FrameBuilder::tcp_ipv4_default().build();
//! let eth = net_packet::ethernet::EthernetFrame::new_checked(&raw[..]).unwrap();
//! let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
//! let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
//! assert!(tcp.verify_checksum_v4(ip.src_addr(), ip.dst_addr()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod conntrack;
pub mod dns;
pub mod error;
pub mod ethernet;
pub mod frame;
pub mod icmp;
pub mod ident;
pub mod ipv4;
pub mod ipv6;
pub mod ndp;
pub mod pcap;
pub mod reassembly;
pub mod spurious;
pub mod tcp;
pub mod tls;
pub mod udp;

pub use error::{Error, Result};
pub use frame::{ParsedFrame, TransportInfo};
pub use ident::ProtocolId;
