//! TLS record and handshake views.
//!
//! The generator emits TLS 1.2/1.3-style traffic: a ClientHello that may
//! carry a plaintext SNI extension (the leak the paper discusses for
//! CSTNET-TLS1.3), a ServerHello, then opaque `ApplicationData` records
//! whose payload is indistinguishable from random bytes.

use crate::error::{Error, Result};

/// TLS record header length.
pub const RECORD_HEADER_LEN: usize = 5;

/// TLS record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// ChangeCipherSpec (20).
    ChangeCipherSpec,
    /// Alert (21).
    Alert,
    /// Handshake (22).
    Handshake,
    /// ApplicationData (23).
    ApplicationData,
    /// Unknown content type.
    Other(u8),
}

impl From<u8> for ContentType {
    fn from(v: u8) -> Self {
        match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            o => ContentType::Other(o),
        }
    }
}

impl From<ContentType> for u8 {
    fn from(v: ContentType) -> u8 {
        match v {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::Other(o) => o,
        }
    }
}

/// A read view over a single TLS record.
#[derive(Debug, Clone, Copy)]
pub struct TlsRecord<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TlsRecord<T> {
    /// Wrap a buffer, validating the record header and length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < RECORD_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let rec = Self { buffer };
        if rec.record_len() as usize + RECORD_HEADER_LEN > len {
            return Err(Error::BadLength);
        }
        Ok(rec)
    }

    /// Record content type.
    pub fn content_type(&self) -> ContentType {
        self.buffer.as_ref()[0].into()
    }

    /// Legacy protocol version, e.g. 0x0303 for TLS 1.2.
    pub fn version(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[1], b[2]])
    }

    /// Record body length.
    pub fn record_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[3], b[4]])
    }

    /// Record body bytes.
    pub fn body(&self) -> &[u8] {
        &self.buffer.as_ref()[RECORD_HEADER_LEN..RECORD_HEADER_LEN + self.record_len() as usize]
    }

    /// If this is a Handshake/ClientHello record, extract the SNI host
    /// name, if the extension is present.
    pub fn sni(&self) -> Option<String> {
        if self.content_type() != ContentType::Handshake {
            return None;
        }
        let body = self.body();
        // HandshakeType(1) + length(3)
        if body.len() < 4 || body[0] != 1 {
            return None; // not a ClientHello
        }
        let mut i = 4usize;
        i += 2 + 32; // legacy_version + random
        if i >= body.len() {
            return None;
        }
        let sid_len = usize::from(*body.get(i)?);
        i += 1 + sid_len;
        let cs_len = usize::from(u16::from_be_bytes([*body.get(i)?, *body.get(i + 1)?]));
        i += 2 + cs_len;
        let cm_len = usize::from(*body.get(i)?);
        i += 1 + cm_len;
        let ext_total = usize::from(u16::from_be_bytes([*body.get(i)?, *body.get(i + 1)?]));
        i += 2;
        let end = (i + ext_total).min(body.len());
        while i + 4 <= end {
            let ext_type = u16::from_be_bytes([body[i], body[i + 1]]);
            let ext_len = usize::from(u16::from_be_bytes([body[i + 2], body[i + 3]]));
            i += 4;
            if i + ext_len > end {
                return None;
            }
            if ext_type == 0 {
                // server_name: list_len(2) + type(1) + name_len(2) + name
                let e = &body[i..i + ext_len];
                if e.len() < 5 || e[2] != 0 {
                    return None;
                }
                let name_len = usize::from(u16::from_be_bytes([e[3], e[4]]));
                if 5 + name_len > e.len() {
                    return None;
                }
                return Some(String::from_utf8_lossy(&e[5..5 + name_len]).into_owned());
            }
            i += ext_len;
        }
        None
    }
}

/// Build a TLS record from parts.
pub fn emit_record(ty: ContentType, version: u16, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
    out.push(ty.into());
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Build a ClientHello record; `sni` adds a server_name extension.
pub fn emit_client_hello(random: [u8; 32], sni: Option<&str>) -> Vec<u8> {
    let mut hello = Vec::new();
    hello.extend_from_slice(&0x0303u16.to_be_bytes()); // legacy_version TLS1.2
    hello.extend_from_slice(&random);
    hello.push(32); // session id length
    hello.extend_from_slice(&random); // reuse random as session id
                                      // cipher suites: TLS_AES_128_GCM_SHA256, TLS_AES_256_GCM_SHA384
    hello.extend_from_slice(&4u16.to_be_bytes());
    hello.extend_from_slice(&[0x13, 0x01, 0x13, 0x02]);
    hello.push(1); // compression methods length
    hello.push(0); // null
    let mut exts = Vec::new();
    // supported_versions (43): TLS 1.3
    exts.extend_from_slice(&43u16.to_be_bytes());
    exts.extend_from_slice(&3u16.to_be_bytes());
    exts.extend_from_slice(&[2, 0x03, 0x04]);
    if let Some(host) = sni {
        let name = host.as_bytes();
        exts.extend_from_slice(&0u16.to_be_bytes()); // server_name
        exts.extend_from_slice(&((name.len() + 5) as u16).to_be_bytes());
        exts.extend_from_slice(&((name.len() + 3) as u16).to_be_bytes()); // list len
        exts.push(0); // host_name
        exts.extend_from_slice(&(name.len() as u16).to_be_bytes());
        exts.extend_from_slice(name);
    }
    hello.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    hello.extend_from_slice(&exts);

    let mut hs = Vec::with_capacity(4 + hello.len());
    hs.push(1); // ClientHello
    hs.extend_from_slice(&(hello.len() as u32).to_be_bytes()[1..]);
    hs.extend_from_slice(&hello);
    emit_record(ContentType::Handshake, 0x0301, &hs)
}

/// Build an opaque ApplicationData record (encrypted payload stand-in).
pub fn emit_application_data(ciphertext: &[u8]) -> Vec<u8> {
    emit_record(ContentType::ApplicationData, 0x0303, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let raw = emit_record(ContentType::ApplicationData, 0x0303, &[1, 2, 3]);
        let r = TlsRecord::new_checked(&raw[..]).unwrap();
        assert_eq!(r.content_type(), ContentType::ApplicationData);
        assert_eq!(r.version(), 0x0303);
        assert_eq!(r.body(), &[1, 2, 3]);
    }

    #[test]
    fn client_hello_sni_extraction() {
        let raw = emit_client_hello([7u8; 32], Some("secret.example.com"));
        let r = TlsRecord::new_checked(&raw[..]).unwrap();
        assert_eq!(r.content_type(), ContentType::Handshake);
        assert_eq!(r.sni().as_deref(), Some("secret.example.com"));
    }

    #[test]
    fn client_hello_without_sni() {
        let raw = emit_client_hello([7u8; 32], None);
        let r = TlsRecord::new_checked(&raw[..]).unwrap();
        assert_eq!(r.sni(), None);
    }

    #[test]
    fn application_data_has_no_sni() {
        let raw = emit_application_data(&[0u8; 64]);
        let r = TlsRecord::new_checked(&raw[..]).unwrap();
        assert_eq!(r.sni(), None);
    }

    #[test]
    fn rejects_bad_record_len() {
        let mut raw = emit_record(ContentType::Alert, 0x0303, &[1]);
        raw[3..5].copy_from_slice(&500u16.to_be_bytes());
        assert_eq!(TlsRecord::new_checked(&raw[..]).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(TlsRecord::new_checked(&[22u8, 3, 3][..]).unwrap_err(), Error::Truncated);
    }
}
