//! Whole-frame parsing: decompose a raw Ethernet frame into the layered
//! header summary that the dataset pipeline, feature extractors and
//! encoders consume.

use crate::error::{Error, Result};
use crate::ethernet::{EtherType, EthernetFrame, MacAddr};
use crate::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use crate::ipv6::{Ipv6Addr, Ipv6Packet};
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;

/// Network-layer summary (IPv4 or IPv6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpInfo {
    /// IPv4 header fields.
    V4 {
        /// Source address.
        src: Ipv4Addr,
        /// Destination address.
        dst: Ipv4Addr,
        /// Type of service.
        tos: u8,
        /// Header length in bytes.
        header_len: u8,
        /// Identification field.
        identification: u16,
        /// Total length field.
        total_length: u16,
        /// Flags (3 bits).
        flags: u8,
        /// Fragment offset.
        fragment_offset: u16,
        /// TTL.
        ttl: u8,
        /// Protocol number.
        protocol: u8,
        /// Header checksum as transmitted.
        checksum: u16,
        /// Whether the checksum verifies.
        checksum_ok: bool,
    },
    /// IPv6 header fields.
    V6 {
        /// Source address.
        src: Ipv6Addr,
        /// Destination address.
        dst: Ipv6Addr,
        /// Traffic class.
        traffic_class: u8,
        /// Flow label.
        flow_label: u32,
        /// Payload length.
        payload_length: u16,
        /// Next header protocol number.
        next_header: u8,
        /// Hop limit.
        hop_limit: u8,
    },
}

impl IpInfo {
    /// The encapsulated transport protocol number.
    pub fn protocol(&self) -> u8 {
        match self {
            IpInfo::V4 { protocol, .. } => *protocol,
            IpInfo::V6 { next_header, .. } => *next_header,
        }
    }

    /// TTL (IPv4) or hop limit (IPv6).
    pub fn ttl(&self) -> u8 {
        match self {
            IpInfo::V4 { ttl, .. } => *ttl,
            IpInfo::V6 { hop_limit, .. } => *hop_limit,
        }
    }
}

/// Transport-layer summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportInfo {
    /// TCP header fields.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number — an implicit flow ID (§4.1).
        seq: u32,
        /// Acknowledgement number — an implicit flow ID (§4.1).
        ack: u32,
        /// Header length in bytes.
        header_len: u8,
        /// Flag byte.
        flags: u8,
        /// Receive window.
        window: u16,
        /// Checksum as transmitted.
        checksum: u16,
        /// Urgent pointer.
        urgent: u16,
        /// Timestamps option (TSval, TSecr) — an implicit flow ID.
        timestamps: Option<(u32, u32)>,
        /// MSS option, if present (SYN packets).
        mss: Option<u16>,
        /// Window-scale option, if present.
        window_scale: Option<u8>,
    },
    /// UDP header fields.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Length field.
        length: u16,
        /// Checksum as transmitted.
        checksum: u16,
    },
    /// ICMP summary.
    Icmp {
        /// Message type byte.
        msg_type: u8,
        /// Code byte.
        code: u8,
    },
    /// Unparsed transport.
    Other,
}

impl TransportInfo {
    /// Source port when the transport has ports, else 0.
    pub fn src_port(&self) -> u16 {
        match self {
            TransportInfo::Tcp { src_port, .. } | TransportInfo::Udp { src_port, .. } => *src_port,
            _ => 0,
        }
    }

    /// Destination port when the transport has ports, else 0.
    pub fn dst_port(&self) -> u16 {
        match self {
            TransportInfo::Tcp { dst_port, .. } | TransportInfo::Udp { dst_port, .. } => *dst_port,
            _ => 0,
        }
    }

    /// True for TCP.
    pub fn is_tcp(&self) -> bool {
        matches!(self, TransportInfo::Tcp { .. })
    }
}

/// A fully parsed frame: layered summaries plus byte-range offsets into
/// the original buffer (used by the ablation transforms and encoders to
/// slice headers vs payload without re-parsing).
#[derive(Debug, Clone)]
pub struct ParsedFrame {
    /// Source MAC address.
    pub src_mac: MacAddr,
    /// Destination MAC address.
    pub dst_mac: MacAddr,
    /// EtherType.
    pub ethertype: EtherType,
    /// Network-layer summary.
    pub ip: IpInfo,
    /// Transport-layer summary.
    pub transport: TransportInfo,
    /// Byte offset where the IP header starts.
    pub ip_offset: usize,
    /// Byte offset where the transport header starts.
    pub transport_offset: usize,
    /// Byte offset where the application payload starts.
    pub payload_offset: usize,
    /// Total frame length in bytes.
    pub frame_len: usize,
}

impl ParsedFrame {
    /// Parse a raw Ethernet frame carrying IPv4 or IPv6.
    pub fn parse(frame: &[u8]) -> Result<ParsedFrame> {
        let eth = EthernetFrame::new_checked(frame)?;
        let ip_offset = crate::ethernet::HEADER_LEN;
        let (ip, transport_rel, proto) = match eth.ethertype() {
            EtherType::Ipv4 => {
                let p = Ipv4Packet::new_checked(eth.payload())?;
                let info = IpInfo::V4 {
                    src: p.src_addr(),
                    dst: p.dst_addr(),
                    tos: p.tos(),
                    header_len: p.header_len() as u8,
                    identification: p.identification(),
                    total_length: p.total_length(),
                    flags: p.flags(),
                    fragment_offset: p.fragment_offset(),
                    ttl: p.ttl(),
                    protocol: p.protocol().into(),
                    checksum: p.header_checksum(),
                    checksum_ok: p.verify_checksum(),
                };
                (info, p.header_len(), p.protocol())
            }
            EtherType::Ipv6 => {
                let p = Ipv6Packet::new_checked(eth.payload())?;
                // walk extension headers to the upper-layer protocol
                let (upper_nh, ext_len) =
                    crate::ipv6::skip_extension_headers(p.next_header().into(), p.payload())?;
                let info = IpInfo::V6 {
                    src: p.src_addr(),
                    dst: p.dst_addr(),
                    traffic_class: p.traffic_class(),
                    flow_label: p.flow_label(),
                    payload_length: p.payload_length(),
                    next_header: upper_nh,
                    hop_limit: p.hop_limit(),
                };
                (info, crate::ipv6::HEADER_LEN + ext_len, IpProtocol::from(upper_nh))
            }
            _ => return Err(Error::BadVersion),
        };
        let transport_offset = ip_offset + transport_rel;
        let transport_bytes = &frame[transport_offset..];
        let (transport, payload_rel) = match proto {
            IpProtocol::Tcp => {
                let t = TcpSegment::new_checked(transport_bytes)?;
                let mut mss = None;
                let mut ws = None;
                for o in t.options() {
                    match o {
                        crate::tcp::TcpOption::Mss(m) => mss = Some(m),
                        crate::tcp::TcpOption::WindowScale(s) => ws = Some(s),
                        _ => {}
                    }
                }
                (
                    TransportInfo::Tcp {
                        src_port: t.src_port(),
                        dst_port: t.dst_port(),
                        seq: t.seq_number(),
                        ack: t.ack_number(),
                        header_len: t.header_len() as u8,
                        flags: t.flags().0,
                        window: t.window(),
                        checksum: t.checksum(),
                        urgent: t.urgent_pointer(),
                        timestamps: t.timestamps(),
                        mss,
                        window_scale: ws,
                    },
                    t.header_len(),
                )
            }
            IpProtocol::Udp => {
                let u = UdpDatagram::new_checked(transport_bytes)?;
                (
                    TransportInfo::Udp {
                        src_port: u.src_port(),
                        dst_port: u.dst_port(),
                        length: u.length(),
                        checksum: u.checksum(),
                    },
                    crate::udp::HEADER_LEN,
                )
            }
            IpProtocol::Icmp | IpProtocol::Icmpv6 => {
                if transport_bytes.len() < 2 {
                    return Err(Error::Truncated);
                }
                (
                    TransportInfo::Icmp { msg_type: transport_bytes[0], code: transport_bytes[1] },
                    crate::icmp::HEADER_LEN.min(transport_bytes.len()),
                )
            }
            _ => (TransportInfo::Other, 0),
        };
        Ok(ParsedFrame {
            src_mac: eth.src_addr(),
            dst_mac: eth.dst_addr(),
            ethertype: eth.ethertype(),
            ip,
            transport,
            ip_offset,
            transport_offset,
            payload_offset: transport_offset + payload_rel,
            frame_len: frame.len(),
        })
    }

    /// Slice the application payload out of the original frame buffer.
    pub fn payload_of<'a>(&self, frame: &'a [u8]) -> &'a [u8] {
        &frame[self.payload_offset.min(frame.len())..]
    }

    /// Slice the complete header region (Ethernet + IP + transport).
    pub fn headers_of<'a>(&self, frame: &'a [u8]) -> &'a [u8] {
        &frame[..self.payload_offset.min(frame.len())]
    }

    /// Application payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.frame_len.saturating_sub(self.payload_offset)
    }

    /// The canonical (direction-independent) 5-tuple key of this frame,
    /// hashable for flow grouping. Returns `None` for non-IP traffic.
    pub fn flow_key(&self) -> Option<FlowKey> {
        let (lo_ip, hi_ip, swapped) = match self.ip {
            IpInfo::V4 { src, dst, .. } => {
                let s = u128::from(src.to_u32());
                let d = u128::from(dst.to_u32());
                if s <= d {
                    (s, d, false)
                } else {
                    (d, s, true)
                }
            }
            IpInfo::V6 { src, dst, .. } => {
                let s = u128::from_be_bytes(src.0);
                let d = u128::from_be_bytes(dst.0);
                if s <= d {
                    (s, d, false)
                } else {
                    (d, s, true)
                }
            }
        };
        let (sp, dp) = (self.transport.src_port(), self.transport.dst_port());
        let (lo_port, hi_port) = if swapped { (dp, sp) } else { (sp, dp) };
        Some(FlowKey { lo_ip, hi_ip, lo_port, hi_port, protocol: self.ip.protocol() })
    }
}

/// Canonical bidirectional flow key: both directions of a connection
/// map to the same key (bi-flow, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Numerically smaller endpoint address.
    pub lo_ip: u128,
    /// Numerically larger endpoint address.
    pub hi_ip: u128,
    /// Port paired with `lo_ip`.
    pub lo_port: u16,
    /// Port paired with `hi_ip`.
    pub hi_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FrameBuilder;

    #[test]
    fn parse_tcp_ipv4() {
        let raw = FrameBuilder::tcp_ipv4_default().build();
        let p = ParsedFrame::parse(&raw).unwrap();
        assert!(p.transport.is_tcp());
        assert_eq!(p.ip_offset, 14);
        assert!(p.payload_offset >= p.transport_offset + 20);
        match p.ip {
            IpInfo::V4 { checksum_ok, .. } => assert!(checksum_ok),
            _ => panic!("expected v4"),
        }
    }

    #[test]
    fn flow_key_is_direction_independent() {
        let fwd = FrameBuilder::tcp_ipv4_default()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1111)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 443)
            .build();
        let rev = FrameBuilder::tcp_ipv4_default()
            .src(Ipv4Addr::new(10, 0, 0, 2), 443)
            .dst(Ipv4Addr::new(10, 0, 0, 1), 1111)
            .build();
        let k1 = ParsedFrame::parse(&fwd).unwrap().flow_key().unwrap();
        let k2 = ParsedFrame::parse(&rev).unwrap().flow_key().unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn different_flows_have_different_keys() {
        let a = FrameBuilder::tcp_ipv4_default()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1111)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 443)
            .build();
        let b = FrameBuilder::tcp_ipv4_default()
            .src(Ipv4Addr::new(10, 0, 0, 1), 1112)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 443)
            .build();
        let ka = ParsedFrame::parse(&a).unwrap().flow_key().unwrap();
        let kb = ParsedFrame::parse(&b).unwrap().flow_key().unwrap();
        assert_ne!(ka, kb);
    }

    #[test]
    fn payload_slicing() {
        let raw = FrameBuilder::tcp_ipv4_default().payload(b"secret".to_vec()).build();
        let p = ParsedFrame::parse(&raw).unwrap();
        assert_eq!(p.payload_of(&raw), b"secret");
        assert_eq!(p.payload_len(), 6);
        assert_eq!(p.headers_of(&raw).len() + 6, raw.len());
    }

    #[test]
    fn non_ip_rejected() {
        let raw = crate::spurious::arp_request(
            MacAddr([2, 0, 0, 0, 0, 1]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        assert!(ParsedFrame::parse(&raw).is_err());
    }
}
