//! Ethernet II frame view and builder.

use crate::error::{Error, Result};
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (multicast) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// EtherType values used in this benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800)
    Ipv4,
    /// ARP (0x0806)
    Arp,
    /// IPv6 (0x86dd)
    Ipv6,
    /// Anything else.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(o) => o,
        }
    }
}

/// Length of the Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// A read view over an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer, validating that the fixed header fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// Frame payload (everything after the 14-byte header).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Total frame length.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }

    /// Consume the view, returning the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source MAC address.
    pub fn set_src_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        let v: u16 = ty.into();
        self.buffer.as_mut()[12..14].copy_from_slice(&v.to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Serialise an Ethernet frame from parts into a fresh Vec.
pub fn emit(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&dst.0);
    out.extend_from_slice(&src.0);
    let ty: u16 = ethertype.into();
    out.extend_from_slice(&ty.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dst = MacAddr([1, 2, 3, 4, 5, 6]);
        let src = MacAddr([7, 8, 9, 10, 11, 12]);
        let raw = emit(dst, src, EtherType::Ipv4, &[0xde, 0xad]);
        let f = EthernetFrame::new_checked(&raw[..]).unwrap();
        assert_eq!(f.dst_addr(), dst);
        assert_eq!(f.src_addr(), src);
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), &[0xde, 0xad]);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn mutators() {
        let mut raw = emit(MacAddr::default(), MacAddr::default(), EtherType::Arp, &[0; 4]);
        let mut f = EthernetFrame::new_checked(&mut raw[..]).unwrap();
        f.set_dst_addr(MacAddr::BROADCAST);
        f.set_ethertype(EtherType::Ipv6);
        f.payload_mut()[0] = 0x60;
        let f = EthernetFrame::new_checked(&raw[..]).unwrap();
        assert!(f.dst_addr().is_broadcast());
        assert_eq!(f.ethertype(), EtherType::Ipv6);
        assert_eq!(f.payload()[0], 0x60);
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn display_format() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn ethertype_other_round_trip() {
        let t = EtherType::from(0x88cc);
        assert_eq!(t, EtherType::Other(0x88cc));
        assert_eq!(u16::from(t), 0x88cc);
    }
}
