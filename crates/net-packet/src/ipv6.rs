//! IPv6 packet view and serialiser.

use crate::error::{Error, Result};
use crate::ipv4::IpProtocol;
use std::fmt;

/// An IPv6 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ipv6Addr(pub [u8; 16]);

impl Ipv6Addr {
    /// True for ff00::/8 multicast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] == 0xff
    }

    /// True for fe80::/10 link-local.
    pub fn is_link_local(&self) -> bool {
        self.0[0] == 0xfe && self.0[1] & 0xc0 == 0x80
    }
}

impl fmt::Display for Ipv6Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, chunk) in self.0.chunks_exact(2).enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{:x}", u16::from_be_bytes([chunk[0], chunk[1]]))?;
        }
        Ok(())
    }
}

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// A read view over an IPv6 packet.
#[derive(Debug, Clone, Copy)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wrap a buffer, validating version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let pkt = Self { buffer };
        if pkt.version() != 6 {
            return Err(Error::BadVersion);
        }
        if HEADER_LEN + pkt.payload_length() as usize > len {
            return Err(Error::BadLength);
        }
        Ok(pkt)
    }

    /// IP version (must be 6).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Traffic class byte.
    pub fn traffic_class(&self) -> u8 {
        let b = self.buffer.as_ref();
        (b[0] << 4) | (b[1] >> 4)
    }

    /// 20-bit flow label.
    pub fn flow_label(&self) -> u32 {
        let b = self.buffer.as_ref();
        (u32::from(b[1] & 0x0f) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3])
    }

    /// Payload length field.
    pub fn payload_length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Next-header protocol.
    pub fn next_header(&self) -> IpProtocol {
        self.buffer.as_ref()[6].into()
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buffer.as_ref()[8..24]);
        Ipv6Addr(a)
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buffer.as_ref()[24..40]);
        Ipv6Addr(a)
    }

    /// Payload bytes, bounded by the payload-length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + self.payload_length() as usize]
    }
}

/// Field bundle used to serialise an IPv6 header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv6Repr {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Next-header protocol.
    pub next_header: IpProtocol,
    /// Hop limit.
    pub hop_limit: u8,
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
}

impl Default for Ipv6Repr {
    fn default() -> Self {
        Self {
            src: Ipv6Addr::default(),
            dst: Ipv6Addr::default(),
            next_header: IpProtocol::Tcp,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        }
    }
}

impl Ipv6Repr {
    /// Serialise header + payload into a fresh Vec.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; HEADER_LEN + payload.len()];
        out[0] = 0x60 | (self.traffic_class >> 4);
        out[1] = (self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0f);
        out[2] = (self.flow_label >> 8) as u8;
        out[3] = self.flow_label as u8;
        out[4..6].copy_from_slice(&(payload.len() as u16).to_be_bytes());
        out[6] = self.next_header.into();
        out[7] = self.hop_limit;
        out[8..24].copy_from_slice(&self.src.0);
        out[24..40].copy_from_slice(&self.dst.0);
        out[HEADER_LEN..].copy_from_slice(payload);
        out
    }
}

/// Walk IPv6 extension headers starting from `next_header` at the
/// beginning of `payload`, returning the upper-layer protocol and the
/// byte offset where it starts. Recognises Hop-by-Hop (0), Routing
/// (43), Fragment (44) and Destination Options (60); anything else is
/// treated as the upper layer.
pub fn skip_extension_headers(next_header: u8, payload: &[u8]) -> Result<(u8, usize)> {
    let mut nh = next_header;
    let mut off = 0usize;
    for _ in 0..8 {
        // bounded chain length — malformed loops must not spin
        match nh {
            0 | 43 | 60 => {
                if off + 2 > payload.len() {
                    return Err(Error::Truncated);
                }
                let len = 8 + usize::from(payload[off + 1]) * 8;
                nh = payload[off];
                off += len;
                if off > payload.len() {
                    return Err(Error::BadLength);
                }
            }
            44 => {
                // Fragment header: fixed 8 bytes
                if off + 8 > payload.len() {
                    return Err(Error::Truncated);
                }
                nh = payload[off];
                off += 8;
            }
            _ => return Ok((nh, off)),
        }
    }
    Err(Error::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> Ipv6Addr {
        let mut a = [0u8; 16];
        a[0] = 0x20;
        a[1] = 0x01;
        a[15] = last;
        Ipv6Addr(a)
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = Ipv6Repr {
            src: addr(1),
            dst: addr(2),
            next_header: IpProtocol::Udp,
            hop_limit: 55,
            traffic_class: 0xa5,
            flow_label: 0xabcde,
        };
        let raw = repr.emit(&[9, 8, 7]);
        let p = Ipv6Packet::new_checked(&raw[..]).unwrap();
        assert_eq!(p.version(), 6);
        assert_eq!(p.traffic_class(), 0xa5);
        assert_eq!(p.flow_label(), 0xabcde);
        assert_eq!(p.payload_length(), 3);
        assert_eq!(p.next_header(), IpProtocol::Udp);
        assert_eq!(p.hop_limit(), 55);
        assert_eq!(p.src_addr(), addr(1));
        assert_eq!(p.dst_addr(), addr(2));
        assert_eq!(p.payload(), &[9, 8, 7]);
    }

    #[test]
    fn rejects_v4_buffer() {
        let raw = crate::ipv4::Ipv4Repr::default().emit(&[0u8; 30]);
        assert_eq!(Ipv6Packet::new_checked(&raw[..]).unwrap_err(), Error::BadVersion);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(Ipv6Packet::new_checked(&[0x60u8; 39][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn rejects_overlong_payload_field() {
        let mut raw = Ipv6Repr::default().emit(&[1, 2, 3]);
        raw[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Ipv6Packet::new_checked(&raw[..]).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn address_classes() {
        let mut ll = [0u8; 16];
        ll[0] = 0xfe;
        ll[1] = 0x80;
        assert!(Ipv6Addr(ll).is_link_local());
        let mut mc = [0u8; 16];
        mc[0] = 0xff;
        assert!(Ipv6Addr(mc).is_multicast());
        assert!(!addr(1).is_multicast());
    }

    #[test]
    fn display_format() {
        assert_eq!(addr(5).to_string(), "2001:0:0:0:0:0:0:5");
    }

    #[test]
    fn extension_header_walk() {
        // Hop-by-Hop (8 bytes) -> Destination Options (16 bytes) -> TCP (6)
        let mut payload = vec![0u8; 24];
        payload[0] = 60; // HBH says next is DestOpts
        payload[1] = 0; // HBH length 8 bytes
        payload[8] = 6; // DestOpts says next is TCP
        payload[9] = 1; // DestOpts length 16 bytes
        let (nh, off) = skip_extension_headers(0, &payload).unwrap();
        assert_eq!(nh, 6);
        assert_eq!(off, 24);
    }

    #[test]
    fn no_extension_headers_is_identity() {
        let (nh, off) = skip_extension_headers(6, &[1, 2, 3]).unwrap();
        assert_eq!((nh, off), (6, 0));
        let (nh, off) = skip_extension_headers(17, &[]).unwrap();
        assert_eq!((nh, off), (17, 0));
    }

    #[test]
    fn fragment_header_fixed_size() {
        let mut payload = vec![0u8; 10];
        payload[0] = 17; // next = UDP
        let (nh, off) = skip_extension_headers(44, &payload).unwrap();
        assert_eq!((nh, off), (17, 8));
    }

    #[test]
    fn truncated_extension_rejected() {
        assert_eq!(skip_extension_headers(0, &[0]).unwrap_err(), Error::Truncated);
        // header claims more length than present
        let payload = [6u8, 5, 0, 0, 0, 0, 0, 0];
        assert_eq!(skip_extension_headers(0, &payload).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn malformed_loop_bounded() {
        // Each HBH points to another HBH: the walker must bail out.
        let mut payload = vec![0u8; 128];
        for i in (0..128).step_by(8) {
            payload[i] = 0; // next = HBH again
            payload[i + 1] = 0;
        }
        assert_eq!(skip_extension_headers(0, &payload).unwrap_err(), Error::Malformed);
    }
}
