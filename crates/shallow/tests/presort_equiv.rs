//! The presorted-column tree fit must reproduce the naive per-node
//! CART search exactly: same splits, same thresholds, same Gini
//! importance, verified against an inline reference implementation.

use shallow::tree::{DecisionTree, TreeParams};

// ---- old naive reference implementation (pre-presort) ----

fn gini(counts: &[u32], total: u32) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = f64::from(total);
    1.0 - counts.iter().map(|&c| (f64::from(c) / t).powi(2)).sum::<f64>()
}

struct RefTree {
    n_nodes: usize,
    importance: Vec<f64>,
    preds: Vec<u16>,
}

fn ref_fit(
    x: &[&[f32]],
    y: &[u16],
    n_classes: usize,
    params: TreeParams,
    grid: &[&[f32]],
) -> RefTree {
    #[derive(Clone)]
    enum Node {
        Leaf { label: u16 },
        Split { feature: usize, threshold: f32, left: usize, right: usize },
    }
    struct B<'a> {
        x: &'a [&'a [f32]],
        y: &'a [u16],
        n_classes: usize,
        params: TreeParams,
        nodes: Vec<Node>,
        importance: Vec<f64>,
    }
    impl B<'_> {
        fn majority(&self, idx: &[usize]) -> u16 {
            let mut counts = vec![0u32; self.n_classes];
            for &i in idx {
                counts[usize::from(self.y[i])] += 1;
            }
            counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(l, _)| l as u16).unwrap_or(0)
        }
        fn build(&mut self, idx: Vec<usize>, depth: usize) -> usize {
            let node_id = self.nodes.len();
            let mut counts = vec![0u32; self.n_classes];
            for &i in &idx {
                counts[usize::from(self.y[i])] += 1;
            }
            let total = idx.len() as u32;
            let node_gini = gini(&counts, total);
            let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
            if pure || depth >= self.params.max_depth || idx.len() < self.params.min_samples_split {
                let label = self.majority(&idx);
                self.nodes.push(Node::Leaf { label });
                return node_id;
            }
            let n_features = self.x[0].len();
            let feats: Vec<usize> = (0..n_features).collect();
            let mut best: Option<(usize, f32, f64)> = None;
            let mut vals: Vec<f32> = Vec::new();
            for &f in &feats {
                vals.clear();
                vals.extend(idx.iter().map(|&i| self.x[i][f]));
                vals.sort_by(f32::total_cmp);
                vals.dedup();
                if vals.len() < 2 {
                    continue;
                }
                let step = (vals.len() / self.params.max_thresholds).max(1);
                let candidates: Vec<f32> = (step..vals.len())
                    .step_by(step)
                    .map(|t| (vals[t - 1] + vals[t]) / 2.0)
                    .collect();
                for threshold in candidates {
                    let mut lc = vec![0u32; self.n_classes];
                    let mut rc = vec![0u32; self.n_classes];
                    for &i in &idx {
                        if self.x[i][f] <= threshold {
                            lc[usize::from(self.y[i])] += 1;
                        } else {
                            rc[usize::from(self.y[i])] += 1;
                        }
                    }
                    let lt: u32 = lc.iter().sum();
                    let rt: u32 = rc.iter().sum();
                    if lt > 0 && rt > 0 {
                        let w = (f64::from(lt) * gini(&lc, lt) + f64::from(rt) * gini(&rc, rt))
                            / f64::from(total);
                        if best.is_none_or(|(_, _, bw)| w < bw) {
                            best = Some((f, threshold, w));
                        }
                    }
                }
            }
            let Some((feature, threshold, w)) = best else {
                let label = self.majority(&idx);
                self.nodes.push(Node::Leaf { label });
                return node_id;
            };
            let decrease = (node_gini - w) * f64::from(total);
            if decrease <= 1e-12 {
                let label = self.majority(&idx);
                self.nodes.push(Node::Leaf { label });
                return node_id;
            }
            self.importance[feature] += decrease;
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.into_iter().partition(|&i| self.x[i][feature] <= threshold);
            self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
            let left = self.build(li, depth + 1);
            let right = self.build(ri, depth + 1);
            if let Node::Split { left: l, right: r, .. } = &mut self.nodes[node_id] {
                *l = left;
                *r = right;
            }
            node_id
        }
        fn predict_one(&self, x: &[f32]) -> u16 {
            let mut n = 0usize;
            loop {
                match &self.nodes[n] {
                    Node::Leaf { label } => return *label,
                    Node::Split { feature, threshold, left, right } => {
                        n = if x[*feature] <= *threshold { *left } else { *right };
                    }
                }
            }
        }
    }
    let mut b = B { x, y, n_classes, params, nodes: Vec::new(), importance: vec![0.0; x[0].len()] };
    b.build((0..x.len()).collect(), 0);
    RefTree {
        n_nodes: b.nodes.len(),
        importance: b.importance.clone(),
        preds: grid.iter().map(|r| b.predict_one(r)).collect(),
    }
}

fn lcg(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 40) as f32) / ((1u64 << 24) as f32)
}

#[test]
fn presorted_tree_matches_naive_reference_exactly() {
    let mut st = 12345u64;
    for case in 0..20 {
        let n = 40 + case * 13;
        let n_classes = 2 + case % 4;
        let mut data: Vec<[f32; 5]> = Vec::new();
        let mut y: Vec<u16> = Vec::new();
        for _ in 0..n {
            let c = (lcg(&mut st) * n_classes as f32) as u16 % n_classes as u16;
            // quantised features to force ties/duplicates, one noise col
            data.push([
                f32::from(c) + (lcg(&mut st) * 8.0).floor() * 0.25,
                (lcg(&mut st) * 4.0).floor(),
                f32::from(c) * 0.5 - (lcg(&mut st) * 6.0).floor() * 0.1,
                1.0, // constant column
                lcg(&mut st),
            ]);
            y.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let params = TreeParams {
            max_depth: 2 + case % 8,
            min_samples_split: 2 + case % 5,
            max_features: None,
            max_thresholds: 3 + case % 24,
            extra_random: false,
        };
        let t = DecisionTree::fit(&x, &y, n_classes, params, 1);
        let r = ref_fit(&x, &y, n_classes, params, &x);
        assert_eq!(t.n_nodes(), r.n_nodes, "case {case}: node count");
        assert_eq!(t.importance, r.importance, "case {case}: importance (exact)");
        assert_eq!(t.predict(&x), r.preds, "case {case}: predictions");
    }
}
