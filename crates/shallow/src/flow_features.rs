//! Flow-level statistical features: the classic
//! size/timing/direction summary statistics used by pre-deep-learning
//! flow classifiers (the natural shallow counterpart to the encoders'
//! flow embeddings in Table 9).

use dataset::record::PacketRecord;

/// Number of flow-level features.
pub const N_FLOW_FEATURES: usize = 22;

/// Names of the flow features (reporting/importance plots).
pub fn flow_feature_names() -> [&'static str; N_FLOW_FEATURES] {
    [
        "N PKTS",
        "N FWD",
        "N BWD",
        "FWD RATIO",
        "BYTES",
        "FWD BYTES",
        "BWD BYTES",
        "LEN MEAN",
        "LEN STD",
        "LEN MIN",
        "LEN MAX",
        "FWD LEN MEAN",
        "BWD LEN MEAN",
        "IAT MEAN",
        "IAT STD",
        "IAT MIN",
        "IAT MAX",
        "DURATION",
        "SRV PORT",
        "TTL FWD",
        "TTL BWD",
        "PROTO",
    ]
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Extract the statistical feature vector of one flow (its packets in
/// time order).
pub fn extract_flow_features(packets: &[&PacketRecord]) -> [f32; N_FLOW_FEATURES] {
    let mut f = [0.0f32; N_FLOW_FEATURES];
    if packets.is_empty() {
        return f;
    }
    let lens: Vec<f64> = packets.iter().map(|p| p.frame.len() as f64).collect();
    let fwd: Vec<&&PacketRecord> = packets.iter().filter(|p| p.from_client).collect();
    let bwd: Vec<&&PacketRecord> = packets.iter().filter(|p| !p.from_client).collect();
    let iats: Vec<f64> = packets.windows(2).map(|w| (w[1].ts - w[0].ts).max(0.0)).collect();

    f[0] = packets.len() as f32;
    f[1] = fwd.len() as f32;
    f[2] = bwd.len() as f32;
    f[3] = fwd.len() as f32 / packets.len() as f32;
    f[4] = lens.iter().sum::<f64>() as f32;
    f[5] = fwd.iter().map(|p| p.frame.len()).sum::<usize>() as f32;
    f[6] = bwd.iter().map(|p| p.frame.len()).sum::<usize>() as f32;
    let (m, s) = mean_std(&lens);
    f[7] = m as f32;
    f[8] = s as f32;
    f[9] = lens.iter().copied().fold(f64::INFINITY, f64::min) as f32;
    f[10] = lens.iter().copied().fold(0.0, f64::max) as f32;
    let (fm, _) = mean_std(&fwd.iter().map(|p| p.frame.len() as f64).collect::<Vec<_>>());
    let (bm, _) = mean_std(&bwd.iter().map(|p| p.frame.len() as f64).collect::<Vec<_>>());
    f[11] = fm as f32;
    f[12] = bm as f32;
    let (im, is) = mean_std(&iats);
    f[13] = im as f32;
    f[14] = is as f32;
    f[15] = iats.iter().copied().fold(f64::INFINITY, f64::min).min(1e9) as f32;
    f[16] = iats.iter().copied().fold(0.0, f64::max) as f32;
    f[17] = (packets.last().expect("non-empty").ts - packets[0].ts) as f32;
    // server port: destination port of the first client packet
    let first = packets.iter().find(|p| p.from_client).unwrap_or(&packets[0]);
    f[18] = f32::from(first.parsed.transport.dst_port());
    f[19] = fwd.first().map_or(0.0, |p| f32::from(p.parsed.ip.ttl()));
    f[20] = bwd.first().map_or(0.0, |p| f32::from(p.parsed.ip.ttl()));
    f[21] = f32::from(packets[0].parsed.ip.protocol());
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::record::Prepared;
    use traffic_synth::{DatasetKind, DatasetSpec};

    fn prepared() -> Prepared {
        let t = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 6, flows_per_class: 2 }.generate();
        Prepared::from_trace(&t)
    }

    #[test]
    fn names_cover_vector() {
        assert_eq!(flow_feature_names().len(), N_FLOW_FEATURES);
    }

    #[test]
    fn features_are_sane() {
        let d = prepared();
        for (_, idxs) in d.flows().into_iter().take(20) {
            let pkts: Vec<&PacketRecord> = idxs.iter().map(|&i| &d.records[i]).collect();
            let f = extract_flow_features(&pkts);
            assert_eq!(f[0] as usize, pkts.len());
            assert_eq!(f[0], f[1] + f[2], "fwd + bwd = total");
            assert!(f[9] <= f[7] && f[7] <= f[10], "min <= mean <= max");
            assert!(f[17] >= 0.0, "duration non-negative");
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn empty_flow_is_zero() {
        let f = extract_flow_features(&[]);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn flow_features_separate_classes_better_than_chance() {
        use crate::forest::{ForestParams, RandomForest};
        use dataset::Task;
        let d = prepared();
        let task = Task::VpnApp;
        let mut x: Vec<[f32; N_FLOW_FEATURES]> = Vec::new();
        let mut y: Vec<u16> = Vec::new();
        for (_, idxs) in d.flows() {
            let pkts: Vec<&PacketRecord> = idxs.iter().map(|&i| &d.records[i]).collect();
            x.push(extract_flow_features(&pkts));
            y.push(task.label_of(&d, &d.records[idxs[0]]));
        }
        let rows: Vec<&[f32]> = x.iter().map(|r| r.as_slice()).collect();
        let n = rows.len();
        let cut = n * 3 / 4;
        let rf = RandomForest::fit(&rows[..cut], &y[..cut], 16, ForestParams::default(), 1);
        let preds = rf.predict(&rows[cut..]);
        let acc =
            preds.iter().zip(&y[cut..]).filter(|(p, t)| p == t).count() as f64 / (n - cut) as f64;
        assert!(acc > 0.2, "flow-stats RF above 16-way chance, got {acc}");
    }
}
