//! Brute-force k-nearest-neighbour classifier with z-score
//! standardisation (one of the paper's "shallow head" options, §2).

/// A fitted k-NN classifier (stores the standardised training set).
pub struct KnnClassifier {
    k: usize,
    x: Vec<Vec<f32>>,
    y: Vec<u16>,
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl KnnClassifier {
    /// Fit: store the training data and its per-feature statistics.
    pub fn fit(x: &[&[f32]], y: &[u16], k: usize) -> KnnClassifier {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        let n = x.len() as f32;
        let mut mean = vec![0.0f32; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(*row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0f32; d];
        for row in x {
            for ((s, v), m) in std.iter_mut().zip(*row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        let xs = x
            .iter()
            .map(|row| row.iter().zip(&mean).zip(&std).map(|((v, m), s)| (v - m) / s).collect())
            .collect();
        KnnClassifier { k: k.max(1), x: xs, y: y.to_vec(), mean, std }
    }

    fn standardise(&self, row: &[f32]) -> Vec<f32> {
        row.iter().zip(&self.mean).zip(&self.std).map(|((v, m), s)| (v - m) / s).collect()
    }

    /// Predict the label of one row by majority among the k nearest.
    pub fn predict_one(&self, row: &[f32]) -> u16 {
        let q = self.standardise(row);
        let mut dists: Vec<(f32, u16)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(t, &label)| {
                let d: f32 = t.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, label)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut counts = std::collections::HashMap::new();
        for (_, l) in &dists[..k] {
            *counts.entry(*l).or_insert(0u32) += 1;
        }
        // Break vote ties toward the smallest label: HashMap iteration
        // order varies per process, and a tie-break that depends on it
        // would make predictions — and every serialised record built
        // from them — nondeterministic across runs.
        counts
            .into_iter()
            .max_by_key(|&(l, c)| (c, std::cmp::Reverse(l)))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    /// Predict labels for many rows.
    pub fn predict(&self, rows: &[&[f32]]) -> Vec<u16> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }
}

impl nn::frozen::FrozenArtifact for KnnClassifier {
    const KIND: &'static str = "knn";

    fn write_payload(&self, w: &mut nn::frozen::PayloadWriter) {
        w.u32(self.k as u32);
        w.u32(self.mean.len() as u32);
        w.f32s(&self.mean);
        w.f32s(&self.std);
        w.u16s(&self.y);
        let flat: Vec<f32> = self.x.iter().flatten().copied().collect();
        w.f32s(&flat);
    }

    fn read_payload(r: &mut nn::frozen::PayloadReader) -> Result<KnnClassifier, String> {
        let k = r.u32()? as usize;
        if k == 0 {
            return Err("k must be at least 1".into());
        }
        let d = r.u32()? as usize;
        let mean = r.f32s()?;
        let std = r.f32s()?;
        if mean.len() != d || std.len() != d {
            return Err(format!(
                "statistics length mismatch: dim {d}, mean {}, std {}",
                mean.len(),
                std.len()
            ));
        }
        if std.iter().any(|&s| !s.is_finite() || s <= 0.0) {
            return Err("non-positive standard deviation".into());
        }
        let y = r.u16s()?;
        if y.is_empty() {
            return Err("empty training set".into());
        }
        let flat = r.f32s()?;
        if flat.len() != y.len() * d {
            return Err(format!(
                "row data length {} != {} rows x {d} features",
                flat.len(),
                y.len()
            ));
        }
        let x = flat.chunks(d.max(1)).map(<[f32]>::to_vec).collect::<Vec<_>>();
        // d == 0 degenerates to rows of no features; keep row count right.
        let x = if d == 0 { vec![Vec::new(); y.len()] } else { x };
        Ok(KnnClassifier { k, x, y, mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_exact_match() {
        let data = [[0.0f32, 0.0], [10.0, 10.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let knn = KnnClassifier::fit(&x, &[0, 1], 1);
        assert_eq!(knn.predict_one(&[0.5, 0.5]), 0);
        assert_eq!(knn.predict_one(&[9.0, 9.5]), 1);
    }

    #[test]
    fn k_majority_smooths_outlier() {
        // One mislabelled point amid a cluster; k=3 out-votes it.
        let data = [[0.0f32], [0.1], [0.2], [0.15]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let y = [0u16, 0, 0, 1];
        let knn = KnnClassifier::fit(&x, &y, 3);
        assert_eq!(knn.predict_one(&[0.14]), 0);
    }

    #[test]
    fn standardisation_balances_scales() {
        // Feature 0 is informative but tiny; feature 1 is huge noise.
        let data = [[0.001f32, 5000.0], [0.002, 9000.0], [0.101, 7000.0], [0.102, 6000.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let y = [0u16, 0, 1, 1];
        let knn = KnnClassifier::fit(&x, &y, 1);
        assert_eq!(knn.predict_one(&[0.0015, 7500.0]), 0);
        assert_eq!(knn.predict_one(&[0.1015, 5500.0]), 1);
    }

    #[test]
    fn k_larger_than_dataset_clamped() {
        let data = [[0.0f32], [1.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let knn = KnnClassifier::fit(&x, &[0, 1], 10);
        let _ = knn.predict_one(&[0.4]); // must not panic
    }

    #[test]
    fn frozen_round_trip_predicts_bitwise_identically() {
        use nn::frozen::FrozenArtifact;
        let data = [[0.001f32, 5000.0], [0.002, 9000.0], [0.101, 7000.0], [0.102, 6000.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let knn = KnnClassifier::fit(&x, &[0, 0, 1, 1], 3);
        let bytes = knn.to_frozen_bytes();
        assert_eq!(bytes, knn.to_frozen_bytes(), "byte-stable encode");
        let back = KnnClassifier::from_frozen_bytes(&bytes).expect("round-trip");
        for probe in [[0.0015f32, 7500.0], [0.1015, 5500.0], [0.05, 6400.0]] {
            assert_eq!(back.predict_one(&probe), knn.predict_one(&probe));
        }
    }

    #[test]
    fn corrupt_frozen_knn_is_refused() {
        use nn::frozen::FrozenArtifact;
        let data = [[0.0f32, 1.0], [2.0, 3.0], [4.0, 5.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let knn = KnnClassifier::fit(&x, &[0, 1, 2], 1);
        let good = knn.to_frozen_bytes();
        for offset in 0..good.len() {
            let mut bad = good.clone();
            bad[offset] ^= 0x04;
            assert!(
                KnnClassifier::from_frozen_bytes(&bad).is_err(),
                "flip at {offset} must be refused"
            );
        }
        assert!(KnnClassifier::from_frozen_bytes(&good[..good.len() - 1]).is_err(), "truncated");
    }
}
