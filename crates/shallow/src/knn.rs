//! Brute-force k-nearest-neighbour classifier with z-score
//! standardisation (one of the paper's "shallow head" options, §2).

/// A fitted k-NN classifier (stores the standardised training set).
pub struct KnnClassifier {
    k: usize,
    x: Vec<Vec<f32>>,
    y: Vec<u16>,
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl KnnClassifier {
    /// Fit: store the training data and its per-feature statistics.
    pub fn fit(x: &[&[f32]], y: &[u16], k: usize) -> KnnClassifier {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        let n = x.len() as f32;
        let mut mean = vec![0.0f32; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(*row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0f32; d];
        for row in x {
            for ((s, v), m) in std.iter_mut().zip(*row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        let xs = x
            .iter()
            .map(|row| row.iter().zip(&mean).zip(&std).map(|((v, m), s)| (v - m) / s).collect())
            .collect();
        KnnClassifier { k: k.max(1), x: xs, y: y.to_vec(), mean, std }
    }

    fn standardise(&self, row: &[f32]) -> Vec<f32> {
        row.iter().zip(&self.mean).zip(&self.std).map(|((v, m), s)| (v - m) / s).collect()
    }

    /// Predict the label of one row by majority among the k nearest.
    pub fn predict_one(&self, row: &[f32]) -> u16 {
        let q = self.standardise(row);
        let mut dists: Vec<(f32, u16)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(t, &label)| {
                let d: f32 = t.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, label)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut counts = std::collections::HashMap::new();
        for (_, l) in &dists[..k] {
            *counts.entry(*l).or_insert(0u32) += 1;
        }
        // Break vote ties toward the smallest label: HashMap iteration
        // order varies per process, and a tie-break that depends on it
        // would make predictions — and every serialised record built
        // from them — nondeterministic across runs.
        counts
            .into_iter()
            .max_by_key(|&(l, c)| (c, std::cmp::Reverse(l)))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    /// Predict labels for many rows.
    pub fn predict(&self, rows: &[&[f32]]) -> Vec<u16> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_exact_match() {
        let data = [[0.0f32, 0.0], [10.0, 10.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let knn = KnnClassifier::fit(&x, &[0, 1], 1);
        assert_eq!(knn.predict_one(&[0.5, 0.5]), 0);
        assert_eq!(knn.predict_one(&[9.0, 9.5]), 1);
    }

    #[test]
    fn k_majority_smooths_outlier() {
        // One mislabelled point amid a cluster; k=3 out-votes it.
        let data = [[0.0f32], [0.1], [0.2], [0.15]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let y = [0u16, 0, 0, 1];
        let knn = KnnClassifier::fit(&x, &y, 3);
        assert_eq!(knn.predict_one(&[0.14]), 0);
    }

    #[test]
    fn standardisation_balances_scales() {
        // Feature 0 is informative but tiny; feature 1 is huge noise.
        let data = [[0.001f32, 5000.0], [0.002, 9000.0], [0.101, 7000.0], [0.102, 6000.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let y = [0u16, 0, 1, 1];
        let knn = KnnClassifier::fit(&x, &y, 1);
        assert_eq!(knn.predict_one(&[0.0015, 7500.0]), 0);
        assert_eq!(knn.predict_one(&[0.1015, 5500.0]), 1);
    }

    #[test]
    fn k_larger_than_dataset_clamped() {
        let data = [[0.0f32], [1.0]];
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let knn = KnnClassifier::fit(&x, &[0, 1], 10);
        let _ = knn.predict_one(&[0.4]); // must not panic
    }
}
