//! Table-12 hand-crafted header features.
//!
//! One fixed-width `f32` vector per packet, fields missing for a
//! protocol padded with zero (App. A.2 "Shallow model"). 32-bit fields
//! (SeqNo/AckNo/timestamps) are split into hi/lo 16-bit halves so no
//! precision is lost in `f32`.

use dataset::record::PacketRecord;
use net_packet::frame::{IpInfo, TransportInfo};

/// Number of features in the vector.
pub const N_FEATURES: usize = 39;

/// Which feature groups to include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Include source/destination IP octets (explicit flow IDs).
    /// Table 8's "w/o IP addr" column sets this to false.
    pub with_ip: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self { with_ip: true }
    }
}

/// Human-readable feature names (Fig. 5 axis labels).
pub fn feature_names() -> [&'static str; N_FEATURES] {
    [
        "SRC IP0",
        "SRC IP1",
        "SRC IP2",
        "SRC IP3",
        "DST IP0",
        "DST IP1",
        "DST IP2",
        "DST IP3",
        "TOS",
        "IHL",
        "IP ID",
        "IP LEN",
        "IP FLAGS",
        "FRAG OFF",
        "TTL",
        "PROTO",
        "IP CKSUM",
        "SRC PORT",
        "DST PORT",
        "SEQ HI",
        "SEQ LO",
        "ACK HI",
        "ACK LO",
        "TCP OFF",
        "TCP FLAGS",
        "WINDOW",
        "TCP CKSUM",
        "URGENT",
        "TSVAL HI",
        "TSVAL LO",
        "TSECR HI",
        "TSECR LO",
        "MSS",
        "WSCALE",
        "UDP LEN",
        "UDP CKSUM",
        "PAYLOAD LEN",
        "PKT LEN",
        "DIRECTION",
    ]
}

/// Extract the Table-12 feature vector for one packet.
pub fn extract_features(rec: &PacketRecord, cfg: FeatureConfig) -> [f32; N_FEATURES] {
    let mut f = [0.0f32; N_FEATURES];
    match rec.parsed.ip {
        IpInfo::V4 {
            src,
            dst,
            tos,
            header_len,
            identification,
            total_length,
            flags,
            fragment_offset,
            ttl,
            protocol,
            checksum,
            ..
        } => {
            if cfg.with_ip {
                for i in 0..4 {
                    f[i] = f32::from(src.0[i]);
                    f[4 + i] = f32::from(dst.0[i]);
                }
            }
            f[8] = f32::from(tos);
            f[9] = f32::from(header_len);
            f[10] = f32::from(identification);
            f[11] = f32::from(total_length);
            f[12] = f32::from(flags);
            f[13] = f32::from(fragment_offset);
            f[14] = f32::from(ttl);
            f[15] = f32::from(protocol);
            f[16] = f32::from(checksum);
        }
        IpInfo::V6 {
            src,
            dst,
            traffic_class,
            flow_label,
            payload_length,
            next_header,
            hop_limit,
            ..
        } => {
            if cfg.with_ip {
                for i in 0..4 {
                    f[i] = f32::from(src.0[i]);
                    f[4 + i] = f32::from(dst.0[i]);
                }
            }
            f[8] = f32::from(traffic_class);
            f[10] = (flow_label & 0xffff) as f32;
            f[11] = f32::from(payload_length);
            f[14] = f32::from(hop_limit);
            f[15] = f32::from(next_header);
        }
    }
    match rec.parsed.transport {
        TransportInfo::Tcp {
            src_port,
            dst_port,
            seq,
            ack,
            header_len,
            flags,
            window,
            checksum,
            urgent,
            timestamps,
            mss,
            window_scale,
        } => {
            f[17] = f32::from(src_port);
            f[18] = f32::from(dst_port);
            f[19] = (seq >> 16) as f32;
            f[20] = (seq & 0xffff) as f32;
            f[21] = (ack >> 16) as f32;
            f[22] = (ack & 0xffff) as f32;
            f[23] = f32::from(header_len);
            f[24] = f32::from(flags);
            f[25] = f32::from(window);
            f[26] = f32::from(checksum);
            f[27] = f32::from(urgent);
            if let Some((v, e)) = timestamps {
                f[28] = (v >> 16) as f32;
                f[29] = (v & 0xffff) as f32;
                f[30] = (e >> 16) as f32;
                f[31] = (e & 0xffff) as f32;
            }
            f[32] = f32::from(mss.unwrap_or(0));
            f[33] = f32::from(window_scale.unwrap_or(0));
        }
        TransportInfo::Udp { src_port, dst_port, length, checksum } => {
            f[17] = f32::from(src_port);
            f[18] = f32::from(dst_port);
            f[34] = f32::from(length);
            f[35] = f32::from(checksum);
        }
        TransportInfo::Icmp { msg_type, code } => {
            f[24] = f32::from(msg_type);
            f[27] = f32::from(code);
        }
        TransportInfo::Other => {}
    }
    f[36] = rec.payload().len() as f32;
    f[37] = rec.frame.len() as f32;
    f[38] = f32::from(u8::from(rec.from_client));
    f
}

/// Extract a feature matrix for many records.
pub fn extract_matrix(records: &[&PacketRecord], cfg: FeatureConfig) -> Vec<[f32; N_FEATURES]> {
    records.iter().map(|r| extract_features(r, cfg)).collect()
}

/// Serialise a feature matrix for the artifact cache: a row count, then
/// each row's `N_FEATURES` `f32` bit patterns.
pub fn features_to_bytes(rows: &[[f32; N_FEATURES]]) -> Vec<u8> {
    let mut w = dataset::codec::ByteWriter::new();
    w.u64(rows.len() as u64);
    for row in rows {
        for &v in row {
            w.f32(v);
        }
    }
    w.into_bytes()
}

/// Decode a [`features_to_bytes`] buffer.
pub fn features_from_bytes(bytes: &[u8]) -> Result<Vec<[f32; N_FEATURES]>, String> {
    let mut r = dataset::codec::ByteReader::new(bytes);
    let n = r.count(4 * N_FEATURES)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = [0.0f32; N_FEATURES];
        for v in &mut row {
            *v = r.f32()?;
        }
        rows.push(row);
    }
    r.finish()?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::record::Prepared;
    use traffic_synth::{DatasetKind, DatasetSpec};

    fn prepared() -> Prepared {
        let t = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 3, flows_per_class: 2 }.generate();
        Prepared::from_trace(&t)
    }

    #[test]
    fn feature_codec_round_trips() {
        let p = prepared();
        let recs: Vec<&PacketRecord> = p.records.iter().take(10).collect();
        let rows = extract_matrix(&recs, FeatureConfig::default());
        let bytes = features_to_bytes(&rows);
        let back = features_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        assert!(features_from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn names_cover_vector() {
        assert_eq!(feature_names().len(), N_FEATURES);
    }

    #[test]
    fn tcp_features_populated() {
        let d = prepared();
        let rec = d.records.iter().find(|r| r.parsed.transport.is_tcp()).unwrap();
        let f = extract_features(rec, FeatureConfig::default());
        assert!(f[17] > 0.0, "src port");
        assert!(f[14] > 0.0, "ttl");
        assert!(f[37] > 0.0, "pkt len");
        // UDP-only slots stay zero for TCP
        assert_eq!(f[34], 0.0);
    }

    #[test]
    fn without_ip_zeroes_octets() {
        let d = prepared();
        let rec = &d.records[0];
        let f = extract_features(rec, FeatureConfig { with_ip: false });
        assert!(f[..8].iter().all(|&v| v == 0.0));
        let g = extract_features(rec, FeatureConfig { with_ip: true });
        assert!(g[..8].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn udp_features_populated() {
        let d = prepared();
        let rec = d
            .records
            .iter()
            .find(|r| matches!(r.parsed.transport, TransportInfo::Udp { .. }))
            .expect("some UDP traffic");
        let f = extract_features(rec, FeatureConfig::default());
        assert!(f[34] > 0.0, "udp length");
        assert_eq!(f[19], 0.0, "no seq for UDP");
    }

    #[test]
    fn seq_split_preserves_precision() {
        let d = prepared();
        let rec = d.records.iter().find(|r| r.parsed.transport.is_tcp()).unwrap();
        if let TransportInfo::Tcp { seq, .. } = rec.parsed.transport {
            let f = extract_features(rec, FeatureConfig::default());
            let rebuilt = (f[19] as u32) << 16 | f[20] as u32;
            assert_eq!(rebuilt, seq);
        }
    }
}
