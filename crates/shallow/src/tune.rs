//! Automatic hyper-parameter selection for the shallow baselines —
//! the analogue of the paper's use of AutoGluon (App. A.2): a small
//! grid search scored on an internal holdout split.

use crate::forest::{ForestParams, RandomForest};
use crate::gbdt::{GbdtParams, GradientBoosting, GrowthPolicy};
use crate::tree::TreeParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport<P> {
    /// The winning configuration.
    pub best: P,
    /// Holdout accuracy of the winning configuration.
    pub best_accuracy: f64,
    /// (description, holdout accuracy) for every candidate tried.
    pub trials: Vec<(String, f64)>,
}

fn holdout_split(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x707e);
    idx.shuffle(&mut rng);
    let cut = (n * 4 / 5).max(1).min(n.saturating_sub(1)).max(1);
    (idx[..cut].to_vec(), idx[cut..].to_vec())
}

fn accuracy(pred: &[u16], truth: &[u16]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / pred.len() as f64
}

/// Grid-search random-forest hyper-parameters on a holdout split.
pub fn tune_forest(
    x: &[&[f32]],
    y: &[u16],
    n_classes: usize,
    seed: u64,
) -> TuneReport<ForestParams> {
    let (tr, va) = holdout_split(x.len(), seed);
    let xtr: Vec<&[f32]> = tr.iter().map(|&i| x[i]).collect();
    let ytr: Vec<u16> = tr.iter().map(|&i| y[i]).collect();
    let xva: Vec<&[f32]> = va.iter().map(|&i| x[i]).collect();
    let yva: Vec<u16> = va.iter().map(|&i| y[i]).collect();

    let mut trials = Vec::new();
    let mut best: Option<(ForestParams, f64)> = None;
    for n_trees in [10usize, 30] {
        for max_depth in [12usize, 24] {
            let params = ForestParams {
                n_trees,
                tree: TreeParams { max_depth, ..Default::default() },
                sample_size: Some(xtr.len().min(3000)),
            };
            let rf = RandomForest::fit(&xtr, &ytr, n_classes, params, seed);
            let acc = accuracy(&rf.predict(&xva), &yva);
            trials.push((format!("rf trees={n_trees} depth={max_depth}"), acc));
            if best.as_ref().is_none_or(|(_, b)| acc > *b) {
                best = Some((params, acc));
            }
        }
    }
    let (best, best_accuracy) = best.expect("at least one candidate");
    TuneReport { best, best_accuracy, trials }
}

/// Grid-search GBDT hyper-parameters on a holdout split.
pub fn tune_gbdt(x: &[&[f32]], y: &[u16], n_classes: usize, seed: u64) -> TuneReport<GbdtParams> {
    let (tr, va) = holdout_split(x.len(), seed);
    let xtr: Vec<&[f32]> = tr.iter().map(|&i| x[i]).collect();
    let ytr: Vec<u16> = tr.iter().map(|&i| y[i]).collect();
    let xva: Vec<&[f32]> = va.iter().map(|&i| x[i]).collect();
    let yva: Vec<u16> = va.iter().map(|&i| y[i]).collect();

    let mut trials = Vec::new();
    let mut best: Option<(GbdtParams, f64)> = None;
    for policy in [GrowthPolicy::DepthWise, GrowthPolicy::LeafWise] {
        for (rounds, eta) in [(4usize, 0.5f32), (8, 0.3)] {
            let params = GbdtParams { policy, rounds, eta, ..Default::default() };
            let gb = GradientBoosting::fit(&xtr, &ytr, n_classes, params);
            let acc = accuracy(&gb.predict(&xva), &yva);
            trials.push((format!("gbdt {policy:?} rounds={rounds} eta={eta}"), acc));
            if best.as_ref().is_none_or(|(_, b)| acc > *b) {
                best = Some((params, acc));
            }
        }
    }
    let (best, best_accuracy) = best.expect("at least one candidate");
    TuneReport { best, best_accuracy, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn dataset(n: usize) -> (Vec<[f32; 3]>, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c: u16 = rng.gen_range(0..3);
            x.push([
                f32::from(c) + rng.gen_range(-0.4..0.4),
                rng.gen_range(0.0..1.0),
                f32::from(c) * 0.7 + rng.gen_range(-0.3..0.3),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn forest_tuning_picks_a_good_config() {
        let (xv, y) = dataset(300);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let report = tune_forest(&x, &y, 3, 1);
        assert_eq!(report.trials.len(), 4);
        assert!(report.best_accuracy > 0.8, "{}", report.best_accuracy);
        // best accuracy equals the max of all trials
        let max = report.trials.iter().map(|(_, a)| *a).fold(0.0, f64::max);
        assert!((report.best_accuracy - max).abs() < 1e-12);
    }

    #[test]
    fn gbdt_tuning_runs_both_policies() {
        let (xv, y) = dataset(250);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let report = tune_gbdt(&x, &y, 3, 2);
        assert_eq!(report.trials.len(), 4);
        assert!(report.trials.iter().any(|(d, _)| d.contains("DepthWise")));
        assert!(report.trials.iter().any(|(d, _)| d.contains("LeafWise")));
        assert!(report.best_accuracy > 0.7);
    }

    #[test]
    fn tuning_is_deterministic() {
        let (xv, y) = dataset(150);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let a = tune_forest(&x, &y, 3, 5);
        let b = tune_forest(&x, &y, 3, 5);
        assert_eq!(a.best_accuracy, b.best_accuracy);
        assert_eq!(a.trials, b.trials);
    }
}
