//! CART decision tree with Gini impurity.
//!
//! Supports feature subsampling per node (for random forests), bounded
//! depth, and quantile-limited threshold search so training stays fast
//! at benchmark scale.
//!
//! Feature columns are presorted once per fit ([`crate::presort`]);
//! every node then finds its split with a monotone sweep over its
//! sorted segment instead of re-sorting and re-scanning per candidate.
//! The produced tree is exactly the one the per-node search yields:
//! same candidate thresholds, same tie-breaking, same RNG consumption.

use crate::presort::Presorted;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per node (`None` = all).
    pub max_features: Option<usize>,
    /// Candidate thresholds per feature per node.
    pub max_thresholds: usize,
    /// Extremely-randomised mode (ExtraTrees): draw one random
    /// threshold per candidate feature instead of searching quantiles.
    pub extra_random: bool,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 24,
            min_samples_split: 4,
            max_features: None,
            max_thresholds: 24,
            extra_random: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { label: u16 },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Total Gini-impurity decrease credited to each feature.
    pub importance: Vec<f64>,
}

fn rng_float(rng: &mut StdRng) -> f32 {
    use rand::Rng;
    rng.gen_range(0.0..1.0)
}

fn gini(counts: &[u32], total: u32) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = f64::from(total);
    1.0 - counts.iter().map(|&c| (f64::from(c) / t).powi(2)).sum::<f64>()
}

/// Reusable per-fit search buffers shared by every node of a tree.
struct Scratch {
    pre: Presorted,
    feats: Vec<usize>,
    vals: Vec<f32>,
    cands: Vec<f32>,
    counts: Vec<u32>,
    lc: Vec<u32>,
    rc: Vec<u32>,
}

impl Scratch {
    fn new(x: &[&[f32]], n_classes: usize) -> Scratch {
        Scratch {
            pre: Presorted::new(x),
            feats: Vec::new(),
            vals: Vec::with_capacity(x.len()),
            cands: Vec::new(),
            counts: vec![0u32; n_classes],
            lc: vec![0u32; n_classes],
            rc: vec![0u32; n_classes],
        }
    }
}

fn majority_label(counts: &[u32]) -> u16 {
    counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(l, _)| l as u16).unwrap_or(0)
}

impl DecisionTree {
    /// Fit a tree on feature rows `x` (all the same length) and labels.
    pub fn fit(
        x: &[&[f32]],
        y: &[u16],
        n_classes: usize,
        params: TreeParams,
        seed: u64,
    ) -> DecisionTree {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "empty training set");
        let n_features = x[0].len();
        let mut tree = DecisionTree { nodes: Vec::new(), importance: vec![0.0; n_features] };
        let mut rng = StdRng::seed_from_u64(seed);
        if n_features == 0 {
            // No columns to split on: a single majority leaf.
            let mut counts = vec![0u32; n_classes];
            for &l in y {
                counts[usize::from(l)] += 1;
            }
            tree.nodes.push(Node::Leaf { label: majority_label(&counts) });
            return tree;
        }
        let mut s = Scratch::new(x, n_classes);
        tree.build(x, y, 0, x.len(), 0, params, &mut s, &mut rng);
        tree
    }

    /// Grow the node owning segment `[lo, hi)` of the presorted columns.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &[&[f32]],
        y: &[u16],
        lo: usize,
        hi: usize,
        depth: usize,
        params: TreeParams,
        s: &mut Scratch,
        rng: &mut StdRng,
    ) -> usize {
        let node_id = self.nodes.len();
        s.counts.fill(0);
        for &i in s.pre.seg(0, lo, hi) {
            s.counts[usize::from(y[i as usize])] += 1;
        }
        let total = (hi - lo) as u32;
        let node_gini = gini(&s.counts, total);
        let pure = s.counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= params.max_depth || hi - lo < params.min_samples_split {
            self.nodes.push(Node::Leaf { label: majority_label(&s.counts) });
            return node_id;
        }
        // choose candidate features
        let n_features = x[0].len();
        s.feats.clear();
        s.feats.extend(0..n_features);
        if let Some(k) = params.max_features {
            s.feats.shuffle(rng);
            s.feats.truncate(k.max(1));
        }
        // best split search
        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, weighted gini)
        for fi in 0..s.feats.len() {
            let f = s.feats[fi];
            // unique segment values in ascending order (the segment is
            // already sorted; NaNs sort last and each compares unequal,
            // so every NaN survives — matching sort + dedup semantics)
            s.vals.clear();
            for &i in s.pre.seg(f, lo, hi) {
                let v = x[i as usize][f];
                if s.vals.last().is_none_or(|&l| v != l) {
                    s.vals.push(v);
                }
            }
            if s.vals.len() < 2 {
                continue;
            }
            s.cands.clear();
            if params.extra_random {
                // ExtraTrees: a single uniform threshold in the range
                let lo_v = s.vals[0];
                let hi_v = *s.vals.last().expect("non-empty");
                s.cands.push(lo_v + (hi_v - lo_v) * rng_float(rng));
            } else {
                let step = (s.vals.len() / params.max_thresholds).max(1);
                let mut t = step;
                while t < s.vals.len() {
                    s.cands.push((s.vals[t - 1] + s.vals[t]) / 2.0);
                    t += step;
                }
            }
            // Candidates ascend, so one monotone pass over the sorted
            // segment counts the left side of every candidate in turn.
            s.lc.fill(0);
            let mut lt = 0u32;
            let mut pos = 0usize;
            let seg = s.pre.seg(f, lo, hi);
            for ci in 0..s.cands.len() {
                let threshold = s.cands[ci];
                if threshold.is_nan() {
                    // nothing satisfies `v <= NaN`: an empty left side
                    // was always rejected by the lt > 0 guard
                    continue;
                }
                while pos < seg.len() {
                    let i = seg[pos] as usize;
                    if x[i][f] <= threshold {
                        s.lc[usize::from(y[i])] += 1;
                        lt += 1;
                        pos += 1;
                    } else {
                        break;
                    }
                }
                let rt = total - lt;
                if lt > 0 && rt > 0 {
                    for (r, (&c, &l)) in s.rc.iter_mut().zip(s.counts.iter().zip(&s.lc)) {
                        *r = c - l;
                    }
                    let w = (f64::from(lt) * gini(&s.lc, lt) + f64::from(rt) * gini(&s.rc, rt))
                        / f64::from(total);
                    if best.is_none_or(|(_, _, bw)| w < bw) {
                        best = Some((f, threshold, w));
                    }
                }
            }
        }
        let Some((feature, threshold, w)) = best else {
            self.nodes.push(Node::Leaf { label: majority_label(&s.counts) });
            return node_id;
        };
        let decrease = (node_gini - w) * f64::from(total);
        if decrease <= 1e-12 {
            self.nodes.push(Node::Leaf { label: majority_label(&s.counts) });
            return node_id;
        }
        self.importance[feature] += decrease;
        let mid = s.pre.split(x, feature, threshold, lo, hi);
        self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
        let left = self.build(x, y, lo, mid, depth + 1, params, s, rng);
        let right = self.build(x, y, mid, hi, depth + 1, params, s, rng);
        if let Node::Split { left: l, right: r, .. } = &mut self.nodes[node_id] {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Predict the label of one feature row.
    pub fn predict_one(&self, x: &[f32]) -> u16 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { label } => return *label,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predict labels for many rows.
    pub fn predict(&self, x: &[&[f32]]) -> Vec<u16> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Largest leaf label in the tree (for cross-checking against a
    /// class count stored alongside the tree in an ensemble export).
    pub(crate) fn max_leaf_label(&self) -> u16 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { label } => Some(*label),
                Node::Split { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }
}

impl nn::frozen::FrozenArtifact for DecisionTree {
    const KIND: &'static str = "tree";

    fn write_payload(&self, w: &mut nn::frozen::PayloadWriter) {
        w.u64(self.nodes.len() as u64);
        for node in &self.nodes {
            match node {
                Node::Leaf { label } => {
                    w.u8(0);
                    w.u16(*label);
                }
                Node::Split { feature, threshold, left, right } => {
                    w.u8(1);
                    w.u32(*feature as u32);
                    w.f32(*threshold);
                    w.u32(*left as u32);
                    w.u32(*right as u32);
                }
            }
        }
        w.f64s(&self.importance);
    }

    fn read_payload(r: &mut nn::frozen::PayloadReader) -> Result<DecisionTree, String> {
        let n = r.u64()? as usize;
        if n == 0 || n > 1 << 24 {
            return Err(format!("implausible tree size {n}"));
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            match r.u8()? {
                0 => nodes.push(Node::Leaf { label: r.u16()? }),
                1 => {
                    let feature = r.u32()? as usize;
                    let threshold = r.f32()?;
                    let left = r.u32()? as usize;
                    let right = r.u32()? as usize;
                    // Children are always created after their parent, so
                    // strictly-descending-only links guarantee the tree
                    // is acyclic and prediction terminates.
                    if left <= i || right <= i || left >= n || right >= n {
                        return Err(format!("node {i}: bad child links {left}/{right} of {n}"));
                    }
                    nodes.push(Node::Split { feature, threshold, left, right });
                }
                t => return Err(format!("node {i}: unknown tag {t}")),
            }
        }
        let importance = r.f64s()?;
        for node in &nodes {
            if let Node::Split { feature, .. } = node {
                if *feature >= importance.len() {
                    return Err(format!(
                        "split feature {feature} out of range (n_features {})",
                        importance.len()
                    ));
                }
            }
        }
        Ok(DecisionTree { nodes, importance })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[[f32; 2]]) -> Vec<&[f32]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn separable_data_perfect() {
        let data = [[0.0, 0.0], [0.1, 0.2], [1.0, 1.0], [0.9, 1.1]];
        let x = rows(&data);
        let y = [0u16, 0, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 1);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn nested_structure_needs_depth_two() {
        // Label 1 only in the corner x0>0.5 AND x1>0.5 — needs 2 levels,
        // and the first split has positive Gini gain (unlike XOR, which
        // greedy CART legitimately cannot start on).
        let data = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.9, 0.9], [0.1, 0.9]];
        let x = rows(&data);
        let y = [0u16, 0, 0, 1, 1, 0];
        let params = TreeParams { min_samples_split: 2, ..Default::default() };
        let t = DecisionTree::fit(&x, &y, 2, params, 1);
        assert_eq!(t.predict(&x), y);
        let shallow =
            DecisionTree::fit(&x, &y, 2, TreeParams { max_depth: 0, ..Default::default() }, 1);
        assert_eq!(shallow.n_nodes(), 1, "depth-0 tree is a single leaf");
    }

    #[test]
    fn xor_defeats_greedy_cart() {
        // Both XOR features have zero first-split Gini gain, so greedy
        // CART yields a single majority leaf — documented behaviour.
        let data = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
        let x = rows(&data);
        let y = [0u16, 1, 1, 0];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 1);
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn importance_credits_informative_feature() {
        // Feature 0 decides the label; feature 1 is noise.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let c = u16::from(i % 2 == 0);
            data.push([f32::from(c) * 10.0, (i % 7) as f32]);
            labels.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let t = DecisionTree::fit(&x, &labels, 2, TreeParams::default(), 2);
        assert!(t.importance[0] > t.importance[1] * 10.0);
    }

    #[test]
    fn constant_features_give_leaf() {
        let data = [[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]];
        let x = rows(&data);
        let y = [0u16, 1, 0];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 3);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_one(&[1.0, 1.0]), 0, "majority label");
    }

    #[test]
    fn extra_random_mode_learns_separable_data() {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = u16::from(i % 2 == 0);
            data.push([f32::from(c) * 5.0 + (i % 5) as f32 * 0.1, (i % 7) as f32]);
            labels.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let params = TreeParams { extra_random: true, ..Default::default() };
        let t = DecisionTree::fit(&x, &labels, 2, params, 3);
        let preds = t.predict(&x);
        let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(acc >= 55, "extra-random tree accuracy {acc}/60");
    }

    #[test]
    fn extra_random_differs_from_exact_search() {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let c = (i % 3) as u16;
            data.push([f32::from(c) + (i % 4) as f32 * 0.2, (i % 9) as f32]);
            labels.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let exact = DecisionTree::fit(&x, &labels, 3, TreeParams::default(), 7);
        let random = DecisionTree::fit(
            &x,
            &labels,
            3,
            TreeParams { extra_random: true, ..Default::default() },
            7,
        );
        // they may agree on predictions but generally differ in shape
        assert!(exact.n_nodes() > 0 && random.n_nodes() > 0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_input_panics() {
        let x: Vec<&[f32]> = Vec::new();
        let y: Vec<u16> = Vec::new();
        let _ = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 1);
    }

    #[test]
    fn frozen_round_trip_is_bitwise_exact() {
        use nn::frozen::FrozenArtifact;
        let data = [[0.0, 0.0], [0.1, 0.2], [1.0, 1.0], [0.9, 1.1], [0.5, 0.4], [0.6, 0.7]];
        let x = rows(&data);
        let y = [0u16, 0, 1, 1, 0, 1];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 5);
        let bytes = t.to_frozen_bytes();
        assert_eq!(bytes, t.to_frozen_bytes(), "byte-stable encode");
        let back = DecisionTree::from_frozen_bytes(&bytes).expect("round-trip");
        assert_eq!(back.predict(&x), t.predict(&x));
        assert_eq!(back.n_nodes(), t.n_nodes());
        assert_eq!(back.importance, t.importance);
    }

    #[test]
    fn corrupt_frozen_tree_is_refused() {
        use nn::frozen::FrozenArtifact;
        let data = [[0.0, 0.0], [0.1, 0.2], [1.0, 1.0], [0.9, 1.1]];
        let x = rows(&data);
        let t = DecisionTree::fit(&x, &[0, 0, 1, 1], 2, TreeParams::default(), 1);
        let good = t.to_frozen_bytes();
        for offset in 0..good.len() {
            let mut bad = good.clone();
            bad[offset] ^= 0x20;
            assert!(
                DecisionTree::from_frozen_bytes(&bad).is_err(),
                "flip at {offset} must be refused"
            );
        }
    }
}
