//! CART decision tree with Gini impurity.
//!
//! Supports feature subsampling per node (for random forests), bounded
//! depth, and quantile-limited threshold search so training stays fast
//! at benchmark scale.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per node (`None` = all).
    pub max_features: Option<usize>,
    /// Candidate thresholds per feature per node.
    pub max_thresholds: usize,
    /// Extremely-randomised mode (ExtraTrees): draw one random
    /// threshold per candidate feature instead of searching quantiles.
    pub extra_random: bool,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 24,
            min_samples_split: 4,
            max_features: None,
            max_thresholds: 24,
            extra_random: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { label: u16 },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Total Gini-impurity decrease credited to each feature.
    pub importance: Vec<f64>,
    n_classes: usize,
}

fn rng_float(rng: &mut StdRng) -> f32 {
    use rand::Rng;
    rng.gen_range(0.0..1.0)
}

fn gini(counts: &[u32], total: u32) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = f64::from(total);
    1.0 - counts.iter().map(|&c| (f64::from(c) / t).powi(2)).sum::<f64>()
}

impl DecisionTree {
    /// Fit a tree on feature rows `x` (all the same length) and labels.
    pub fn fit(
        x: &[&[f32]],
        y: &[u16],
        n_classes: usize,
        params: TreeParams,
        seed: u64,
    ) -> DecisionTree {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "empty training set");
        let n_features = x[0].len();
        let mut tree =
            DecisionTree { nodes: Vec::new(), importance: vec![0.0; n_features], n_classes };
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        tree.build(x, y, idx, 0, params, &mut rng);
        tree
    }

    fn majority(&self, y: &[u16], idx: &[usize]) -> u16 {
        let mut counts = vec![0u32; self.n_classes];
        for &i in idx {
            counts[usize::from(y[i])] += 1;
        }
        counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(l, _)| l as u16).unwrap_or(0)
    }

    fn build(
        &mut self,
        x: &[&[f32]],
        y: &[u16],
        idx: Vec<usize>,
        depth: usize,
        params: TreeParams,
        rng: &mut StdRng,
    ) -> usize {
        let node_id = self.nodes.len();
        let mut counts = vec![0u32; self.n_classes];
        for &i in &idx {
            counts[usize::from(y[i])] += 1;
        }
        let total = idx.len() as u32;
        let node_gini = gini(&counts, total);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= params.max_depth || idx.len() < params.min_samples_split {
            let label = self.majority(y, &idx);
            self.nodes.push(Node::Leaf { label });
            return node_id;
        }
        // choose candidate features
        let n_features = x[0].len();
        let mut feats: Vec<usize> = (0..n_features).collect();
        if let Some(k) = params.max_features {
            feats.shuffle(rng);
            feats.truncate(k.max(1));
        }
        // best split search
        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, weighted gini)
        let mut vals: Vec<f32> = Vec::with_capacity(idx.len());
        for &f in &feats {
            vals.clear();
            vals.extend(idx.iter().map(|&i| x[i][f]));
            vals.sort_by(f32::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let candidates: Vec<f32> = if params.extra_random {
                // ExtraTrees: a single uniform threshold in the range
                let lo = vals[0];
                let hi = *vals.last().expect("non-empty");
                vec![lo + (hi - lo) * rng_float(rng)]
            } else {
                let step = (vals.len() / params.max_thresholds).max(1);
                (step..vals.len()).step_by(step).map(|t| (vals[t - 1] + vals[t]) / 2.0).collect()
            };
            for threshold in candidates {
                let mut lc = vec![0u32; self.n_classes];
                let mut rc = vec![0u32; self.n_classes];
                for &i in &idx {
                    if x[i][f] <= threshold {
                        lc[usize::from(y[i])] += 1;
                    } else {
                        rc[usize::from(y[i])] += 1;
                    }
                }
                let lt: u32 = lc.iter().sum();
                let rt: u32 = rc.iter().sum();
                if lt > 0 && rt > 0 {
                    let w = (f64::from(lt) * gini(&lc, lt) + f64::from(rt) * gini(&rc, rt))
                        / f64::from(total);
                    if best.is_none_or(|(_, _, bw)| w < bw) {
                        best = Some((f, threshold, w));
                    }
                }
            }
        }
        let Some((feature, threshold, w)) = best else {
            let label = self.majority(y, &idx);
            self.nodes.push(Node::Leaf { label });
            return node_id;
        };
        let decrease = (node_gini - w) * f64::from(total);
        if decrease <= 1e-12 {
            let label = self.majority(y, &idx);
            self.nodes.push(Node::Leaf { label });
            return node_id;
        }
        self.importance[feature] += decrease;
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| x[i][feature] <= threshold);
        self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
        let left = self.build(x, y, left_idx, depth + 1, params, rng);
        let right = self.build(x, y, right_idx, depth + 1, params, rng);
        if let Node::Split { left: l, right: r, .. } = &mut self.nodes[node_id] {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Predict the label of one feature row.
    pub fn predict_one(&self, x: &[f32]) -> u16 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { label } => return *label,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predict labels for many rows.
    pub fn predict(&self, x: &[&[f32]]) -> Vec<u16> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[[f32; 2]]) -> Vec<&[f32]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn separable_data_perfect() {
        let data = [[0.0, 0.0], [0.1, 0.2], [1.0, 1.0], [0.9, 1.1]];
        let x = rows(&data);
        let y = [0u16, 0, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 1);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn nested_structure_needs_depth_two() {
        // Label 1 only in the corner x0>0.5 AND x1>0.5 — needs 2 levels,
        // and the first split has positive Gini gain (unlike XOR, which
        // greedy CART legitimately cannot start on).
        let data = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.9, 0.9], [0.1, 0.9]];
        let x = rows(&data);
        let y = [0u16, 0, 0, 1, 1, 0];
        let params = TreeParams { min_samples_split: 2, ..Default::default() };
        let t = DecisionTree::fit(&x, &y, 2, params, 1);
        assert_eq!(t.predict(&x), y);
        let shallow =
            DecisionTree::fit(&x, &y, 2, TreeParams { max_depth: 0, ..Default::default() }, 1);
        assert_eq!(shallow.n_nodes(), 1, "depth-0 tree is a single leaf");
    }

    #[test]
    fn xor_defeats_greedy_cart() {
        // Both XOR features have zero first-split Gini gain, so greedy
        // CART yields a single majority leaf — documented behaviour.
        let data = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
        let x = rows(&data);
        let y = [0u16, 1, 1, 0];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 1);
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn importance_credits_informative_feature() {
        // Feature 0 decides the label; feature 1 is noise.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let c = u16::from(i % 2 == 0);
            data.push([f32::from(c) * 10.0, (i % 7) as f32]);
            labels.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let t = DecisionTree::fit(&x, &labels, 2, TreeParams::default(), 2);
        assert!(t.importance[0] > t.importance[1] * 10.0);
    }

    #[test]
    fn constant_features_give_leaf() {
        let data = [[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]];
        let x = rows(&data);
        let y = [0u16, 1, 0];
        let t = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 3);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_one(&[1.0, 1.0]), 0, "majority label");
    }

    #[test]
    fn extra_random_mode_learns_separable_data() {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = u16::from(i % 2 == 0);
            data.push([f32::from(c) * 5.0 + (i % 5) as f32 * 0.1, (i % 7) as f32]);
            labels.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let params = TreeParams { extra_random: true, ..Default::default() };
        let t = DecisionTree::fit(&x, &labels, 2, params, 3);
        let preds = t.predict(&x);
        let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(acc >= 55, "extra-random tree accuracy {acc}/60");
    }

    #[test]
    fn extra_random_differs_from_exact_search() {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let c = (i % 3) as u16;
            data.push([f32::from(c) + (i % 4) as f32 * 0.2, (i % 9) as f32]);
            labels.push(c);
        }
        let x: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let exact = DecisionTree::fit(&x, &labels, 3, TreeParams::default(), 7);
        let random = DecisionTree::fit(
            &x,
            &labels,
            3,
            TreeParams { extra_random: true, ..Default::default() },
            7,
        );
        // they may agree on predictions but generally differ in shape
        assert!(exact.n_nodes() > 0 && random.n_nodes() > 0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_input_panics() {
        let x: Vec<&[f32]> = Vec::new();
        let y: Vec<u16> = Vec::new();
        let _ = DecisionTree::fit(&x, &y, 2, TreeParams::default(), 1);
    }
}
