//! # shallow
//!
//! The shallow ML baselines the paper pits against representation
//! learning (§6.1, Table 8, Fig. 5): hand-crafted header features
//! (Table 12), CART decision trees, a bagged Random Forest with Gini
//! feature importance, gradient-boosted trees (depth-wise "XGBoost-like"
//! and leaf-wise "LightGBM-like" growth), a k-NN classifier, and the
//! 5-NN embedding-purity analysis of Fig. 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod flow_features;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod presort;
pub mod purity;
pub mod tree;
pub mod tune;

pub use features::{extract_features, feature_names, FeatureConfig, N_FEATURES};
pub use forest::RandomForest;
pub use gbdt::{GradientBoosting, GrowthPolicy};
pub use knn::KnnClassifier;
pub use tree::DecisionTree;
