//! Gradient-boosted decision trees for multiclass classification.
//!
//! One regression tree per class per round, fit to the softmax
//! gradient. Two growth policies mirror the Table-8 baselines:
//! depth-wise ("XGBoost-like") and leaf-wise with a leaf budget
//! ("LightGBM-like").
//!
//! Feature columns are presorted once per `fit` ([`crate::presort`])
//! and shared by every tree of every round; each node's split search
//! is a monotone sweep over its sorted `[lo, hi)` segment, and the
//! per-node index/threshold buffers are reused across nodes.

use crate::presort::Presorted;

/// Leaf-growth policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthPolicy {
    /// Grow level-by-level to `max_depth` (XGBoost default).
    DepthWise,
    /// Repeatedly split the highest-gain leaf up to `max_leaves`
    /// (LightGBM default).
    LeafWise,
}

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Boosting rounds.
    pub rounds: usize,
    /// Learning rate (shrinkage).
    pub eta: f32,
    /// Depth bound (depth-wise) .
    pub max_depth: usize,
    /// Leaf bound (leaf-wise).
    pub max_leaves: usize,
    /// Growth policy.
    pub policy: GrowthPolicy,
    /// Candidate thresholds per feature per node.
    pub max_thresholds: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            rounds: 8,
            eta: 0.4,
            max_depth: 4,
            max_leaves: 15,
            policy: GrowthPolicy::DepthWise,
            max_thresholds: 12,
        }
    }
}

#[derive(Debug, Clone)]
struct RegNode {
    feature: usize,
    threshold: f32,
    left: i32,  // negative => leaf, value = -(leaf_id+1)
    right: i32, // same encoding
}

#[derive(Debug, Clone)]
struct RegTree {
    nodes: Vec<RegNode>,
    leaf_values: Vec<f32>,
    root_is_leaf: bool,
}

impl RegTree {
    fn predict(&self, x: &[f32]) -> f32 {
        if self.root_is_leaf {
            return self.leaf_values[0];
        }
        let mut n = 0usize;
        loop {
            let node = &self.nodes[n];
            let next = if x[node.feature] <= node.threshold { node.left } else { node.right };
            if next < 0 {
                return self.leaf_values[(-next - 1) as usize];
            }
            n = next as usize;
        }
    }
}

/// A splittable leaf owning segment `[lo, hi)` of the presorted columns.
struct LeafCandidate {
    lo: usize,
    hi: usize,
    depth: usize,
    gain: f64,
    feature: usize,
    threshold: f32,
}

/// Reusable split-search buffers shared by every node of every tree.
struct SplitScratch {
    vals: Vec<f32>,
    cands: Vec<f32>,
}

fn leaf_value(seg: &[u32], grad: &[f32], hess: &[f32]) -> f32 {
    let mut g = 0.0f32;
    let mut h = 0.0f32;
    for &i in seg {
        g += grad[i as usize];
        h += hess[i as usize];
    }
    -g / (h + 1.0) // lambda = 1 regularisation
}

#[allow(clippy::too_many_arguments)]
fn best_split(
    x: &[&[f32]],
    pre: &Presorted,
    lo: usize,
    hi: usize,
    grad: &[f32],
    hess: &[f32],
    max_thresholds: usize,
    s: &mut SplitScratch,
) -> Option<(f64, usize, f32)> {
    let score = |g: f32, h: f32| f64::from(g) * f64::from(g) / (f64::from(h) + 1.0);
    let mut gt = 0.0f32;
    let mut ht = 0.0f32;
    for &i in pre.seg(0, lo, hi) {
        gt += grad[i as usize];
        ht += hess[i as usize];
    }
    let parent = score(gt, ht);
    let mut best: Option<(f64, usize, f32)> = None;
    let n_features = x[0].len();
    #[allow(clippy::needless_range_loop)]
    for f in 0..n_features {
        let seg = pre.seg(f, lo, hi);
        // unique segment values in ascending order (segment is sorted)
        s.vals.clear();
        for &i in seg {
            let v = x[i as usize][f];
            if s.vals.last().is_none_or(|&l| v != l) {
                s.vals.push(v);
            }
        }
        if s.vals.len() < 2 {
            continue;
        }
        s.cands.clear();
        let step = (s.vals.len() / max_thresholds).max(1);
        let mut t = step;
        while t < s.vals.len() {
            s.cands.push((s.vals[t - 1] + s.vals[t]) / 2.0);
            t += step;
        }
        // Candidates ascend, so one monotone pass over the sorted
        // segment accumulates the left-side gradient sums in turn.
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        let mut pos = 0usize;
        for ci in 0..s.cands.len() {
            let threshold = s.cands[ci];
            if threshold.is_nan() {
                // nothing satisfies `v <= NaN`: hl stays 0 and the
                // hl > 1e-6 guard always rejected an empty left side
                continue;
            }
            while pos < seg.len() {
                let i = seg[pos] as usize;
                if x[i][f] <= threshold {
                    gl += grad[i];
                    hl += hess[i];
                    pos += 1;
                } else {
                    break;
                }
            }
            let gr = gt - gl;
            let hr = ht - hl;
            if hl > 1e-6 && hr > 1e-6 {
                let gain = score(gl, hl) + score(gr, hr) - parent;
                if best.is_none_or(|(bg, _, _)| gain > bg) && gain > 1e-9 {
                    best = Some((gain, f, threshold));
                }
            }
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn seed_candidate(
    x: &[&[f32]],
    pre: &Presorted,
    lo: usize,
    hi: usize,
    depth: usize,
    grad: &[f32],
    hess: &[f32],
    params: &GbdtParams,
    s: &mut SplitScratch,
) -> LeafCandidate {
    if depth < params.max_depth {
        if let Some((gain, feature, threshold)) =
            best_split(x, pre, lo, hi, grad, hess, params.max_thresholds, s)
        {
            return LeafCandidate { lo, hi, depth, gain, feature, threshold };
        }
    }
    LeafCandidate { lo, hi, depth, gain: 0.0, feature: 0, threshold: 0.0 }
}

fn fit_reg_tree(
    x: &[&[f32]],
    grad: &[f32],
    hess: &[f32],
    params: &GbdtParams,
    pre: &mut Presorted,
    s: &mut SplitScratch,
) -> RegTree {
    let n = x.len();
    let mut tree = RegTree { nodes: Vec::new(), leaf_values: Vec::new(), root_is_leaf: false };
    if x[0].is_empty() {
        // no feature columns: a single leaf over everything
        tree.root_is_leaf = true;
        let mut g = 0.0f32;
        let mut h = 0.0f32;
        for i in 0..n {
            g += grad[i];
            h += hess[i];
        }
        tree.leaf_values.push(-g / (h + 1.0));
        return tree;
    }
    pre.reset();
    // Frontier of splittable leaves; parent linkage via (node, is_left).
    let mut frontier: Vec<(LeafCandidate, Option<(usize, bool)>)> = Vec::new();
    frontier.push((seed_candidate(x, pre, 0, n, 0, grad, hess, params, s), None));
    let leaf_budget = match params.policy {
        GrowthPolicy::DepthWise => usize::MAX,
        GrowthPolicy::LeafWise => params.max_leaves,
    };
    let mut splits_done = 0usize;
    loop {
        // pick next candidate: leaf-wise takes max gain; depth-wise FIFO.
        let pick = match params.policy {
            GrowthPolicy::DepthWise => frontier.iter().position(|(c, _)| c.gain > 0.0),
            GrowthPolicy::LeafWise => frontier
                .iter()
                .enumerate()
                .filter(|(_, (c, _))| c.gain > 0.0)
                .max_by(|a, b| a.1 .0.gain.total_cmp(&b.1 .0.gain))
                .map(|(i, _)| i),
        };
        let stop = pick.is_none() || splits_done + frontier.len() >= leaf_budget;
        if stop {
            break;
        }
        let (cand, parent) = frontier.swap_remove(pick.expect("checked above"));
        let node_id = tree.nodes.len();
        tree.nodes.push(RegNode {
            feature: cand.feature,
            threshold: cand.threshold,
            left: 0,
            right: 0,
        });
        if let Some((p, is_left)) = parent {
            if is_left {
                tree.nodes[p].left = node_id as i32;
            } else {
                tree.nodes[p].right = node_id as i32;
            }
        }
        // Frontier segments are pairwise disjoint, so splitting this one
        // in place never disturbs another pending candidate.
        let mid = pre.split(x, cand.feature, cand.threshold, cand.lo, cand.hi);
        splits_done += 1;
        let l = seed_candidate(x, pre, cand.lo, mid, cand.depth + 1, grad, hess, params, s);
        let r = seed_candidate(x, pre, mid, cand.hi, cand.depth + 1, grad, hess, params, s);
        frontier.push((l, Some((node_id, true))));
        frontier.push((r, Some((node_id, false))));
    }
    if tree.nodes.is_empty() {
        tree.root_is_leaf = true;
        tree.leaf_values.push(leaf_value(pre.seg(0, 0, n), grad, hess));
        return tree;
    }
    // turn remaining frontier entries into leaves
    for (cand, parent) in frontier {
        let leaf_id = tree.leaf_values.len();
        tree.leaf_values.push(leaf_value(pre.seg(0, cand.lo, cand.hi), grad, hess));
        let (p, is_left) = parent.expect("non-root frontier nodes have parents");
        let enc = -((leaf_id as i32) + 1);
        if is_left {
            tree.nodes[p].left = enc;
        } else {
            tree.nodes[p].right = enc;
        }
    }
    tree
}

/// A trained gradient-boosting classifier.
pub struct GradientBoosting {
    trees: Vec<Vec<RegTree>>, // [round][class]
    n_classes: usize,
    eta: f32,
}

impl GradientBoosting {
    /// Fit on feature rows and labels.
    pub fn fit(x: &[&[f32]], y: &[u16], n_classes: usize, params: GbdtParams) -> GradientBoosting {
        assert!(!x.is_empty(), "empty training set");
        let n = x.len();
        // one presort shared by every tree of every round
        let mut pre = Presorted::new(x);
        let mut scratch = SplitScratch { vals: Vec::with_capacity(n), cands: Vec::new() };
        let mut scores = vec![0.0f32; n * n_classes];
        let mut probs = vec![0.0f32; n * n_classes];
        let mut grad = vec![0.0f32; n];
        let mut hess = vec![0.0f32; n];
        let mut rounds = Vec::with_capacity(params.rounds);
        for _ in 0..params.rounds {
            let mut round_trees = Vec::with_capacity(n_classes);
            // softmax probabilities
            for i in 0..n {
                let s = &scores[i * n_classes..(i + 1) * n_classes];
                let p = &mut probs[i * n_classes..(i + 1) * n_classes];
                let m = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (pv, &sv) in p.iter_mut().zip(s) {
                    *pv = (sv - m).exp();
                    sum += *pv;
                }
                for pv in p.iter_mut() {
                    *pv /= sum;
                }
            }
            for c in 0..n_classes {
                for i in 0..n {
                    let p = probs[i * n_classes + c];
                    grad[i] = p - f32::from(u8::from(usize::from(y[i]) == c));
                    hess[i] = p * (1.0 - p);
                }
                let tree = fit_reg_tree(x, &grad, &hess, &params, &mut pre, &mut scratch);
                for i in 0..n {
                    scores[i * n_classes + c] += params.eta * tree.predict(x[i]);
                }
                round_trees.push(tree);
            }
            rounds.push(round_trees);
        }
        GradientBoosting { trees: rounds, n_classes, eta: params.eta }
    }

    /// Class scores for one row.
    pub fn scores_one(&self, x: &[f32]) -> Vec<f32> {
        let mut s = vec![0.0f32; self.n_classes];
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                s[c] += self.eta * tree.predict(x);
            }
        }
        s
    }

    /// Predicted label for one row.
    pub fn predict_one(&self, x: &[f32]) -> u16 {
        let s = self.scores_one(x);
        s.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c as u16).unwrap_or(0)
    }

    /// Predicted labels for many rows.
    pub fn predict(&self, x: &[&[f32]]) -> Vec<u16> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }
}

fn write_reg_tree(w: &mut nn::frozen::PayloadWriter, tree: &RegTree) {
    w.u8(u8::from(tree.root_is_leaf));
    w.u64(tree.nodes.len() as u64);
    for node in &tree.nodes {
        w.u32(node.feature as u32);
        w.f32(node.threshold);
        // i32 child links stored as their two's-complement bit patterns
        w.u32(node.left as u32);
        w.u32(node.right as u32);
    }
    w.f32s(&tree.leaf_values);
}

fn read_reg_tree(r: &mut nn::frozen::PayloadReader) -> Result<RegTree, String> {
    let root_is_leaf = match r.u8()? {
        0 => false,
        1 => true,
        t => return Err(format!("bad root_is_leaf tag {t}")),
    };
    let n = r.u64()? as usize;
    if n > 1 << 24 {
        return Err(format!("implausible regression tree size {n}"));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let feature = r.u32()? as usize;
        let threshold = r.f32()?;
        let left = r.u32()? as i32;
        let right = r.u32()? as i32;
        nodes.push(RegNode { feature, threshold, left, right });
    }
    let leaf_values = r.f32s()?;
    if root_is_leaf {
        if leaf_values.is_empty() {
            return Err("leaf-only regression tree without a value".into());
        }
    } else if nodes.is_empty() {
        return Err("regression tree with neither nodes nor leaf root".into());
    }
    // Interior children always point forward (they are created after
    // their parent) and leaf links must decode to a stored value, so a
    // validated tree cannot loop or index out of bounds at prediction.
    for (i, node) in nodes.iter().enumerate() {
        for link in [node.left, node.right] {
            if link < 0 {
                let leaf = (-link - 1) as usize;
                if leaf >= leaf_values.len() {
                    return Err(format!(
                        "node {i}: leaf link {leaf} out of range ({} values)",
                        leaf_values.len()
                    ));
                }
            } else if (link as usize) <= i || (link as usize) >= nodes.len() {
                return Err(format!("node {i}: bad child link {link} of {}", nodes.len()));
            }
        }
    }
    Ok(RegTree { nodes, leaf_values, root_is_leaf })
}

impl nn::frozen::FrozenArtifact for GradientBoosting {
    const KIND: &'static str = "gbdt";

    fn write_payload(&self, w: &mut nn::frozen::PayloadWriter) {
        w.u32(self.n_classes as u32);
        w.f32(self.eta);
        w.u64(self.trees.len() as u64);
        for round in &self.trees {
            for tree in round {
                write_reg_tree(w, tree);
            }
        }
    }

    fn read_payload(r: &mut nn::frozen::PayloadReader) -> Result<GradientBoosting, String> {
        let n_classes = r.u32()? as usize;
        if n_classes == 0 || n_classes > 1 << 16 {
            return Err(format!("implausible class count {n_classes}"));
        }
        let eta = r.f32()?;
        let n_rounds = r.u64()? as usize;
        if n_rounds > 1 << 16 {
            return Err(format!("implausible round count {n_rounds}"));
        }
        let mut trees = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let mut round = Vec::with_capacity(n_classes);
            for _ in 0..n_classes {
                round.push(read_reg_tree(r)?);
            }
            trees.push(round);
        }
        Ok(GradientBoosting { trees, n_classes, eta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize) -> (Vec<[f32; 3]>, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c: u16 = rng.gen_range(0..3);
            x.push([
                f32::from(c) + rng.gen_range(-0.4..0.4),
                rng.gen_range(0.0..1.0),
                f32::from(c) * 0.5 + rng.gen_range(-0.3..0.3),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn depthwise_learns() {
        let (xv, y) = dataset(300);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let m = GradientBoosting::fit(&x[..200], &y[..200], 3, GbdtParams::default());
        let preds = m.predict(&x[200..]);
        let acc = preds.iter().zip(&y[200..]).filter(|(p, t)| p == t).count() as f64 / 100.0;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn leafwise_learns() {
        let (xv, y) = dataset(300);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let params = GbdtParams { policy: GrowthPolicy::LeafWise, ..Default::default() };
        let m = GradientBoosting::fit(&x[..200], &y[..200], 3, params);
        let preds = m.predict(&x[200..]);
        let acc = preds.iter().zip(&y[200..]).filter(|(p, t)| p == t).count() as f64 / 100.0;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn constant_features_dont_crash() {
        let xv = [[1.0f32, 1.0, 1.0]; 10];
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let y: Vec<u16> = (0..10).map(|i| u16::from(i % 2 == 0)).collect();
        let m = GradientBoosting::fit(&x, &y, 2, GbdtParams::default());
        let _ = m.predict(&x);
    }

    #[test]
    fn frozen_round_trip_scores_bitwise_identically() {
        use nn::frozen::FrozenArtifact;
        let (xv, y) = dataset(150);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        for policy in [GrowthPolicy::DepthWise, GrowthPolicy::LeafWise] {
            let m = GradientBoosting::fit(&x, &y, 3, GbdtParams { policy, ..Default::default() });
            let bytes = m.to_frozen_bytes();
            assert_eq!(bytes, m.to_frozen_bytes(), "byte-stable encode");
            let back = GradientBoosting::from_frozen_bytes(&bytes).expect("round-trip");
            for row in &x {
                assert_eq!(back.scores_one(row), m.scores_one(row), "{policy:?}");
            }
            assert_eq!(back.predict(&x), m.predict(&x));
        }
    }

    #[test]
    fn corrupt_frozen_gbdt_is_refused() {
        use nn::frozen::FrozenArtifact;
        let (xv, y) = dataset(60);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let m = GradientBoosting::fit(&x, &y, 3, GbdtParams { rounds: 2, ..Default::default() });
        let good = m.to_frozen_bytes();
        for offset in [0usize, 9, good.len() / 3, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[offset] ^= 0x11;
            assert!(
                GradientBoosting::from_frozen_bytes(&bad).is_err(),
                "flip at {offset} must be refused"
            );
        }
    }

    #[test]
    fn binary_task_works() {
        let (xv, y3) = dataset(200);
        let y: Vec<u16> = y3.iter().map(|&c| u16::from(c == 2)).collect();
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let m = GradientBoosting::fit(&x[..150], &y[..150], 2, GbdtParams::default());
        let preds = m.predict(&x[150..]);
        let acc = preds.iter().zip(&y[150..]).filter(|(p, t)| p == t).count() as f64 / 50.0;
        assert!(acc > 0.8, "accuracy {acc}");
    }
}
