//! 5-NN purity of an embedding space (Fig. 4): for each point, how
//! many of its 5 nearest neighbours share its class. A meaningful
//! representation puts same-class packets close together.

/// Histogram over 0..=k of "how many of the k nearest neighbours have
/// the same class", normalised to fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct PurityHistogram {
    /// `fraction[m]` = share of points with exactly `m` same-class
    /// neighbours among their k nearest.
    pub fraction: Vec<f64>,
    /// k used.
    pub k: usize,
}

impl PurityHistogram {
    /// Mean purity in [0, 1].
    pub fn mean_purity(&self) -> f64 {
        self.fraction.iter().enumerate().map(|(m, f)| f * m as f64).sum::<f64>() / self.k as f64
    }
}

/// Compute the k-NN purity histogram of `embeddings` (row per point)
/// under `labels`. O(n²) brute force — fine at benchmark scale.
pub fn knn_purity(embeddings: &[Vec<f32>], labels: &[u16], k: usize) -> PurityHistogram {
    assert_eq!(embeddings.len(), labels.len());
    let n = embeddings.len();
    let mut hist = vec![0usize; k + 1];
    for i in 0..n {
        let mut dists: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let d: f32 =
                    embeddings[i].iter().zip(&embeddings[j]).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, j)
            })
            .collect();
        let kk = k.min(dists.len());
        if kk == 0 {
            continue;
        }
        dists.select_nth_unstable_by(kk - 1, |a, b| a.0.total_cmp(&b.0));
        let same = dists[..kk].iter().filter(|(_, j)| labels[*j] == labels[i]).count();
        hist[same] += 1;
    }
    let total: usize = hist.iter().sum();
    PurityHistogram { fraction: hist.iter().map(|&c| c as f64 / total.max(1) as f64).collect(), k }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_clusters_are_pure() {
        let mut emb = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            let c = u16::from(i >= 6);
            emb.push(vec![f32::from(c) * 100.0 + (i % 6) as f32, 0.0]);
            labels.push(c);
        }
        let h = knn_purity(&emb, &labels, 5);
        assert!((h.mean_purity() - 1.0).abs() < 1e-9);
        assert!((h.fraction[5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_mixture_is_impure() {
        // alternate labels along a line: neighbours mostly other-class
        let emb: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, 0.0]).collect();
        let labels: Vec<u16> = (0..20).map(|i| (i % 2) as u16).collect();
        let h = knn_purity(&emb, &labels, 5);
        assert!(h.mean_purity() < 0.5, "got {}", h.mean_purity());
    }

    #[test]
    fn histogram_sums_to_one() {
        let emb: Vec<Vec<f32>> = (0..10).map(|i| vec![(i * i) as f32]).collect();
        let labels: Vec<u16> = (0..10).map(|i| (i % 3) as u16).collect();
        let h = knn_purity(&emb, &labels, 5);
        assert!((h.fraction.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(h.fraction.len(), 6);
    }
}
