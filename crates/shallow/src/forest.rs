//! Bagged random forest with Gini feature importance (Fig. 5).

use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (max_features defaults to √d if `None`).
    pub tree: TreeParams,
    /// Bootstrap-sample size per tree (`None` = n).
    pub sample_size: Option<usize>,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self { n_trees: 30, tree: TreeParams::default(), sample_size: None }
    }
}

/// A trained random forest.
///
/// ```
/// use shallow::forest::{ForestParams, RandomForest};
/// let x: Vec<Vec<f32>> = (0..40).map(|i| vec![f32::from(u8::from(i % 2 == 0)), i as f32]).collect();
/// let rows: Vec<&[f32]> = x.iter().map(|r| r.as_slice()).collect();
/// let y: Vec<u16> = (0..40).map(|i| (i % 2) as u16).collect();
/// let rf = RandomForest::fit(&rows, &y, 2, ForestParams::default(), 7);
/// assert_eq!(rf.predict_one(&[1.0, 3.0]), 0);
/// assert_eq!(rf.predict_one(&[0.0, 3.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Fit on feature rows and labels.
    pub fn fit(
        x: &[&[f32]],
        y: &[u16],
        n_classes: usize,
        params: ForestParams,
        seed: u64,
    ) -> RandomForest {
        assert!(!x.is_empty(), "empty training set");
        let n = x.len();
        let d = x[0].len();
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(((d as f64).sqrt().ceil() as usize).max(1));
        }
        let sample = params.sample_size.unwrap_or(n).min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            // bootstrap sample (features and labels drawn together)
            let mut bxx = Vec::with_capacity(sample);
            let mut byy = Vec::with_capacity(sample);
            for _ in 0..sample {
                let i = rng.gen_range(0..n);
                bxx.push(x[i]);
                byy.push(y[i]);
            }
            trees.push(DecisionTree::fit(
                &bxx,
                &byy,
                n_classes,
                tree_params,
                seed.wrapping_add(t as u64),
            ));
        }
        RandomForest { trees, n_classes, n_features: d }
    }

    /// Majority-vote prediction for one row.
    pub fn predict_one(&self, x: &[f32]) -> u16 {
        let mut votes = vec![0u32; self.n_classes];
        for t in &self.trees {
            votes[usize::from(t.predict_one(x))] += 1;
        }
        votes.iter().enumerate().max_by_key(|(_, &v)| v).map(|(l, _)| l as u16).unwrap_or(0)
    }

    /// Majority-vote predictions for many rows.
    pub fn predict(&self, x: &[&[f32]]) -> Vec<u16> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Normalised Gini feature importance, summing to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, b) in imp.iter_mut().zip(&t.importance) {
                *a += b;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl nn::frozen::FrozenArtifact for RandomForest {
    const KIND: &'static str = "forest";

    fn write_payload(&self, w: &mut nn::frozen::PayloadWriter) {
        w.u32(self.n_classes as u32);
        w.u32(self.n_features as u32);
        w.u64(self.trees.len() as u64);
        for tree in &self.trees {
            tree.write_payload(w);
        }
    }

    fn read_payload(r: &mut nn::frozen::PayloadReader) -> Result<RandomForest, String> {
        let n_classes = r.u32()? as usize;
        let n_features = r.u32()? as usize;
        if n_classes == 0 {
            return Err("forest with zero classes".into());
        }
        let n_trees = r.u64()? as usize;
        if n_trees == 0 || n_trees > 1 << 16 {
            return Err(format!("implausible forest size {n_trees}"));
        }
        let mut trees = Vec::with_capacity(n_trees);
        for t in 0..n_trees {
            let tree = DecisionTree::read_payload(r)?;
            if usize::from(tree.max_leaf_label()) >= n_classes {
                return Err(format!(
                    "tree {t}: leaf label {} out of range (n_classes {n_classes})",
                    tree.max_leaf_label()
                ));
            }
            if tree.importance.len() != n_features {
                return Err(format!(
                    "tree {t}: importance length {} != n_features {n_features}",
                    tree.importance.len()
                ));
            }
            trees.push(tree);
        }
        Ok(RandomForest { trees, n_classes, n_features })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_dataset(n: usize) -> (Vec<[f32; 4]>, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c: u16 = rng.gen_range(0..3);
            x.push([
                f32::from(c) * 2.0 + rng.gen_range(-0.8..0.8),
                f32::from(c) - rng.gen_range(-0.5..0.5),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn forest_beats_chance_on_noisy_data() {
        let (xv, y) = noisy_dataset(300);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let f = RandomForest::fit(&x[..200], &y[..200], 3, ForestParams::default(), 1);
        let preds = f.predict(&x[200..]);
        let acc = preds.iter().zip(&y[200..]).filter(|(p, t)| p == t).count() as f64 / 100.0;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn importance_is_normalised_and_informative() {
        let (xv, y) = noisy_dataset(300);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let f = RandomForest::fit(&x, &y, 3, ForestParams::default(), 2);
        let imp = f.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] + imp[1] > imp[2] + imp[3], "informative features dominate: {imp:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xv, y) = noisy_dataset(100);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let a = RandomForest::fit(&x, &y, 3, ForestParams::default(), 7);
        let b = RandomForest::fit(&x, &y, 3, ForestParams::default(), 7);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn frozen_round_trip_predicts_bitwise_identically() {
        use nn::frozen::FrozenArtifact;
        let (xv, y) = noisy_dataset(120);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let f = RandomForest::fit(&x, &y, 3, ForestParams::default(), 11);
        let bytes = f.to_frozen_bytes();
        assert_eq!(bytes, f.to_frozen_bytes(), "byte-stable encode");
        let back = RandomForest::from_frozen_bytes(&bytes).expect("round-trip");
        assert_eq!(back.predict(&x), f.predict(&x));
        assert_eq!(back.feature_importance(), f.feature_importance());
        assert_eq!(back.n_trees(), f.n_trees());
    }

    #[test]
    fn corrupt_frozen_forest_is_refused() {
        use nn::frozen::FrozenArtifact;
        let (xv, y) = noisy_dataset(60);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let params = ForestParams { n_trees: 3, ..Default::default() };
        let f = RandomForest::fit(&x, &y, 3, params, 2);
        let good = f.to_frozen_bytes();
        for offset in [0usize, 5, good.len() / 4, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[offset] ^= 0x08;
            assert!(
                RandomForest::from_frozen_bytes(&bad).is_err(),
                "flip at {offset} must be refused"
            );
        }
        assert!(RandomForest::from_frozen_bytes(&good[..good.len() - 2]).is_err(), "truncated");
    }

    #[test]
    fn n_trees_respected() {
        let (xv, y) = noisy_dataset(50);
        let x: Vec<&[f32]> = xv.iter().map(|r| r.as_slice()).collect();
        let params = ForestParams { n_trees: 5, ..Default::default() };
        let f = RandomForest::fit(&x, &y, 3, params, 1);
        assert_eq!(f.n_trees(), 5);
    }
}
