//! Presorted feature columns for tree fitting.
//!
//! Sorting every feature column once per fit (instead of re-sorting each
//! node's values for each feature) turns the per-node threshold search
//! into a monotone sweep over an already-sorted segment. Nodes own
//! contiguous `[lo, hi)` segments of every column; splitting a node
//! stable-partitions each column's segment in place, so both children's
//! segments stay sorted and the buffers are reused for the whole tree.

/// Feature-major presorted sample ids with reusable split buffers.
#[derive(Debug, Clone)]
pub struct Presorted {
    n_samples: usize,
    n_features: usize,
    /// `cols[f * n_samples + j]` = sample id; within each node's
    /// `[lo, hi)` segment, ids are sorted by `x[id][f]` (total order,
    /// NaNs last; ties in ascending id order).
    cols: Vec<u32>,
    /// Copy of the freshly-sorted layout, for `reset` between trees.
    pristine: Vec<u32>,
    scratch: Vec<u32>,
    goes_left: Vec<bool>,
}

impl Presorted {
    /// Sort every feature column of `x` once.
    pub fn new(x: &[&[f32]]) -> Presorted {
        let n = x.len();
        let n_features = if n == 0 { 0 } else { x[0].len() };
        let mut cols = Vec::with_capacity(n * n_features);
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            ids.clear();
            ids.extend(0..n as u32);
            ids.sort_by(|&a, &b| x[a as usize][f].total_cmp(&x[b as usize][f]));
            cols.extend_from_slice(&ids);
        }
        let pristine = cols.clone();
        Presorted {
            n_samples: n,
            n_features,
            cols,
            pristine,
            scratch: Vec::with_capacity(n),
            goes_left: vec![false; n],
        }
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Restore the freshly-sorted whole-range layout (for the next tree
    /// of an ensemble sharing this presort).
    pub fn reset(&mut self) {
        self.cols.copy_from_slice(&self.pristine);
    }

    /// The node segment `[lo, hi)` of feature `f`'s column.
    pub fn seg(&self, f: usize, lo: usize, hi: usize) -> &[u32] {
        &self.cols[f * self.n_samples + lo..f * self.n_samples + hi]
    }

    /// Split the node segment `[lo, hi)` on `x[i][feature] <= threshold`
    /// (NaNs go right), stable-partitioning every feature column so both
    /// children's segments remain sorted. Returns the boundary `mid`:
    /// the left child owns `[lo, mid)`, the right child `[mid, hi)`.
    pub fn split(
        &mut self,
        x: &[&[f32]],
        feature: usize,
        threshold: f32,
        lo: usize,
        hi: usize,
    ) -> usize {
        let n = self.n_samples;
        for &i in &self.cols[feature * n + lo..feature * n + hi] {
            self.goes_left[i as usize] = x[i as usize][feature] <= threshold;
        }
        let mut mid = lo;
        for f in 0..self.n_features {
            let seg = &mut self.cols[f * n + lo..f * n + hi];
            self.scratch.clear();
            let mut w = 0;
            for r in 0..seg.len() {
                let s = seg[r];
                if self.goes_left[s as usize] {
                    seg[w] = s;
                    w += 1;
                } else {
                    self.scratch.push(s);
                }
            }
            seg[w..].copy_from_slice(&self.scratch);
            mid = lo + w;
        }
        mid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[[f32; 2]]) -> Vec<&[f32]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn columns_are_sorted_with_stable_ties() {
        let data = [[3.0, 1.0], [1.0, 1.0], [2.0, 1.0], [1.0, 0.0]];
        let x = rows(&data);
        let p = Presorted::new(&x);
        assert_eq!(p.seg(0, 0, 4), &[1, 3, 2, 0]);
        // feature 1 ties keep ascending id order
        assert_eq!(p.seg(1, 0, 4), &[3, 0, 1, 2]);
    }

    #[test]
    fn split_partitions_every_column_and_keeps_order() {
        let data = [[3.0, 1.0], [1.0, 4.0], [2.0, 3.0], [4.0, 2.0]];
        let x = rows(&data);
        let mut p = Presorted::new(&x);
        let mid = p.split(&x, 0, 2.5, 0, 4);
        assert_eq!(mid, 2);
        assert_eq!(p.seg(0, 0, 2), &[1, 2], "left stays sorted by feature 0");
        assert_eq!(p.seg(0, 2, 4), &[0, 3]);
        assert_eq!(p.seg(1, 0, 2), &[2, 1], "left stays sorted by feature 1");
        assert_eq!(p.seg(1, 2, 4), &[0, 3]);
    }

    #[test]
    fn nan_goes_right_and_sorts_last() {
        let data = [[f32::NAN, 0.0], [1.0, 0.0], [2.0, 0.0]];
        let x = rows(&data);
        let mut p = Presorted::new(&x);
        assert_eq!(p.seg(0, 0, 3), &[1, 2, 0], "NaN sample sorts last");
        let mid = p.split(&x, 0, 10.0, 0, 3);
        assert_eq!(mid, 2, "NaN fails <= and goes right");
        assert_eq!(p.seg(0, 2, 3), &[0]);
    }

    #[test]
    fn reset_restores_pristine_layout() {
        let data = [[3.0, 1.0], [1.0, 4.0], [2.0, 3.0], [4.0, 2.0]];
        let x = rows(&data);
        let mut p = Presorted::new(&x);
        let before: Vec<u32> = p.seg(0, 0, 4).to_vec();
        p.split(&x, 1, 2.5, 0, 4);
        p.reset();
        assert_eq!(p.seg(0, 0, 4), &before[..]);
    }
}
