//! Dataset recipes: reproduce the class structure of the paper's three
//! downstream datasets (Table 2) at configurable scale.
//!
//! | Recipe          | Classes | Tasks                                   |
//! |-----------------|---------|-----------------------------------------|
//! | `IscxVpn`       | 16 apps × {plain, VPN} | VPN-binary, VPN-service, VPN-app |
//! | `UstcTfc`       | 20 apps (10 benign, 10 malware) | USTC-binary, USTC-app  |
//! | `CstnetTls120`  | 120 websites (handshake-stripped TLS) | TLS-120          |

use crate::profile::{AppProfile, TransportKind};
use crate::stream::FlowPlan;
use crate::trace::{ClassMeta, Trace};
use net_packet::ipv4::Ipv4Addr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which of the paper's datasets to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ISCX-VPN analogue: 16 applications, half captured over VPN.
    IscxVpn,
    /// USTC-TFC analogue: 10 benign + 10 malware applications.
    UstcTfc,
    /// CSTNET-TLS1.3 analogue: 120 websites, handshake/SNI stripped.
    CstnetTls120,
}

impl DatasetKind {
    /// Paper name of the dataset.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::IscxVpn => "ISCX-VPN",
            DatasetKind::UstcTfc => "USTC-TFC",
            DatasetKind::CstnetTls120 => "CSTN-TLS1.3",
        }
    }

    /// Fraction of spurious traffic contaminating the raw trace
    /// (paper §4.1: ISCX ≈ 5%, USTC ≈ 10%, CSTNET already clean).
    pub fn spurious_fraction(&self) -> f64 {
        match self {
            DatasetKind::IscxVpn => 0.05,
            DatasetKind::UstcTfc => 0.10,
            DatasetKind::CstnetTls120 => 0.0,
        }
    }

    /// Number of fine-grained classes.
    pub fn n_classes(&self) -> u16 {
        match self {
            DatasetKind::IscxVpn => 16,
            DatasetKind::UstcTfc => 20,
            DatasetKind::CstnetTls120 => 120,
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which dataset to synthesise.
    pub kind: DatasetKind,
    /// RNG seed; identical seeds give identical traces.
    pub seed: u64,
    /// Mean number of flows per class (classes deviate via their
    /// volume weight, preserving natural imbalance).
    pub flows_per_class: usize,
}

impl DatasetSpec {
    /// A spec with the default (laptop-scale) flow budget.
    pub fn new(kind: DatasetKind, seed: u64) -> Self {
        let flows_per_class = match kind {
            DatasetKind::IscxVpn => 24,
            DatasetKind::UstcTfc => 20,
            DatasetKind::CstnetTls120 => 8,
        };
        Self { kind, seed, flows_per_class }
    }

    /// Scale the flow budget by `factor` (for larger runs).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.flows_per_class = ((self.flows_per_class as f64) * factor).max(2.0) as usize;
        self
    }

    /// Synthesise the labelled trace (spurious traffic included).
    ///
    /// Every flow draws from its own FNV-derived RNG (see
    /// [`crate::stream::FlowPlan`]), so this fully in-RAM path and the
    /// sharded [`crate::stream::StreamingTrace`] iterator produce
    /// byte-identical traces at any shard count — an equivalence the
    /// `stream` tests assert record-for-record.
    pub fn generate(&self) -> Trace {
        let plan = FlowPlan::new(self);
        let mut trace = Trace { records: Vec::new(), classes: plan.classes().to_vec() };
        for flow_id in 0..plan.n_flows() {
            plan.flow_records(flow_id as u32, &mut trace.records);
        }
        trace.sort_by_time();
        let mut srng = StdRng::seed_from_u64(self.seed ^ 0x5f5f);
        trace.inject_spurious(self.kind.spurious_fraction(), &mut srng);
        trace
    }

    /// Build the class table and profiles for this dataset. Pure —
    /// everything is derived from the spec, no RNG involved, so shards
    /// can resolve the plan independently.
    pub(crate) fn class_table(&self) -> (Vec<ClassMeta>, Vec<AppProfile>, bool) {
        match self.kind {
            DatasetKind::IscxVpn => {
                // 16 applications over 6 services; half VPN-tunnelled.
                const APPS: [(&str, u8); 16] = [
                    ("browsing-chrome", 0),
                    ("browsing-firefox", 0),
                    ("voip-skype", 1),
                    ("voip-hangouts", 1),
                    ("voip-voipbuster", 1),
                    ("video-youtube", 2),
                    ("video-vimeo", 2),
                    ("video-netflix", 2),
                    ("chat-icq", 3),
                    ("chat-aim", 3),
                    ("chat-facebook", 3),
                    ("email-gmail", 4),
                    ("email-smtp", 4),
                    ("p2p-bittorrent", 5),
                    ("p2p-sftp", 5),
                    ("ftps", 5),
                ];
                let gateway = Ipv4Addr::new(203, 0, 113, 77);
                let mut classes = Vec::new();
                let mut profiles = Vec::new();
                for (i, (name, service)) in APPS.iter().enumerate() {
                    let class = i as u16;
                    let is_vpn = i % 2 == 1; // alternate plain / VPN
                    let transport = match service {
                        1 => TransportKind::Udp,
                        5 => TransportKind::RawTcp,
                        _ => TransportKind::TlsTcp,
                    };
                    let mut p = AppProfile::derive(self.seed, class, 16, transport);
                    if *service == 1 {
                        p.tos = 0xb8; // EF DSCP for VoIP
                        p.iat_mean = 0.02;
                    }
                    if is_vpn {
                        p = p.into_vpn(gateway);
                    }
                    classes.push(ClassMeta {
                        class,
                        name: format!("{}{}", if is_vpn { "vpn-" } else { "" }, name),
                        service: *service,
                        is_vpn,
                        is_malware: false,
                    });
                    profiles.push(p);
                }
                (classes, profiles, false)
            }
            DatasetKind::UstcTfc => {
                const BENIGN: [&str; 10] = [
                    "bittorrent",
                    "facetime",
                    "ftp",
                    "gmail",
                    "mysql",
                    "outlook",
                    "skype",
                    "smb",
                    "weibo",
                    "worldofwarcraft",
                ];
                const MALWARE: [&str; 10] = [
                    "cridex", "geodo", "htbot", "miuref", "neris", "nsis-ay", "shifu", "tinba",
                    "virut", "zeus",
                ];
                let mut classes = Vec::new();
                let mut profiles = Vec::new();
                for i in 0..20u16 {
                    let is_malware = i >= 10;
                    let name =
                        if is_malware { MALWARE[(i - 10) as usize] } else { BENIGN[i as usize] };
                    let transport = if is_malware || i % 3 == 0 {
                        TransportKind::RawTcp
                    } else {
                        TransportKind::TlsTcp
                    };
                    let mut p = AppProfile::derive(self.seed, i, 20, transport);
                    if is_malware {
                        // C2 beaconing: small periodic packets, low volume —
                        // makes USTC-binary an easy task, as in Table 3.
                        p.client_payload_mean = p.client_payload_mean.min(120.0);
                        p.server_payload_mean = p.server_payload_mean.min(220.0);
                        p.iat_mean = 0.5;
                        p.flow_len_mean = p.flow_len_mean.min(12.0);
                        p.server_ttl = 47 + (i % 3) as u8;
                    }
                    classes.push(ClassMeta {
                        class: i,
                        name: name.to_string(),
                        service: u8::from(is_malware),
                        is_vpn: false,
                        is_malware,
                    });
                    profiles.push(p);
                }
                (classes, profiles, false)
            }
            DatasetKind::CstnetTls120 => {
                let mut classes = Vec::new();
                let mut profiles = Vec::new();
                for i in 0..120u16 {
                    let mut p = AppProfile::derive(self.seed, i, 120, TransportKind::TlsTcp);
                    // Websites would carry an SNI, but the public dataset
                    // strips the handshake — we generate then strip (flag).
                    p.sni = Some(format!("www.site{i:03}.example"));
                    classes.push(ClassMeta {
                        class: i,
                        name: format!("site{i:03}"),
                        service: 0,
                        is_vpn: false,
                        is_malware: false,
                    });
                    profiles.push(p);
                }
                (classes, profiles, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SPURIOUS_CLASS;
    use net_packet::frame::ParsedFrame;
    use std::collections::HashSet;

    #[test]
    fn iscx_has_16_classes_and_spurious() {
        let t = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 1, flows_per_class: 3 }.generate();
        assert_eq!(t.classes.len(), 16);
        let labels: HashSet<u16> =
            t.records.iter().map(|r| r.class).filter(|c| *c != SPURIOUS_CLASS).collect();
        assert_eq!(labels.len(), 16);
        let frac = t.spurious_len() as f64 / t.records.len() as f64;
        assert!((0.02..0.10).contains(&frac), "spurious fraction {frac}");
    }

    #[test]
    fn ustc_malware_split() {
        let t = DatasetSpec { kind: DatasetKind::UstcTfc, seed: 2, flows_per_class: 2 }.generate();
        assert_eq!(t.classes.iter().filter(|c| c.is_malware).count(), 10);
        assert_eq!(t.classes.iter().filter(|c| !c.is_malware).count(), 10);
    }

    #[test]
    fn cstnet_is_clean_and_stripped() {
        let t =
            DatasetSpec { kind: DatasetKind::CstnetTls120, seed: 3, flows_per_class: 2 }.generate();
        assert_eq!(t.classes.len(), 120);
        assert_eq!(t.spurious_len(), 0);
        // No SYN packets anywhere: handshake stripped.
        for r in t.records.iter().take(500) {
            if let Ok(p) = ParsedFrame::parse(&r.frame) {
                if let net_packet::frame::TransportInfo::Tcp { flags, .. } = p.transport {
                    assert_eq!(flags & 0x02, 0, "found SYN in stripped dataset");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = DatasetSpec { kind: DatasetKind::UstcTfc, seed: 9, flows_per_class: 2 };
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[0].frame, b.records[0].frame);
        assert_eq!(a.records.last().unwrap().frame, b.records.last().unwrap().frame);
    }

    #[test]
    fn seeds_differ() {
        let a = DatasetSpec { kind: DatasetKind::UstcTfc, seed: 1, flows_per_class: 2 }.generate();
        let b = DatasetSpec { kind: DatasetKind::UstcTfc, seed: 2, flows_per_class: 2 }.generate();
        assert_ne!(a.records[0].frame, b.records[0].frame);
    }

    #[test]
    fn class_imbalance_exists() {
        let t = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 4, flows_per_class: 6 }.generate();
        let mut counts = [0usize; 16];
        for r in &t.records {
            if r.class != SPURIOUS_CLASS {
                counts[r.class as usize] += 1;
            }
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max > min * 2, "expected natural imbalance, got {min}..{max}");
    }

    #[test]
    fn vpn_classes_are_udp_tunnelled() {
        let t = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 8, flows_per_class: 2 }.generate();
        // every packet of a VPN class must go to the gateway on UDP 1194
        for r in t.records.iter().filter(|r| r.class != SPURIOUS_CLASS) {
            if t.classes[r.class as usize].is_vpn {
                let p = ParsedFrame::parse(&r.frame).unwrap();
                match p.transport {
                    net_packet::frame::TransportInfo::Udp { src_port, dst_port, .. } => {
                        assert!(src_port == 1194 || dst_port == 1194, "VPN must use port 1194");
                    }
                    other => panic!("VPN traffic must be UDP, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn voip_classes_carry_ef_dscp() {
        let t = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 9, flows_per_class: 2 }.generate();
        let mut saw_voip = false;
        for r in t.records.iter().filter(|r| r.class != SPURIOUS_CLASS) {
            let meta = &t.classes[r.class as usize];
            if meta.service == 1 && !meta.is_vpn {
                let p = ParsedFrame::parse(&r.frame).unwrap();
                if let net_packet::frame::IpInfo::V4 { tos, .. } = p.ip {
                    assert_eq!(tos, 0xb8, "VoIP packets carry EF DSCP");
                    saw_voip = true;
                }
            }
        }
        assert!(saw_voip);
    }

    #[test]
    fn scaled_changes_budget() {
        let s = DatasetSpec::new(DatasetKind::IscxVpn, 1).scaled(2.0);
        assert_eq!(s.flows_per_class, 48);
    }
}
