//! Per-class application behaviour profiles.
//!
//! A profile captures everything that makes one application's traffic
//! *look* different from another's **in the headers**: which servers it
//! talks to, how big and how frequent its packets are, what OS/network
//! parameters its servers advertise. These are exactly the features a
//! legitimate classifier may exploit; the encrypted payload carries no
//! class information at all.
//!
//! Profiles are derived deterministically from `(dataset seed, class
//! id)` so that traces are reproducible and classes are stable across
//! runs. The amount of header signal is *bounded*: server pools and
//! parameter ranges are drawn from shared universes with overlap, so
//! no single field identifies a class perfectly — matching the paper's
//! observation that shallow models on header features reach high but
//! not perfect macro-F1 (Table 8).

use net_packet::ipv4::Ipv4Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Transport used by an application's flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// TLS-over-TCP (web, streaming, chat, ...).
    TlsTcp,
    /// Plain TCP with opaque payload (P2P, malware C2, ...).
    RawTcp,
    /// UDP with opaque payload (VoIP, VPN tunnels, QUIC-like).
    Udp,
}

/// Behavioural profile for one traffic class.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Class identifier within the dataset.
    pub class: u16,
    /// Transport to synthesise.
    pub transport: TransportKind,
    /// Server port (e.g. 443 for TLS, 1194 for VPN-ish UDP).
    pub server_port: u16,
    /// Pool of server addresses this application contacts.
    pub server_pool: Vec<Ipv4Addr>,
    /// Mean payload size of client data packets (bytes).
    pub client_payload_mean: f64,
    /// Standard deviation of client payload sizes.
    pub client_payload_std: f64,
    /// Mean payload size of server data packets (bytes).
    pub server_payload_mean: f64,
    /// Standard deviation of server payload sizes.
    pub server_payload_std: f64,
    /// Probability that the next data packet is server→client.
    pub downstream_ratio: f64,
    /// Mean inter-arrival time between data packets (seconds).
    pub iat_mean: f64,
    /// TTL observed from the server side (hop distance signature).
    pub server_ttl: u8,
    /// TTL used by the client.
    pub client_ttl: u8,
    /// Initial receive window advertised by the server.
    pub server_window: u16,
    /// MSS advertised by the server.
    pub server_mss: u16,
    /// Window-scale shift advertised by the server.
    pub server_wscale: u8,
    /// Whether flows carry a TLS ClientHello with an SNI (plain-text
    /// leak; the CSTNET-TLS1.3 recipe strips it, see §4.1 footnote 7).
    pub sni: Option<String>,
    /// Mean number of data packets per flow.
    pub flow_len_mean: f64,
    /// Relative volume of this class (flow-count weight, models the
    /// natural class imbalance of §4.1 "Sampling").
    pub volume_weight: f64,
    /// Type-of-service byte (DSCP marking, e.g. VoIP uses EF).
    pub tos: u8,
}

/// Shared universes the per-class draws come from. Keeping these small
/// creates the *overlap* between classes that bounds header signal.
const TTL_BASES: [u8; 6] = [52, 55, 57, 59, 61, 63];
const WINDOWS: [u16; 5] = [8192, 14600, 26883, 29200, 64240];
const MSS_VALUES: [u16; 4] = [1360, 1400, 1440, 1460];

impl AppProfile {
    /// Derive the profile for `class` of a dataset generated with
    /// `seed`. `n_classes` controls how crowded the server-address
    /// universe is (more classes ⇒ more overlap ⇒ harder task).
    pub fn derive(seed: u64, class: u16, n_classes: u16, transport: TransportKind) -> AppProfile {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (u64::from(class) << 32) ^ 0x9e37_79b9_7f4a_7c15);
        // Server pool: 2-4 addresses out of a universe whose size scales
        // sub-linearly with the class count, forcing sharing.
        let universe = (u32::from(n_classes) * 3).max(16);
        let pool_size = rng.gen_range(2..=4);
        let server_pool = (0..pool_size)
            .map(|_| {
                let idx = rng.gen_range(0..universe);
                // Map universe index to a plausible public /16 + host.
                let a = 13 + (idx % 180) as u8;
                let b = (idx / 7 % 250) as u8;
                let c = rng.gen_range(1..250);
                let d = rng.gen_range(1..250);
                Ipv4Addr::new(a, b, c, d)
            })
            .collect();
        let server_port = match transport {
            TransportKind::TlsTcp => 443,
            TransportKind::RawTcp => {
                *[80u16, 8080, 6881, 4662, 8000].get(rng.gen_range(0..5)).expect("index in range")
            }
            TransportKind::Udp => {
                *[1194u16, 500, 4500, 16393, 3480].get(rng.gen_range(0..5)).expect("index in range")
            }
        };
        let client_payload_mean = rng.gen_range(80.0..600.0);
        let server_payload_mean = rng.gen_range(200.0..1300.0);
        AppProfile {
            class,
            transport,
            server_port,
            server_pool,
            client_payload_mean,
            client_payload_std: client_payload_mean * rng.gen_range(0.15..0.5),
            server_payload_mean,
            server_payload_std: server_payload_mean * rng.gen_range(0.1..0.4),
            downstream_ratio: rng.gen_range(0.45..0.8),
            iat_mean: rng.gen_range(0.002..0.2),
            server_ttl: TTL_BASES[rng.gen_range(0..TTL_BASES.len())],
            client_ttl: if rng.gen_bool(0.7) { 64 } else { 128 },
            server_window: WINDOWS[rng.gen_range(0..WINDOWS.len())],
            server_mss: MSS_VALUES[rng.gen_range(0..MSS_VALUES.len())],
            server_wscale: rng.gen_range(5..=9),
            sni: None,
            flow_len_mean: rng.gen_range(8.0..40.0),
            volume_weight: rng.gen_range(0.3..3.0),
            tos: 0,
        }
    }

    /// Mark this profile as VPN-tunnelled: traffic is re-encapsulated
    /// in UDP to a VPN gateway, sizes gain tunnel overhead and the
    /// original service signature is masked (paper: ISCX-VPN).
    pub fn into_vpn(mut self, gateway: Ipv4Addr) -> AppProfile {
        self.transport = TransportKind::Udp;
        self.server_port = 1194;
        self.server_pool = vec![gateway];
        self.client_payload_mean += 52.0; // ESP/OpenVPN overhead
        self.server_payload_mean += 52.0;
        self.server_ttl = 60;
        self.sni = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = AppProfile::derive(7, 3, 16, TransportKind::TlsTcp);
        let b = AppProfile::derive(7, 3, 16, TransportKind::TlsTcp);
        assert_eq!(a.server_pool, b.server_pool);
        assert_eq!(a.server_ttl, b.server_ttl);
        assert_eq!(a.server_window, b.server_window);
    }

    #[test]
    fn classes_differ() {
        let a = AppProfile::derive(7, 0, 16, TransportKind::TlsTcp);
        let b = AppProfile::derive(7, 1, 16, TransportKind::TlsTcp);
        // Not every field must differ, but the joint profile must.
        assert!(
            a.server_pool != b.server_pool
                || a.server_ttl != b.server_ttl
                || (a.client_payload_mean - b.client_payload_mean).abs() > 1.0
        );
    }

    #[test]
    fn tls_uses_443() {
        let p = AppProfile::derive(1, 0, 8, TransportKind::TlsTcp);
        assert_eq!(p.server_port, 443);
    }

    #[test]
    fn vpn_wrap_masks_profile() {
        let gw = Ipv4Addr::new(203, 0, 113, 9);
        let p = AppProfile::derive(1, 0, 8, TransportKind::TlsTcp).into_vpn(gw);
        assert_eq!(p.transport, TransportKind::Udp);
        assert_eq!(p.server_port, 1194);
        assert_eq!(p.server_pool, vec![gw]);
    }

    #[test]
    fn pools_are_plausible_sizes() {
        for c in 0..32 {
            let p = AppProfile::derive(42, c, 32, TransportKind::RawTcp);
            assert!((2..=4).contains(&p.server_pool.len()));
            assert!(p.flow_len_mean >= 8.0);
        }
    }
}
