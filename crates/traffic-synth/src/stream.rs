//! Streaming, flow-sharded trace generation and the on-disk shard-run
//! format backing out-of-core datasets.
//!
//! [`DatasetSpec::generate`](crate::DatasetSpec::generate) used to
//! thread one sequential RNG through every flow, so the whole trace had
//! to exist in memory and no prefix could be produced independently.
//! Here each flow draws from its **own** RNG, seeded by an FNV-1a hash
//! of `(dataset seed, flow id)` — the same seed-derivation scheme the
//! artifact cache uses for content addresses — so any contiguous range
//! of flows ("shard") can be generated independently and the result is
//! byte-identical for **any** shard count:
//!
//! - [`FlowPlan`] resolves the per-flow class assignment up front (a
//!   deterministic function of the spec, no RNG involved);
//! - [`StreamingTrace`] yields one internally time-sorted shard at a
//!   time, never holding more than a shard of packets, and finishes
//!   with the spurious-traffic run (whose count and time span depend on
//!   the whole labelled trace, so it must come last);
//! - [`merge_sorted`] k-way-merges sorted runs with a stable tie-break
//!   (earliest run first), reproducing exactly the stable global
//!   time-sort of the in-RAM generator;
//! - [`write_shard_dir`] / [`ShardDir`] persist the runs as `.dbsr`
//!   files — length-prefixed records guarded by an FNV-64 checksum and
//!   a canonical key, verified in a streaming pass *before* any record
//!   is served, so a corrupt file is refused (and deterministically
//!   rebuilt), never mis-decoded.

use crate::flow::synth_flow;
use crate::profile::AppProfile;
use crate::recipes::{DatasetKind, DatasetSpec};
use crate::trace::{spurious_run, ClassMeta, TraceRecord};
use net_packet::ipv4::Ipv4Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a over a sequence of byte strings — the repo-wide stable hash
/// (same constants as `encoders::checkpoint::stable_hash64` and the
/// artifact-cache fingerprints, which this crate cannot depend on).
pub fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash differently.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-flow RNG: every flow's packets are a pure function of
/// `(dataset seed, flow id)`, independent of all other flows.
fn flow_rng(seed: u64, flow_id: u32) -> StdRng {
    StdRng::seed_from_u64(fnv64(&[b"flow", &seed.to_le_bytes(), &flow_id.to_le_bytes()]))
}

/// The deterministic generation plan for one [`DatasetSpec`]: class
/// table, per-class profiles and the class of every flow id. Building
/// the plan involves no RNG, so shards can resolve their flows without
/// generating anyone else's packets.
pub struct FlowPlan {
    seed: u64,
    spurious_fraction: f64,
    classes: Vec<ClassMeta>,
    profiles: Vec<AppProfile>,
    strip: bool,
    /// Class id of each flow id (flow ids are assigned class-major, in
    /// class order — same layout as the in-RAM generator).
    flow_class: Vec<u16>,
}

impl FlowPlan {
    /// Resolve the plan for `spec`.
    pub fn new(spec: &DatasetSpec) -> FlowPlan {
        let (classes, profiles, strip) = spec.class_table();
        let mut flow_class = Vec::new();
        for profile in &profiles {
            let n_flows =
                ((spec.flows_per_class as f64) * profile.volume_weight).round().max(2.0) as usize;
            flow_class.extend(std::iter::repeat_n(profile.class, n_flows));
        }
        FlowPlan {
            seed: spec.seed,
            spurious_fraction: spec.kind.spurious_fraction(),
            classes,
            profiles,
            strip,
            flow_class,
        }
    }

    /// Total number of flows in the trace.
    pub fn n_flows(&self) -> usize {
        self.flow_class.len()
    }

    /// The class table.
    pub fn classes(&self) -> &[ClassMeta] {
        &self.classes
    }

    /// The contiguous flow-id range of shard `shard` out of `n_shards`
    /// (near-equal sizes, earlier shards take the remainder).
    pub fn shard_span(&self, shard: usize, n_shards: usize) -> std::ops::Range<usize> {
        let n = self.n_flows();
        let base = n / n_shards;
        let extra = n % n_shards;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..(start + len).min(n)
    }

    /// Append the packets of `flow_id` to `out`, drawn from the flow's
    /// own RNG.
    pub fn flow_records(&self, flow_id: u32, out: &mut Vec<TraceRecord>) {
        let class = self.flow_class[flow_id as usize];
        let profile = &self.profiles[class as usize];
        let mut rng = flow_rng(self.seed, flow_id);
        let client = Ipv4Addr::new(192, 168, 1, rng.gen_range(2..250));
        let start = rng.gen_range(0.0..600.0);
        let f = synth_flow(profile, client, start, &mut rng, self.strip);
        out.reserve(f.packets.len());
        for p in f.packets {
            out.push(TraceRecord {
                ts: p.ts,
                frame: p.frame,
                class,
                flow_id,
                from_client: p.from_client,
            });
        }
    }
}

/// One generated run: a time-sorted slice of the trace.
pub struct Shard {
    /// Run index: `0..n_shards` are flow shards, `n_shards` is the
    /// spurious run (present even when empty, so run counts are fixed).
    pub index: usize,
    /// Records, stably sorted by timestamp.
    pub records: Vec<TraceRecord>,
}

/// Streaming shard iterator: yields `n_shards` flow shards followed by
/// one spurious run, holding at most one shard of packets in memory.
/// Merging the runs with [`merge_sorted`] reproduces
/// [`DatasetSpec::generate`](crate::DatasetSpec::generate) exactly, for
/// any `n_shards`.
pub struct StreamingTrace {
    plan: FlowPlan,
    n_shards: usize,
    next: usize,
    labelled: usize,
    t_max: f64,
    spurious_done: bool,
}

impl StreamingTrace {
    /// Stream `plan` as `n_shards` flow shards (clamped to at least 1).
    pub fn new(plan: FlowPlan, n_shards: usize) -> StreamingTrace {
        StreamingTrace {
            plan,
            n_shards: n_shards.max(1),
            next: 0,
            labelled: 0,
            t_max: 0.0,
            spurious_done: false,
        }
    }

    /// Total number of runs this iterator will yield.
    pub fn n_runs(&self) -> usize {
        self.n_shards + 1
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FlowPlan {
        &self.plan
    }
}

impl Iterator for StreamingTrace {
    type Item = Shard;

    fn next(&mut self) -> Option<Shard> {
        if self.next < self.n_shards {
            let span = self.plan.shard_span(self.next, self.n_shards);
            let mut records = Vec::new();
            for flow in span {
                self.plan.flow_records(flow as u32, &mut records);
            }
            // Stable: ties keep flow-major order, exactly like the
            // global stable sort over the flow-major full trace.
            records.sort_by(|a, b| a.ts.total_cmp(&b.ts));
            self.labelled += records.len();
            self.t_max = records.iter().map(|r| r.ts).fold(self.t_max, f64::max);
            let index = self.next;
            self.next += 1;
            Some(Shard { index, records })
        } else if !self.spurious_done {
            self.spurious_done = true;
            let mut rng = StdRng::seed_from_u64(self.plan.seed ^ 0x5f5f);
            let mut records =
                spurious_run(self.labelled, self.plan.spurious_fraction, self.t_max, &mut rng);
            records.sort_by(|a, b| a.ts.total_cmp(&b.ts));
            Some(Shard { index: self.n_shards, records })
        } else {
            None
        }
    }
}

/// K-way merge of time-sorted runs with a stable tie-break: on equal
/// timestamps the earliest run wins, and order within a run is kept.
/// Because the runs partition the flow-major trace in order (spurious
/// last), this equals the stable global time-sort of the in-RAM path.
pub fn merge_sorted<I>(runs: Vec<I>) -> MergeSorted<I>
where
    I: Iterator<Item = TraceRecord>,
{
    MergeSorted { runs: runs.into_iter().map(Iterator::peekable).collect() }
}

/// Iterator returned by [`merge_sorted`].
pub struct MergeSorted<I: Iterator<Item = TraceRecord>> {
    runs: Vec<std::iter::Peekable<I>>,
}

impl<I: Iterator<Item = TraceRecord>> Iterator for MergeSorted<I> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let mut best: Option<(usize, f64)> = None;
        for (i, run) in self.runs.iter_mut().enumerate() {
            if let Some(r) = run.peek() {
                // Strictly-less keeps the earliest run on ties.
                if best.is_none_or(|(_, ts)| r.ts.total_cmp(&ts).is_lt()) {
                    best = Some((i, r.ts));
                }
            }
        }
        best.and_then(|(i, _)| self.runs[i].next())
    }
}

// ---------------------------------------------------------------------
// On-disk shard runs (`.dbsr`)
// ---------------------------------------------------------------------
//
// One file per run:
//
//   "DBSR" | u32 version=1 | u32 key_len | key bytes | u64 n_records
//   | records... | u64 fnv64(everything before this field)
//
//   record := f64 ts | u16 class | u32 flow_id | u8 from_client
//             | u32 frame_len | frame bytes
//
// The key spells out everything the bytes depend on —
// `shards|<kind>|<seed>|<flows_per_class>|<n_shards>|<run index>` — so
// a file can never be served for the wrong spec, shard layout or slot.
// Readers verify the whole file (structure + checksum) in a buffered
// streaming pass before yielding a single record: refuse-or-rebuild,
// never mis-decode.

const RUN_MAGIC: &[u8; 4] = b"DBSR";
const RUN_VERSION: u32 = 1;

fn kind_tag(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::IscxVpn => "iscx",
        DatasetKind::UstcTfc => "ustc",
        DatasetKind::CstnetTls120 => "cstnet",
    }
}

fn kind_from_tag(tag: &str) -> Option<DatasetKind> {
    match tag {
        "iscx" => Some(DatasetKind::IscxVpn),
        "ustc" => Some(DatasetKind::UstcTfc),
        "cstnet" => Some(DatasetKind::CstnetTls120),
        _ => None,
    }
}

fn run_key(spec: &DatasetSpec, n_shards: usize, run: usize) -> String {
    format!(
        "shards|{}|{:016x}|{}|{}|{}",
        kind_tag(spec.kind),
        spec.seed,
        spec.flows_per_class,
        n_shards,
        run
    )
}

fn run_file_name(run: usize) -> String {
    format!("run-{run:04}.dbsr")
}

/// Writer that hashes as it goes, so the trailer checksum covers the
/// whole file without a second pass.
struct HashingWriter<W: Write> {
    w: W,
    h: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(w: W) -> HashingWriter<W> {
        HashingWriter { w, h: 0xcbf2_9ce4_8422_2325 }
    }

    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.w.write_all(bytes)
    }
}

fn write_run(path: &Path, key: &str, records: &[TraceRecord]) -> Result<(), String> {
    let tmp = path.with_extension("dbsr.tmp");
    let io = |e: std::io::Error| format!("cannot write {}: {e}", tmp.display());
    let file = File::create(&tmp).map_err(io)?;
    let mut w = HashingWriter::new(BufWriter::new(file));
    let res = (|| -> std::io::Result<()> {
        w.put(RUN_MAGIC)?;
        w.put(&RUN_VERSION.to_le_bytes())?;
        w.put(&(key.len() as u32).to_le_bytes())?;
        w.put(key.as_bytes())?;
        w.put(&(records.len() as u64).to_le_bytes())?;
        for r in records {
            w.put(&r.ts.to_le_bytes())?;
            w.put(&r.class.to_le_bytes())?;
            w.put(&r.flow_id.to_le_bytes())?;
            w.put(&[u8::from(r.from_client)])?;
            w.put(&(r.frame.len() as u32).to_le_bytes())?;
            w.put(&r.frame)?;
        }
        let checksum = w.h;
        w.w.write_all(&checksum.to_le_bytes())?;
        w.w.flush()
    })();
    res.map_err(io)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("cannot rename {}: {e}", path.display())
    })
}

/// Reader over one verified run file, yielding records in file order.
/// Construction ([`RunReader::verify_open`]) streams the entire file
/// once — structure, record framing and trailing FNV-64 — and refuses
/// it on any inconsistency; only then is a second buffered pass handed
/// out, so downstream consumers can trust every record they see.
pub struct RunReader {
    r: BufReader<File>,
    remaining: u64,
    path: PathBuf,
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), String> {
    r.read_exact(buf).map_err(|e| format!("truncated {what}: {e}"))
}

/// Parse + verify the header of `r`, returning `(key, n_records)` and
/// folding the consumed bytes into `h`.
fn read_run_header(r: &mut impl Read, h: &mut u64) -> Result<(String, u64), String> {
    let fold = |bytes: &[u8], h: &mut u64| {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut magic = [0u8; 4];
    read_exact(r, &mut magic, "magic")?;
    if &magic != RUN_MAGIC {
        return Err("bad shard-run magic".to_string());
    }
    fold(&magic, h);
    let mut u32b = [0u8; 4];
    read_exact(r, &mut u32b, "version")?;
    fold(&u32b, h);
    let version = u32::from_le_bytes(u32b);
    if version != RUN_VERSION {
        return Err(format!("unsupported shard-run version {version}"));
    }
    read_exact(r, &mut u32b, "key length")?;
    fold(&u32b, h);
    let key_len = u32::from_le_bytes(u32b) as usize;
    if key_len > 4096 {
        return Err(format!("implausible key length {key_len}"));
    }
    let mut key = vec![0u8; key_len];
    read_exact(r, &mut key, "key")?;
    fold(&key, h);
    let key = String::from_utf8(key).map_err(|e| format!("key not utf-8: {e}"))?;
    let mut u64b = [0u8; 8];
    read_exact(r, &mut u64b, "record count")?;
    fold(&u64b, h);
    Ok((key, u64::from_le_bytes(u64b)))
}

impl RunReader {
    /// Verify the whole file against `expected_key`, then return a
    /// reader positioned at the first record.
    pub fn verify_open(path: &Path, expected_key: &str) -> Result<RunReader, String> {
        let open = || File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()));
        // Pass 1: stream-verify structure and checksum.
        let mut r = BufReader::with_capacity(1 << 16, open()?);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let (key, n_records) = read_run_header(&mut r, &mut h)?;
        if key != expected_key {
            return Err(format!("key mismatch: file is '{key}', wanted '{expected_key}'"));
        }
        let mut buf = vec![0u8; 1 << 16];
        for i in 0..n_records {
            let mut fixed = [0u8; 19]; // ts(8) class(2) flow(4) dir(1) len(4)
            read_exact(&mut r, &mut fixed, &format!("record {i}"))?;
            if fixed[14] > 1 {
                return Err(format!("record {i}: invalid direction byte {}", fixed[14]));
            }
            for &b in &fixed {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut frame_len =
                u32::from_le_bytes(fixed[15..19].try_into().expect("4 bytes")) as usize;
            if frame_len > (1 << 24) {
                return Err(format!("record {i}: implausible frame length {frame_len}"));
            }
            while frame_len > 0 {
                let take = frame_len.min(buf.len());
                read_exact(&mut r, &mut buf[..take], &format!("record {i} frame"))?;
                for &b in &buf[..take] {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                frame_len -= take;
            }
        }
        let mut tail = [0u8; 8];
        read_exact(&mut r, &mut tail, "checksum")?;
        if u64::from_le_bytes(tail) != h {
            return Err("shard-run checksum mismatch".to_string());
        }
        if r.read(&mut [0u8; 1]).map_err(|e| e.to_string())? != 0 {
            return Err("trailing bytes after checksum".to_string());
        }
        // Pass 2: re-open for consumption (cheap: header only).
        let mut r = BufReader::with_capacity(1 << 16, open()?);
        let mut h2 = 0u64;
        let (_, n) = read_run_header(&mut r, &mut h2)?;
        Ok(RunReader { r, remaining: n, path: path.to_path_buf() })
    }
}

impl Iterator for RunReader {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // The file was fully verified at open; a read error here means
        // it changed underneath us mid-stream — fail loudly rather than
        // truncate the dataset silently.
        let mut fixed = [0u8; 19];
        self.r
            .read_exact(&mut fixed)
            .unwrap_or_else(|e| panic!("verified shard run {} changed: {e}", self.path.display()));
        let frame_len = u32::from_le_bytes(fixed[15..19].try_into().expect("4 bytes")) as usize;
        let mut frame = vec![0u8; frame_len];
        self.r
            .read_exact(&mut frame)
            .unwrap_or_else(|e| panic!("verified shard run {} changed: {e}", self.path.display()));
        Some(TraceRecord {
            ts: f64::from_le_bytes(fixed[0..8].try_into().expect("8 bytes")),
            frame,
            class: u16::from_le_bytes(fixed[8..10].try_into().expect("2 bytes")),
            flow_id: u32::from_le_bytes(fixed[10..14].try_into().expect("4 bytes")),
            from_client: fixed[14] == 1,
        })
    }
}

/// Write all runs of `spec` sharded `n_shards` ways into `dir`,
/// returning the opened [`ShardDir`]. Peak memory is one shard of
/// packets. Existing files are overwritten (generation is deterministic,
/// so rewriting is always byte-identical).
pub fn write_shard_dir(
    dir: &Path,
    spec: &DatasetSpec,
    n_shards: usize,
) -> Result<ShardDir, String> {
    let n_shards = n_shards.max(1);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let plan = FlowPlan::new(spec);
    let classes = plan.classes().to_vec();
    let mut counts = Vec::with_capacity(n_shards + 1);
    for shard in StreamingTrace::new(plan, n_shards) {
        let key = run_key(spec, n_shards, shard.index);
        write_run(&dir.join(run_file_name(shard.index)), &key, &shard.records)?;
        counts.push(shard.records.len() as u64);
    }
    Ok(ShardDir { dir: dir.to_path_buf(), spec: spec.clone(), n_shards, counts, classes })
}

/// [`write_shard_dir`] with `threads` generator threads. Byte-identical
/// output at any thread count: flow shards draw only from per-flow
/// FNV-seeded RNG streams, so they are order-independent, and the
/// spurious run's inputs (total labelled record count, global max
/// timestamp) are a sum and a max — both invariant under the
/// per-shard→global fold. Peak memory is `threads` shards of packets.
pub fn write_shard_dir_threads(
    dir: &Path,
    spec: &DatasetSpec,
    n_shards: usize,
    threads: usize,
) -> Result<ShardDir, String> {
    let n_shards = n_shards.max(1);
    let threads = threads.max(1).min(n_shards);
    if threads == 1 {
        return write_shard_dir(dir, spec, n_shards);
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let plan = FlowPlan::new(spec);
    let classes = plan.classes().to_vec();
    // Claim-the-next-shard work stealing: shard sizes are uneven (class
    // volume weights), so static striping would leave threads idle.
    type ShardStats = (u64, f64);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let done: Vec<(usize, Result<ShardStats, String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let plan = &plan;
                let next = &next;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n_shards {
                            return out;
                        }
                        let mut records = Vec::new();
                        for flow in plan.shard_span(i, n_shards) {
                            plan.flow_records(flow as u32, &mut records);
                        }
                        records.sort_by(|a, b| a.ts.total_cmp(&b.ts));
                        let t_max = records.iter().map(|r| r.ts).fold(0.0f64, f64::max);
                        let res = write_run(
                            &dir.join(run_file_name(i)),
                            &run_key(spec, n_shards, i),
                            &records,
                        )
                        .map(|()| (records.len() as u64, t_max));
                        out.push((i, res));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("shard generator panicked")).collect()
    });
    let mut counts = vec![0u64; n_shards];
    let mut t_max = 0.0f64;
    for (i, res) in done {
        let (count, shard_t_max) = res?;
        counts[i] = count;
        t_max = t_max.max(shard_t_max);
    }
    let labelled: u64 = counts.iter().sum();
    // The spurious run depends on every flow shard (record total, time
    // span), so it is generated serially after the fan-out — exactly
    // like StreamingTrace yields it last.
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x5f5f);
    let mut records = spurious_run(labelled as usize, plan.spurious_fraction, t_max, &mut rng);
    records.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    write_run(&dir.join(run_file_name(n_shards)), &run_key(spec, n_shards, n_shards), &records)?;
    counts.push(records.len() as u64);
    Ok(ShardDir { dir: dir.to_path_buf(), spec: spec.clone(), n_shards, counts, classes })
}

/// A validated on-disk sharded trace: `n_shards` flow runs plus the
/// spurious run, all keyed to one spec.
pub struct ShardDir {
    dir: PathBuf,
    spec: DatasetSpec,
    n_shards: usize,
    counts: Vec<u64>,
    classes: Vec<ClassMeta>,
}

impl ShardDir {
    /// Open an existing shard dir, verifying every run file end to end.
    /// Any missing, truncated, corrupted or mis-keyed file is an error.
    pub fn open(dir: &Path, spec: &DatasetSpec, n_shards: usize) -> Result<ShardDir, String> {
        let n_shards = n_shards.max(1);
        let mut counts = Vec::with_capacity(n_shards + 1);
        for run in 0..=n_shards {
            let path = dir.join(run_file_name(run));
            let reader = RunReader::verify_open(&path, &run_key(spec, n_shards, run))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            counts.push(reader.remaining);
        }
        let classes = FlowPlan::new(spec).classes().to_vec();
        Ok(ShardDir { dir: dir.to_path_buf(), spec: spec.clone(), n_shards, counts, classes })
    }

    /// Open `dir` if it validates, else (re)generate every run —
    /// refuse-or-rebuild for the whole layout. Returns the dir plus
    /// whether a rebuild happened.
    pub fn ensure(
        dir: &Path,
        spec: &DatasetSpec,
        n_shards: usize,
    ) -> Result<(ShardDir, bool), String> {
        ShardDir::ensure_threads(dir, spec, n_shards, 1)
    }

    /// [`ShardDir::ensure`] with a rebuild fan-out of `threads`
    /// generator threads ([`write_shard_dir_threads`]); the regenerated
    /// bytes are identical at any thread count.
    pub fn ensure_threads(
        dir: &Path,
        spec: &DatasetSpec,
        n_shards: usize,
        threads: usize,
    ) -> Result<(ShardDir, bool), String> {
        match ShardDir::open(dir, spec, n_shards) {
            Ok(d) => Ok((d, false)),
            Err(_) => write_shard_dir_threads(dir, spec, n_shards, threads).map(|d| (d, true)),
        }
    }

    /// Discover the spec and shard count from the first run's header,
    /// then open with full verification — how `serve` attaches to a
    /// shard dir without re-stating the generation parameters.
    pub fn discover(dir: &Path) -> Result<ShardDir, String> {
        let path = dir.join(run_file_name(0));
        let file = File::open(&path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let mut r = BufReader::new(file);
        let mut h = 0u64;
        let (key, _) = read_run_header(&mut r, &mut h)?;
        let parts: Vec<&str> = key.split('|').collect();
        let ["shards", kind, seed, fpc, n_shards, _run] = parts[..] else {
            return Err(format!("unrecognised shard-run key '{key}'"));
        };
        let kind = kind_from_tag(kind).ok_or_else(|| format!("unknown dataset tag '{kind}'"))?;
        let seed = u64::from_str_radix(seed, 16).map_err(|e| format!("bad seed in key: {e}"))?;
        let flows_per_class =
            fpc.parse::<usize>().map_err(|e| format!("bad flow count in key: {e}"))?;
        let n_shards =
            n_shards.parse::<usize>().map_err(|e| format!("bad shard count in key: {e}"))?;
        ShardDir::open(dir, &DatasetSpec { kind, seed, flows_per_class }, n_shards)
    }

    /// The generating spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Number of flow shards (excluding the spurious run).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Total records across all runs.
    pub fn n_records(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The class table of the generated trace.
    pub fn classes(&self) -> &[ClassMeta] {
        &self.classes
    }

    /// Stream the full trace in canonical (time-sorted) order, reading
    /// one buffered record per run at a time. Every run is re-verified
    /// end to end before the first record is yielded.
    pub fn merged(&self) -> Result<MergeSorted<RunReader>, String> {
        let mut runs = Vec::with_capacity(self.n_shards + 1);
        for run in 0..=self.n_shards {
            let path = self.dir.join(run_file_name(run));
            let reader = RunReader::verify_open(&path, &run_key(&self.spec, self.n_shards, run))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            runs.push(reader);
        }
        Ok(merge_sorted(runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec { kind: DatasetKind::UstcTfc, seed: 11, flows_per_class: 3 }
    }

    fn assert_records_eq(a: &[TraceRecord], b: &[TraceRecord]) {
        assert_eq!(a.len(), b.len(), "record counts differ");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.ts.to_bits(), y.ts.to_bits(), "ts differs at {i}");
            assert_eq!(x.frame, y.frame, "frame differs at {i}");
            assert_eq!(
                (x.class, x.flow_id, x.from_client),
                (y.class, y.flow_id, y.from_client),
                "labels differ at {i}"
            );
        }
    }

    #[test]
    fn shard_spans_partition_the_flows() {
        let plan = FlowPlan::new(&spec());
        for n_shards in [1, 2, 3, 7, 64, 1000] {
            let mut covered = Vec::new();
            for s in 0..n_shards {
                covered.extend(plan.shard_span(s, n_shards));
            }
            let want: Vec<usize> = (0..plan.n_flows()).collect();
            assert_eq!(covered, want, "n_shards={n_shards}");
        }
    }

    #[test]
    fn any_shard_count_merges_to_the_serial_trace() {
        let reference = spec().generate();
        for n_shards in [1usize, 4, 7] {
            let runs: Vec<_> = StreamingTrace::new(FlowPlan::new(&spec()), n_shards)
                .map(|s| s.records.into_iter())
                .collect();
            assert_eq!(runs.len(), n_shards + 1);
            let merged: Vec<TraceRecord> = merge_sorted(runs).collect();
            assert_records_eq(&merged, &reference.records);
        }
    }

    #[test]
    fn spurious_tally_matches_in_ram_injection() {
        // ISCX has 5% spurious — the streamed spurious run must be the
        // byte-for-byte tail the in-RAM inject produces.
        let s = DatasetSpec { kind: DatasetKind::IscxVpn, seed: 5, flows_per_class: 2 };
        let reference = s.generate();
        let runs: Vec<_> =
            StreamingTrace::new(FlowPlan::new(&s), 4).map(|s| s.records.into_iter()).collect();
        let merged: Vec<TraceRecord> = merge_sorted(runs).collect();
        assert_records_eq(&merged, &reference.records);
        assert!(merged.iter().any(|r| r.class == crate::trace::SPURIOUS_CLASS));
    }

    #[test]
    fn shard_dir_round_trips_and_counts() {
        let dir = std::env::temp_dir().join("debunk-sharddir-roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let sd = write_shard_dir(&dir, &spec(), 3).unwrap();
        let reference = spec().generate();
        assert_eq!(sd.n_records() as usize, reference.records.len());
        let merged: Vec<TraceRecord> = sd.merged().unwrap().collect();
        assert_records_eq(&merged, &reference.records);
        // Re-open validates and agrees.
        let re = ShardDir::open(&dir, &spec(), 3).unwrap();
        assert_eq!(re.n_records(), sd.n_records());
        // Discovery from headers alone.
        let disc = ShardDir::discover(&dir).unwrap();
        assert_eq!(disc.n_shards(), 3);
        assert_eq!(disc.spec().flows_per_class, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_shard_generation_is_byte_identical_to_serial() {
        let serial_dir = std::env::temp_dir().join("debunk-sharddir-gen-serial");
        std::fs::remove_dir_all(&serial_dir).ok();
        write_shard_dir(&serial_dir, &spec(), 5).unwrap();
        for threads in [2usize, 4, 16] {
            let par_dir = std::env::temp_dir().join(format!("debunk-sharddir-gen-t{threads}"));
            std::fs::remove_dir_all(&par_dir).ok();
            let sd = write_shard_dir_threads(&par_dir, &spec(), 5, threads).unwrap();
            assert_eq!(sd.n_shards(), 5);
            for run in 0..=5 {
                let name = run_file_name(run);
                assert_eq!(
                    std::fs::read(serial_dir.join(&name)).unwrap(),
                    std::fs::read(par_dir.join(&name)).unwrap(),
                    "{name} differs between serial and {threads}-thread generation"
                );
            }
            std::fs::remove_dir_all(&par_dir).ok();
        }
        std::fs::remove_dir_all(&serial_dir).ok();
    }

    #[test]
    fn corrupt_runs_are_refused_and_rebuilt_identically() {
        let dir = std::env::temp_dir().join("debunk-sharddir-corrupt");
        std::fs::remove_dir_all(&dir).ok();
        write_shard_dir(&dir, &spec(), 2).unwrap();
        let reference: Vec<TraceRecord> =
            ShardDir::open(&dir, &spec(), 2).unwrap().merged().unwrap().collect();
        let victim = dir.join(run_file_name(1));
        let good = std::fs::read(&victim).unwrap();

        // Every offset class: magic, version, key, count, record body,
        // checksum — plus truncation and deletion.
        let mut variants: Vec<Vec<u8>> = vec![
            good[..good.len() / 2].to_vec(), // truncated
            Vec::new(),                      // empty
        ];
        for off in [0usize, 5, 14, good.len() / 2, good.len() - 4] {
            let mut bad = good.clone();
            bad[off] ^= 0xff;
            variants.push(bad);
        }
        for (i, bad) in variants.iter().enumerate() {
            std::fs::write(&victim, bad).unwrap();
            assert!(
                ShardDir::open(&dir, &spec(), 2).is_err(),
                "variant {i} must be refused, not decoded"
            );
            let (sd, rebuilt) = ShardDir::ensure(&dir, &spec(), 2).unwrap();
            assert!(rebuilt, "variant {i} must trigger a rebuild");
            let merged: Vec<TraceRecord> = sd.merged().unwrap().collect();
            assert_records_eq(&merged, &reference);
        }

        // Wrong spec (different seed) is refused by the key check.
        let other = DatasetSpec { seed: 12, ..spec() };
        assert!(ShardDir::open(&dir, &other, 2).is_err());
        // Wrong shard count is refused too (different layout key).
        assert!(ShardDir::open(&dir, &spec(), 3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv64_separates_part_boundaries() {
        assert_ne!(fnv64(&[b"ab", b"c"]), fnv64(&[b"a", b"bc"]));
        assert_eq!(fnv64(&[b"ab", b"c"]), fnv64(&[b"ab", b"c"]));
    }
}
