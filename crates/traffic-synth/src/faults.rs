//! Fault injection: degrade a trace the way real capture points do —
//! packet drops, duplicates, reordering and corruption (the same four
//! knobs smoltcp's examples expose for robustness testing).
//!
//! Used to check that the pipeline (parsers, cleaning, reassembly,
//! classifiers) behaves sanely on imperfect captures, and as a
//! robustness ablation: how fast does classification accuracy decay
//! with capture loss?

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::Rng;

/// Fault-injection configuration (all probabilities per packet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped.
    pub drop: f64,
    /// Probability a packet is delivered twice.
    pub duplicate: f64,
    /// Probability a packet is delayed past its successors
    /// (local reordering).
    pub reorder: f64,
    /// Probability one random byte of the frame is flipped.
    pub corrupt: f64,
    /// Maximum extra delay for reordered packets (seconds).
    pub reorder_delay: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // smoltcp's suggested starting point: 15% drop/corrupt chances
        // are aggressive; we default to a milder capture-loss profile.
        Self { drop: 0.02, duplicate: 0.01, reorder: 0.02, corrupt: 0.005, reorder_delay: 0.05 }
    }
}

impl FaultConfig {
    /// A faultless configuration (identity injection).
    pub fn none() -> Self {
        Self { drop: 0.0, duplicate: 0.0, reorder: 0.0, corrupt: 0.0, reorder_delay: 0.0 }
    }

    /// The capture-loss profile used by the robustness ablation: one
    /// `level` knob scales all four faults with drops dominating
    /// (duplicate = level/4, reorder = level/2, corrupt = level/10),
    /// matching how loss manifests at real capture points. Shared by
    /// the `robustness` experiment and the fault-matrix tests so both
    /// sweep the same curve.
    pub fn capture_loss(level: f64) -> Self {
        Self {
            drop: level,
            duplicate: level / 4.0,
            reorder: level / 2.0,
            corrupt: level / 10.0,
            reorder_delay: 0.05,
        }
    }
}

/// Statistics of one injection run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped.
    pub dropped: usize,
    /// Packets duplicated.
    pub duplicated: usize,
    /// Packets reordered.
    pub reordered: usize,
    /// Packets corrupted.
    pub corrupted: usize,
}

/// Apply faults to a trace in place (records re-sorted by time).
pub fn inject_faults(trace: &mut Trace, cfg: FaultConfig, rng: &mut StdRng) -> FaultStats {
    let mut stats = FaultStats::default();
    let mut out = Vec::with_capacity(trace.records.len());
    for mut r in trace.records.drain(..) {
        if rng.gen_bool(cfg.drop) {
            stats.dropped += 1;
            continue;
        }
        if rng.gen_bool(cfg.corrupt) && !r.frame.is_empty() {
            let i = rng.gen_range(0..r.frame.len());
            r.frame[i] ^= 1 << rng.gen_range(0..8);
            stats.corrupted += 1;
        }
        if rng.gen_bool(cfg.reorder) {
            r.ts += rng.gen_range(0.0..cfg.reorder_delay.max(1e-9));
            stats.reordered += 1;
        }
        if rng.gen_bool(cfg.duplicate) {
            out.push(r.clone());
            stats.duplicated += 1;
        }
        out.push(r);
    }
    trace.records = out;
    trace.sort_by_time();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, DatasetSpec};
    use rand::SeedableRng;

    fn trace() -> Trace {
        DatasetSpec { kind: DatasetKind::UstcTfc, seed: 31, flows_per_class: 2 }.generate()
    }

    #[test]
    fn zero_faults_is_identity() {
        let mut t = trace();
        let n = t.records.len();
        let cfg = FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            reorder_delay: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let stats = inject_faults(&mut t, cfg, &mut rng);
        assert_eq!(stats, FaultStats::default());
        assert_eq!(t.records.len(), n);
    }

    #[test]
    fn drop_rate_approximately_respected() {
        let mut t = trace();
        let n = t.records.len() as f64;
        let cfg = FaultConfig {
            drop: 0.2,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            reorder_delay: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let stats = inject_faults(&mut t, cfg, &mut rng);
        let rate = stats.dropped as f64 / n;
        assert!((0.15..0.25).contains(&rate), "drop rate {rate}");
        assert_eq!(t.records.len(), (n as usize) - stats.dropped);
    }

    #[test]
    fn duplicates_increase_count() {
        let mut t = trace();
        let n = t.records.len();
        let cfg = FaultConfig {
            drop: 0.0,
            duplicate: 0.1,
            reorder: 0.0,
            corrupt: 0.0,
            reorder_delay: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let stats = inject_faults(&mut t, cfg, &mut rng);
        assert_eq!(t.records.len(), n + stats.duplicated);
        assert!(stats.duplicated > 0);
    }

    #[test]
    fn records_stay_time_sorted() {
        let mut t = trace();
        let mut rng = StdRng::seed_from_u64(4);
        inject_faults(&mut t, FaultConfig { reorder: 0.3, ..Default::default() }, &mut rng);
        for w in t.records.windows(2) {
            assert!(w[1].ts >= w[0].ts);
        }
    }

    #[test]
    fn pipeline_survives_corruption() {
        // Corrupted frames must not panic the parser or the cleaner;
        // broken packets are filtered, the rest classify normally.
        let mut t = trace();
        let cfg = FaultConfig { corrupt: 0.3, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let stats = inject_faults(&mut t, cfg, &mut rng);
        assert!(stats.corrupted > 0);
        for r in &t.records {
            let _ = net_packet::frame::ParsedFrame::parse(&r.frame); // must not panic
            let _ = net_packet::ident::identify(&r.frame);
        }
    }
}
