//! Labelled trace container and spurious-traffic injection.

use crate::flow::FlowPacket;
use net_packet::ethernet::MacAddr;
use net_packet::ipv4::Ipv4Addr;
use net_packet::pcap::{self, PcapPacket};
use net_packet::spurious;
use rand::rngs::StdRng;
use rand::Rng;

/// Metadata describing one class of the dataset.
#[derive(Debug, Clone)]
pub struct ClassMeta {
    /// Fine-grained class id (application / website index).
    pub class: u16,
    /// Human-readable class name.
    pub name: String,
    /// Service category index (for ISCX-VPN service task).
    pub service: u8,
    /// Whether the class runs over a VPN tunnel.
    pub is_vpn: bool,
    /// Whether the class is malware (USTC-TFC).
    pub is_malware: bool,
}

/// One labelled packet of a trace. `class = u16::MAX` marks spurious
/// traffic that carries no class label (ARP, DHCP, ...).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Timestamp (seconds from trace start).
    pub ts: f64,
    /// Raw Ethernet frame.
    pub frame: Vec<u8>,
    /// Fine-grained class label, or `u16::MAX` for spurious packets.
    pub class: u16,
    /// Flow index within the trace (spurious packets get `u32::MAX`).
    pub flow_id: u32,
    /// Direction: true if client→server.
    pub from_client: bool,
}

/// Label value marking spurious (unlabelled) traffic.
pub const SPURIOUS_CLASS: u16 = u16::MAX;

/// A complete labelled trace plus its class table.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Packets in chronological order.
    pub records: Vec<TraceRecord>,
    /// Per-class metadata, indexed by class id.
    pub classes: Vec<ClassMeta>,
}

impl Trace {
    /// Number of non-spurious packets.
    pub fn labelled_len(&self) -> usize {
        self.records.iter().filter(|r| r.class != SPURIOUS_CLASS).count()
    }

    /// Number of spurious packets.
    pub fn spurious_len(&self) -> usize {
        self.records.len() - self.labelled_len()
    }

    /// Append the packets of a synthesised flow under `class`/`flow_id`.
    pub fn push_flow(&mut self, class: u16, flow_id: u32, packets: Vec<FlowPacket>) {
        for p in packets {
            self.records.push(TraceRecord {
                ts: p.ts,
                frame: p.frame,
                class,
                flow_id,
                from_client: p.from_client,
            });
        }
    }

    /// Sort records chronologically (generation appends flow-by-flow).
    pub fn sort_by_time(&mut self) {
        self.records.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    }

    /// Inject spurious LAN traffic so that roughly `fraction` of the
    /// final trace is extraneous protocol chatter (paper: ISCX ≈ 5%,
    /// USTC ≈ 10%, CSTNET 0%).
    pub fn inject_spurious(&mut self, fraction: f64, rng: &mut StdRng) {
        if self.records.is_empty() {
            return;
        }
        let t_max = self.records.iter().map(|r| r.ts).fold(0.0f64, f64::max);
        let run = spurious_run(self.records.len(), fraction, t_max, rng);
        if run.is_empty() {
            return;
        }
        self.records.extend(run);
        self.sort_by_time();
    }

    /// Export to pcap bytes (inspectable with Wireshark/tcpdump).
    pub fn to_pcap(&self) -> Vec<u8> {
        let packets: Vec<PcapPacket> =
            self.records.iter().map(|r| PcapPacket::at(r.ts, r.frame.clone())).collect();
        pcap::write_all(&packets)
    }
}

/// Generate the spurious-traffic records for a trace of `labelled`
/// packets whose latest timestamp is `t_max`: exactly the records
/// [`Trace::inject_spurious`] appends, in generation order (unsorted).
///
/// Factored out of `inject_spurious` so the streaming generator
/// ([`crate::stream::StreamingTrace`]) can emit the same records as a
/// final run after all flow shards have been tallied — the spurious
/// count and time span depend on the whole labelled trace.
pub fn spurious_run(
    labelled: usize,
    fraction: f64,
    t_max: f64,
    rng: &mut StdRng,
) -> Vec<TraceRecord> {
    if fraction <= 0.0 || labelled == 0 {
        return Vec::new();
    }
    let n = ((labelled as f64) * fraction / (1.0 - fraction)).round() as usize;
    let mac = MacAddr([0x02, 0, 0, 0, 0, 0x77]);
    let host = Ipv4Addr::new(192, 168, 1, rng.gen_range(2..250));
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ts = rng.gen_range(0.0..t_max.max(1.0));
        let frame = match rng.gen_range(0..10) {
            0 => {
                spurious::arp_request(mac, host, Ipv4Addr::new(192, 168, 1, rng.gen_range(1..254)))
            }
            1 => spurious::dhcp_discover(mac, rng.gen()),
            2 => spurious::mdns_query(mac, host, "_companion-link._tcp.local"),
            3 => spurious::llmnr_query(mac, host, "workstation"),
            4 => spurious::nbns_query(mac, host, "WORKGROUP"),
            5 => spurious::ssdp_msearch(mac, host),
            6 => spurious::ntp_request(mac, host, Ipv4Addr::new(17, 253, 14, 125)),
            7 => spurious::stun_binding(mac, host, Ipv4Addr::new(74, 125, 250, 129)),
            8 => spurious::igmp_report(mac, host, Ipv4Addr::new(224, 0, 0, 251)),
            _ => spurious::icmp_ping(mac, host, Ipv4Addr::new(8, 8, 8, 8), rng.gen()),
        };
        out.push(TraceRecord {
            ts,
            frame,
            class: SPURIOUS_CLASS,
            flow_id: u32::MAX,
            from_client: true,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_trace() -> Trace {
        let mut t = Trace::default();
        let prof =
            crate::profile::AppProfile::derive(1, 0, 4, crate::profile::TransportKind::TlsTcp);
        let mut rng = StdRng::seed_from_u64(1);
        let f = crate::flow::synth_flow(&prof, Ipv4Addr::new(10, 0, 0, 9), 0.0, &mut rng, false);
        t.push_flow(0, 0, f.packets);
        t
    }

    #[test]
    fn spurious_fraction_approximate() {
        let mut t = tiny_trace();
        let before = t.records.len();
        let mut rng = StdRng::seed_from_u64(2);
        t.inject_spurious(0.10, &mut rng);
        let added = t.records.len() - before;
        let frac = added as f64 / t.records.len() as f64;
        assert!((0.05..0.16).contains(&frac), "got fraction {frac}");
        assert_eq!(t.spurious_len(), added);
    }

    #[test]
    fn records_sorted_after_injection() {
        let mut t = tiny_trace();
        let mut rng = StdRng::seed_from_u64(3);
        t.inject_spurious(0.2, &mut rng);
        for w in t.records.windows(2) {
            assert!(w[1].ts >= w[0].ts);
        }
    }

    #[test]
    fn pcap_export_round_trips() {
        let t = tiny_trace();
        let bytes = t.to_pcap();
        let back = net_packet::pcap::read_all(&bytes[..]).unwrap();
        assert_eq!(back.len(), t.records.len());
        assert_eq!(back[0].data, t.records[0].frame);
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut t = tiny_trace();
        let n = t.records.len();
        let mut rng = StdRng::seed_from_u64(4);
        t.inject_spurious(0.0, &mut rng);
        assert_eq!(t.records.len(), n);
    }
}
