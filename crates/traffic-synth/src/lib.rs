//! # traffic-synth
//!
//! Deterministic synthetic encrypted-traffic generator reproducing the
//! *structure* of the three public datasets used by the paper
//! (ISCX-VPN, USTC-TFC, CSTNET-TLS1.3):
//!
//! - real Ethernet/IPv4/TCP/UDP frames with valid checksums;
//! - TCP flows with proper three-way handshakes, random initial
//!   SeqNo/AckNo, monotone sequence progression and RFC 7323
//!   timestamps — the *implicit flow identifiers* of §4.1;
//! - per-class application profiles that put bounded, realistic signal
//!   in the headers (server address pools, packet-size and timing
//!   distributions, TTL, window, MSS) and **zero** signal in the
//!   payload (encrypted payloads are PRNG bytes);
//! - a configurable fraction of spurious LAN traffic (ARP, DHCP, mDNS,
//!   …) for the cleaning stage to remove (Table 13).
//!
//! Everything is seeded: the same seed yields byte-identical traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod flow;
pub mod profile;
pub mod recipes;
pub mod stream;
pub mod trace;

pub use profile::AppProfile;
pub use recipes::{DatasetKind, DatasetSpec};
pub use trace::{ClassMeta, Trace, TraceRecord};
