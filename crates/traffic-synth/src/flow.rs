//! Flow-level synthesis: full TCP connections (handshake, data,
//! teardown) and UDP exchanges with realistic header dynamics.
//!
//! The crucial properties for the paper's argument:
//!
//! - Initial sequence numbers, acknowledgement numbers and TCP
//!   timestamp bases are drawn **randomly per flow**, then progress
//!   deterministically — so all packets of a flow live in a small
//!   neighbourhood of a ~64-bit random space (the implicit flow ID).
//! - Payload bytes come from a per-flow PRNG: independent of the class
//!   (a stand-in for semantically-void ciphertext).

use crate::profile::{AppProfile, TransportKind};
use net_packet::builder::FrameBuilder;
use net_packet::ethernet::MacAddr;
use net_packet::ipv4::Ipv4Addr;
use net_packet::tcp::{TcpFlags, TcpOption};
use net_packet::tls;
use rand::rngs::StdRng;
use rand::Rng;

/// One synthesised packet of a flow.
#[derive(Debug, Clone)]
pub struct FlowPacket {
    /// Timestamp in seconds from trace start.
    pub ts: f64,
    /// Raw Ethernet frame bytes.
    pub frame: Vec<u8>,
    /// True if sent by the client endpoint.
    pub from_client: bool,
}

/// A complete synthesised flow.
#[derive(Debug, Clone)]
pub struct SynthFlow {
    /// Packets in chronological order.
    pub packets: Vec<FlowPacket>,
    /// Client address of the flow.
    pub client: Ipv4Addr,
    /// Server address of the flow.
    pub server: Ipv4Addr,
    /// Client (ephemeral) port.
    pub client_port: u16,
    /// Server port.
    pub server_port: u16,
}

fn gauss(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    // Box-Muller; two uniforms per sample keeps StdRng deterministic.
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn payload_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

/// Synthesise one flow of `profile` starting at `start_ts`.
///
/// `client` is the local endpoint; `sni_stripped` removes handshake
/// and ClientHello packets (the CSTNET-TLS1.3 preparation).
pub fn synth_flow(
    profile: &AppProfile,
    client: Ipv4Addr,
    start_ts: f64,
    rng: &mut StdRng,
    sni_stripped: bool,
) -> SynthFlow {
    let server = profile.server_pool[rng.gen_range(0..profile.server_pool.len())];
    let client_port: u16 = rng.gen_range(32768..61000);
    let n_data =
        (gauss(rng, profile.flow_len_mean, profile.flow_len_mean * 0.4).max(2.0).round()) as usize;
    match profile.transport {
        TransportKind::Udp => {
            synth_udp(profile, client, server, client_port, start_ts, n_data, rng)
        }
        _ => synth_tcp(profile, client, server, client_port, start_ts, n_data, rng, sni_stripped),
    }
}

#[allow(clippy::too_many_arguments)]
fn synth_tcp(
    profile: &AppProfile,
    client: Ipv4Addr,
    server: Ipv4Addr,
    client_port: u16,
    start_ts: f64,
    n_data: usize,
    rng: &mut StdRng,
    sni_stripped: bool,
) -> SynthFlow {
    // Random ISNs and timestamp bases: the implicit flow identifiers.
    let mut c_seq: u32 = rng.gen();
    let mut s_seq: u32 = rng.gen();
    let c_ts_base: u32 = rng.gen();
    let s_ts_base: u32 = rng.gen();
    let mut packets = Vec::with_capacity(n_data + 8);
    let mut now = start_ts;
    let clock = |now: f64, base: u32| base.wrapping_add((now * 1000.0) as u32);

    // --- three-way handshake ------------------------------------------------
    let hs_opts_c = vec![
        TcpOption::Mss(1460),
        TcpOption::SackPermitted,
        TcpOption::Timestamps(clock(now, c_ts_base), 0),
        TcpOption::WindowScale(7),
    ];
    let hs_opts_s = vec![
        TcpOption::Mss(profile.server_mss),
        TcpOption::SackPermitted,
        TcpOption::Timestamps(clock(now, s_ts_base), clock(now, c_ts_base)),
        TcpOption::WindowScale(profile.server_wscale),
    ];
    // SYN
    let syn = build_tcp(
        profile,
        client,
        server,
        client_port,
        true,
        TcpFlags::SYN,
        c_seq,
        0,
        hs_opts_c,
        vec![],
        rng,
    );
    packets.push(FlowPacket { ts: now, frame: syn, from_client: true });
    c_seq = c_seq.wrapping_add(1);
    now += rng.gen_range(0.01..0.08); // RTT/2
                                      // SYN-ACK
    let synack = build_tcp(
        profile,
        client,
        server,
        client_port,
        false,
        TcpFlags::SYN | TcpFlags::ACK,
        s_seq,
        c_seq,
        hs_opts_s,
        vec![],
        rng,
    );
    packets.push(FlowPacket { ts: now, frame: synack, from_client: false });
    s_seq = s_seq.wrapping_add(1);
    now += rng.gen_range(0.01..0.08);
    // ACK
    let ts_opt = |now: f64, from_client: bool| {
        if from_client {
            TcpOption::Timestamps(clock(now, c_ts_base), clock(now, s_ts_base))
        } else {
            TcpOption::Timestamps(clock(now, s_ts_base), clock(now, c_ts_base))
        }
    };
    let ack_pkt = build_tcp(
        profile,
        client,
        server,
        client_port,
        true,
        TcpFlags::ACK,
        c_seq,
        s_seq,
        vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, true)],
        vec![],
        rng,
    );
    packets.push(FlowPacket { ts: now, frame: ack_pkt, from_client: true });

    // --- TLS handshake records (TlsTcp only) --------------------------------
    if profile.transport == TransportKind::TlsTcp {
        let mut random = [0u8; 32];
        rng.fill(&mut random);
        let hello = tls::emit_client_hello(random, profile.sni.as_deref());
        now += rng.gen_range(0.001..0.01);
        let f = build_tcp(
            profile,
            client,
            server,
            client_port,
            true,
            TcpFlags::PSH | TcpFlags::ACK,
            c_seq,
            s_seq,
            vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, true)],
            hello.clone(),
            rng,
        );
        c_seq = c_seq.wrapping_add(hello.len() as u32);
        packets.push(FlowPacket { ts: now, frame: f, from_client: true });
        // ServerHello + encrypted extensions as one opaque handshake record.
        now += rng.gen_range(0.01..0.06);
        let sh_len = rng.gen_range(90..900);
        let sh_body = payload_bytes(rng, sh_len);
        let sh = tls::emit_record(tls::ContentType::Handshake, 0x0303, &sh_body);
        let f = build_tcp(
            profile,
            client,
            server,
            client_port,
            false,
            TcpFlags::PSH | TcpFlags::ACK,
            s_seq,
            c_seq,
            vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, false)],
            sh.clone(),
            rng,
        );
        s_seq = s_seq.wrapping_add(sh.len() as u32);
        packets.push(FlowPacket { ts: now, frame: f, from_client: false });
    }

    // --- application data ----------------------------------------------------
    for _ in 0..n_data {
        now += gauss(rng, profile.iat_mean, profile.iat_mean * 0.5).max(1e-4);
        let from_client = !rng.gen_bool(profile.downstream_ratio);
        let (mean, std) = if from_client {
            (profile.client_payload_mean, profile.client_payload_std)
        } else {
            (profile.server_payload_mean, profile.server_payload_std)
        };
        let len = gauss(rng, mean, std).clamp(16.0, 1400.0) as usize;
        let body = payload_bytes(rng, len);
        let payload = if profile.transport == TransportKind::TlsTcp {
            tls::emit_application_data(&body)
        } else {
            body
        };
        let (seq, ack) = if from_client { (c_seq, s_seq) } else { (s_seq, c_seq) };
        let f = build_tcp(
            profile,
            client,
            server,
            client_port,
            from_client,
            TcpFlags::PSH | TcpFlags::ACK,
            seq,
            ack,
            vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, from_client)],
            payload.clone(),
            rng,
        );
        if from_client {
            c_seq = c_seq.wrapping_add(payload.len() as u32);
        } else {
            s_seq = s_seq.wrapping_add(payload.len() as u32);
        }
        packets.push(FlowPacket { ts: now, frame: f, from_client });
        // Pure ACK from the other side with some probability.
        if rng.gen_bool(0.45) {
            now += rng.gen_range(0.0005..0.02);
            let (seq, ack) = if from_client { (s_seq, c_seq) } else { (c_seq, s_seq) };
            let f = build_tcp(
                profile,
                client,
                server,
                client_port,
                !from_client,
                TcpFlags::ACK,
                seq,
                ack,
                vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, !from_client)],
                vec![],
                rng,
            );
            packets.push(FlowPacket { ts: now, frame: f, from_client: !from_client });
        }
    }

    // --- teardown -------------------------------------------------------------
    now += rng.gen_range(0.001..0.05);
    let fin = build_tcp(
        profile,
        client,
        server,
        client_port,
        true,
        TcpFlags::FIN | TcpFlags::ACK,
        c_seq,
        s_seq,
        vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, true)],
        vec![],
        rng,
    );
    packets.push(FlowPacket { ts: now, frame: fin, from_client: true });
    now += rng.gen_range(0.001..0.05);
    let finack = build_tcp(
        profile,
        client,
        server,
        client_port,
        false,
        TcpFlags::FIN | TcpFlags::ACK,
        s_seq,
        c_seq.wrapping_add(1),
        vec![TcpOption::Nop, TcpOption::Nop, ts_opt(now, false)],
        vec![],
        rng,
    );
    packets.push(FlowPacket { ts: now, frame: finack, from_client: false });

    let packets = if sni_stripped {
        // Drop the 3-way handshake and the client TLS Hello, exactly as
        // the CSTNET-TLS1.3 public release does.
        packets
            .into_iter()
            .skip(if profile.transport == TransportKind::TlsTcp { 4 } else { 3 })
            .collect()
    } else {
        packets
    };
    SynthFlow { packets, client, server, client_port, server_port: profile.server_port }
}

#[allow(clippy::too_many_arguments)]
fn build_tcp(
    profile: &AppProfile,
    client: Ipv4Addr,
    server: Ipv4Addr,
    client_port: u16,
    from_client: bool,
    flags: TcpFlags,
    seq: u32,
    ack: u32,
    options: Vec<TcpOption>,
    payload: Vec<u8>,
    rng: &mut StdRng,
) -> Vec<u8> {
    let client_mac = MacAddr([0x02, 0, 0, 0, 0, 0x01]);
    let server_mac = MacAddr([0x02, 0, 0, 0, 0, 0x02]);
    let mut b = FrameBuilder::tcp_ipv4_default();
    b = if from_client {
        b.macs(client_mac, server_mac)
            .src(client, client_port)
            .dst(server, profile.server_port)
            .ttl(profile.client_ttl)
            .window(64240)
    } else {
        b.macs(server_mac, client_mac)
            .src(server, profile.server_port)
            .dst(client, client_port)
            .ttl(profile.server_ttl)
            .window(profile.server_window)
    };
    b = b.seq_ack(seq, ack).flags(flags).tos(profile.tos).identification(rng.gen());
    for o in options {
        b = b.option(o);
    }
    b.payload(payload).build()
}

fn synth_udp(
    profile: &AppProfile,
    client: Ipv4Addr,
    server: Ipv4Addr,
    client_port: u16,
    start_ts: f64,
    n_data: usize,
    rng: &mut StdRng,
) -> SynthFlow {
    let client_mac = MacAddr([0x02, 0, 0, 0, 0, 0x01]);
    let server_mac = MacAddr([0x02, 0, 0, 0, 0, 0x02]);
    let mut packets = Vec::with_capacity(n_data);
    let mut now = start_ts;
    for i in 0..n_data.max(2) {
        now += gauss(rng, profile.iat_mean, profile.iat_mean * 0.4).max(1e-4);
        let from_client = if i == 0 { true } else { !rng.gen_bool(profile.downstream_ratio) };
        let (mean, std) = if from_client {
            (profile.client_payload_mean, profile.client_payload_std)
        } else {
            (profile.server_payload_mean, profile.server_payload_std)
        };
        let len = gauss(rng, mean, std).clamp(16.0, 1400.0) as usize;
        let mut b = FrameBuilder::udp_ipv4_default();
        b = if from_client {
            b.macs(client_mac, server_mac)
                .src(client, client_port)
                .dst(server, profile.server_port)
                .ttl(profile.client_ttl)
        } else {
            b.macs(server_mac, client_mac)
                .src(server, profile.server_port)
                .dst(client, client_port)
                .ttl(profile.server_ttl)
        };
        let frame =
            b.tos(profile.tos).identification(rng.gen()).payload(payload_bytes(rng, len)).build();
        packets.push(FlowPacket { ts: now, frame, from_client });
    }
    SynthFlow { packets, client, server, client_port, server_port: profile.server_port }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_packet::frame::{ParsedFrame, TransportInfo};
    use rand::SeedableRng;

    fn profile(t: TransportKind) -> AppProfile {
        AppProfile::derive(11, 0, 8, t)
    }

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 1, 77)
    }

    #[test]
    fn tcp_flow_has_handshake_and_teardown() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = synth_flow(&profile(TransportKind::TlsTcp), client(), 0.0, &mut rng, false);
        let first = ParsedFrame::parse(&f.packets[0].frame).unwrap();
        match first.transport {
            TransportInfo::Tcp { flags, .. } => assert_eq!(flags, 0x02, "first packet must be SYN"),
            _ => panic!("expected TCP"),
        }
        let last = ParsedFrame::parse(&f.packets.last().unwrap().frame).unwrap();
        match last.transport {
            TransportInfo::Tcp { flags, .. } => {
                assert_ne!(flags & 0x01, 0, "last packet must carry FIN")
            }
            _ => panic!("expected TCP"),
        }
    }

    #[test]
    fn all_packets_share_flow_key() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = synth_flow(&profile(TransportKind::TlsTcp), client(), 0.0, &mut rng, false);
        let keys: std::collections::HashSet<_> = f
            .packets
            .iter()
            .map(|p| ParsedFrame::parse(&p.frame).unwrap().flow_key().unwrap())
            .collect();
        assert_eq!(keys.len(), 1, "bi-flow must map to one canonical key");
    }

    #[test]
    fn seq_numbers_cluster_within_flow() {
        let mut rng = StdRng::seed_from_u64(6);
        let f = synth_flow(&profile(TransportKind::TlsTcp), client(), 0.0, &mut rng, false);
        let mut client_seqs = Vec::new();
        for p in &f.packets {
            if let TransportInfo::Tcp { seq, .. } = ParsedFrame::parse(&p.frame).unwrap().transport
            {
                if p.from_client {
                    client_seqs.push(seq);
                }
            }
        }
        let min = *client_seqs.iter().min().unwrap();
        let max = *client_seqs.iter().max().unwrap();
        assert!(
            max.wrapping_sub(min) < 1_000_000,
            "client seq range stays tight (implicit flow ID)"
        );
    }

    #[test]
    fn timestamps_monotone_per_direction() {
        let mut rng = StdRng::seed_from_u64(8);
        let f = synth_flow(&profile(TransportKind::TlsTcp), client(), 0.0, &mut rng, false);
        let mut prev: Option<u32> = None;
        for p in f.packets.iter().filter(|p| p.from_client) {
            if let TransportInfo::Tcp { timestamps: Some((v, _)), .. } =
                ParsedFrame::parse(&p.frame).unwrap().transport
            {
                if let Some(pv) = prev {
                    assert!(v.wrapping_sub(pv) < 1_000_000, "TSval advances monotonically");
                }
                prev = Some(v);
            }
        }
        assert!(prev.is_some(), "client packets carry timestamps");
    }

    #[test]
    fn different_flows_have_different_isns() {
        let p = profile(TransportKind::TlsTcp);
        let mut rng = StdRng::seed_from_u64(9);
        let f1 = synth_flow(&p, client(), 0.0, &mut rng, false);
        let f2 = synth_flow(&p, client(), 0.0, &mut rng, false);
        let seq_of =
            |f: &SynthFlow| match ParsedFrame::parse(&f.packets[0].frame).unwrap().transport {
                TransportInfo::Tcp { seq, .. } => seq,
                _ => panic!("expected TCP"),
            };
        assert_ne!(seq_of(&f1), seq_of(&f2));
    }

    #[test]
    fn sni_present_then_stripped() {
        let mut p = profile(TransportKind::TlsTcp);
        p.sni = Some("www.site042.example".into());
        let mut rng = StdRng::seed_from_u64(10);
        let full = synth_flow(&p, client(), 0.0, &mut rng, false);
        let has_sni = |f: &SynthFlow| {
            f.packets.iter().any(|pk| {
                let parsed = ParsedFrame::parse(&pk.frame).unwrap();
                let pl = parsed.payload_of(&pk.frame);
                net_packet::tls::TlsRecord::new_checked(pl).ok().and_then(|r| r.sni()).is_some()
            })
        };
        assert!(has_sni(&full));
        let mut rng = StdRng::seed_from_u64(10);
        let stripped = synth_flow(&p, client(), 0.0, &mut rng, true);
        assert!(!has_sni(&stripped));
        // Stripping also removes the handshake.
        let first = ParsedFrame::parse(&stripped.packets[0].frame).unwrap();
        match first.transport {
            TransportInfo::Tcp { flags, .. } => {
                assert_eq!(flags & 0x02, 0, "no SYN after stripping")
            }
            _ => panic!("expected TCP"),
        }
    }

    #[test]
    fn udp_flow_parses_and_shares_key() {
        let mut rng = StdRng::seed_from_u64(12);
        let f = synth_flow(&profile(TransportKind::Udp), client(), 0.0, &mut rng, false);
        assert!(f.packets.len() >= 2);
        let keys: std::collections::HashSet<_> = f
            .packets
            .iter()
            .map(|p| ParsedFrame::parse(&p.frame).unwrap().flow_key().unwrap())
            .collect();
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn timestamps_increase_along_flow() {
        let mut rng = StdRng::seed_from_u64(13);
        let f = synth_flow(&profile(TransportKind::RawTcp), client(), 5.0, &mut rng, false);
        for w in f.packets.windows(2) {
            assert!(w[1].ts >= w[0].ts);
        }
        assert!(f.packets[0].ts >= 5.0);
    }
}
