//! Flow-level experiments (§6.2, Table 9): classify whole flows
//! (first five packets) rather than single packets. Pcap-Encoder,
//! being packet-level, uses majority voting over its per-packet
//! predictions (frozen only), exactly as the paper describes.

use crate::experiment::{CellConfig, CellResult};
use crate::metrics::{accuracy, macro_f1};
use crate::pipeline::PreparedTask;
use dataset::record::PacketRecord;
use encoders::model::{EncoderModel, ModelKind};
use nn::{Mlp, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// A flow sample: up to five packet indices plus the task label.
#[derive(Debug, Clone)]
struct FlowSample {
    packets: Vec<usize>,
    label: u16,
}

/// Collect flows with ≥ `min_packets` packets and split per-flow into
/// train/test. `selector` picks which packets represent the flow:
/// first-five for most models, median bursts for netFound (§6.2).
fn flow_samples(
    prep: &PreparedTask,
    min_packets: usize,
    selector: &dyn Fn(&[usize]) -> Vec<usize>,
) -> Vec<FlowSample> {
    prep.data
        .flows()
        .into_iter()
        .filter(|(_, idxs)| idxs.len() >= min_packets)
        .map(|(_, idxs)| {
            let label = prep.task.label_of(&prep.data, &prep.data.records[idxs[0]]);
            FlowSample { packets: selector(&idxs), label }
        })
        .collect()
}

/// First five packets — the input the paper uses for YaTC, NetMamba
/// and TrafficFormer (§6.2).
fn first_five(idxs: &[usize]) -> Vec<usize> {
    idxs.iter().copied().take(5).collect()
}

/// netFound's selection (§6.2): up to 12 median bursts, up to 6
/// packets around each burst's median packet.
fn netfound_packets(prep: &PreparedTask, idxs: &[usize]) -> Vec<usize> {
    let bursts = dataset::burst::segment_flow(&prep.data, idxs, 1.0);
    let sel = dataset::burst::netfound_selection(&bursts, 12, 6);
    let flat: Vec<usize> = sel.into_iter().flatten().collect();
    if flat.is_empty() {
        first_five(idxs)
    } else {
        flat
    }
}

type PacketSelector<'a> = Box<dyn Fn(&[usize]) -> Vec<usize> + 'a>;

/// The paper's per-model flow input selection.
fn selector_for(kind: ModelKind, prep: &PreparedTask) -> PacketSelector<'_> {
    if kind == ModelKind::NetFound {
        Box::new(move |idxs| netfound_packets(prep, idxs))
    } else {
        Box::new(first_five)
    }
}

fn balanced_flow_split(
    flows: &[FlowSample],
    train_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_label: HashMap<u16, Vec<usize>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        by_label.entry(f.label).or_default().push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut labels: Vec<_> = by_label.into_iter().collect();
    labels.sort_by_key(|(l, _)| *l);
    // First split per class, then balance the training side by
    // undersampling to the minority class (§6.2).
    let mut per_class_train: Vec<Vec<usize>> = Vec::new();
    for (_, mut idxs) in labels {
        idxs.shuffle(&mut rng);
        let cut = (((idxs.len() as f64) * train_frac).round() as usize)
            .clamp(1, idxs.len().saturating_sub(1).max(1));
        per_class_train.push(idxs[..cut].to_vec());
        test.extend_from_slice(&idxs[cut..]);
    }
    let min = per_class_train.iter().map(Vec::len).min().unwrap_or(0);
    for mut idxs in per_class_train {
        idxs.shuffle(&mut rng);
        idxs.truncate(min);
        train.extend(idxs);
    }
    (train, test)
}

/// Run one flow-level cell for a flow embedder (not Pcap-Encoder).
pub fn run_flow_cell(
    prep: &PreparedTask,
    encoder: &EncoderModel,
    frozen: bool,
    cfg: &CellConfig,
) -> CellResult {
    assert_ne!(
        encoder.kind,
        ModelKind::PcapEncoder,
        "use run_flow_cell_majority_vote for Pcap-Encoder"
    );
    let selector = selector_for(encoder.kind, prep);
    let flows = flow_samples(prep, 5, &selector);
    let (train, test) = balanced_flow_split(&flows, cfg.train_frac, cfg.seed);
    let n_classes = prep.task.n_classes();
    let gather = |ids: &[usize]| -> (Vec<Vec<&PacketRecord>>, Vec<u16>) {
        let recs = ids
            .iter()
            .map(|&i| flows[i].packets.iter().map(|&p| &prep.data.records[p]).collect())
            .collect();
        let labels = ids.iter().map(|&i| flows[i].label).collect();
        (recs, labels)
    };
    let (train_flows, train_labels) = gather(&train);
    let (test_flows, test_labels) = gather(&test);

    let mut folds_out = Vec::new();
    let mut train_secs = 0.0;
    let mut infer_secs = 0.0;
    let fold_assign = dataset::split::kfold(
        &(0..train_flows.len()).collect::<Vec<_>>(),
        cfg.kfolds,
        cfg.seed ^ 0x3f,
    );
    for (fold_i, (fold_train, _)) in fold_assign.into_iter().enumerate() {
        let fold_seed = cfg.seed.wrapping_add(fold_i as u64);
        let t0 = Instant::now();
        let (head, enc, standardizer) = if frozen {
            let batch: Vec<Vec<&PacketRecord>> =
                fold_train.iter().map(|&i| train_flows[i].clone()).collect();
            let labels: Vec<u16> = fold_train.iter().map(|&i| train_labels[i]).collect();
            let mut x = encoder.encode_flows(&batch);
            let standardizer = crate::standardize::Standardizer::fit(&x);
            standardizer.apply(&mut x);
            let mut head = Mlp::new(&[encoder.dim(), cfg.head_hidden, n_classes], fold_seed);
            head.fit(&x, &labels, cfg.frozen_epochs, cfg.batch, cfg.lr, fold_seed ^ 1);
            (head, encoder.clone(), Some(standardizer))
        } else {
            let mut enc = encoder.clone();
            let lr_enc = cfg.lr_encoder * (64.0 / enc.dim() as f32).min(1.0);
            let mut head = Mlp::new(&[enc.dim(), cfg.head_hidden, n_classes], fold_seed);
            let mut rng = StdRng::seed_from_u64(fold_seed ^ 2);
            let mut order: Vec<usize> = fold_train.clone();
            let mut pooled = Tensor::default();
            let mut d = Tensor::default();
            for _ in 0..cfg.unfrozen_epochs {
                order.shuffle(&mut rng);
                for chunk in order.chunks(cfg.batch) {
                    let tokens: Vec<Vec<u32>> =
                        chunk.iter().map(|&i| enc.tokenize_flow(&train_flows[i])).collect();
                    let labels: Vec<u16> = chunk.iter().map(|&i| train_labels[i]).collect();
                    enc.forward_tokens_into(&tokens, &mut pooled);
                    head.train_batch_into(&pooled, &labels, cfg.lr, &mut d);
                    enc.backward(&d, lr_enc);
                }
            }
            (head, enc, None)
        };
        train_secs += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut x_test = enc.encode_flows(&test_flows);
        if let Some(s) = &standardizer {
            s.apply(&mut x_test);
        }
        let preds = head.predict(&x_test);
        infer_secs += t1.elapsed().as_secs_f64();
        folds_out.push((accuracy(&preds, &test_labels), macro_f1(&preds, &test_labels, n_classes)));
    }
    let k = folds_out.len().max(1) as f64;
    CellResult {
        accuracy: folds_out.iter().map(|(a, _)| a).sum::<f64>() / k,
        macro_f1: folds_out.iter().map(|(_, f)| f).sum::<f64>() / k,
        train_secs,
        infer_secs,
        folds: folds_out,
    }
}

/// Pcap-Encoder's flow classification: train its packet-level frozen
/// classifier on the training flows' packets, then majority-vote the
/// first five packets of each test flow (§6.2).
pub fn run_flow_cell_majority_vote(
    prep: &PreparedTask,
    encoder: &EncoderModel,
    cfg: &CellConfig,
) -> CellResult {
    let flows = flow_samples(prep, 5, &|idxs: &[usize]| first_five(idxs));
    let (train, test) = balanced_flow_split(&flows, cfg.train_frac, cfg.seed);
    let n_classes = prep.task.n_classes();
    let train_pkts: Vec<&PacketRecord> = train
        .iter()
        .flat_map(|&i| flows[i].packets.iter().map(|&p| &prep.data.records[p]))
        .collect();
    let train_labels: Vec<u16> = train
        .iter()
        .flat_map(|&i| std::iter::repeat_n(flows[i].label, flows[i].packets.len()))
        .collect();
    let t0 = Instant::now();
    let mut x = encoder.encode_packets(&train_pkts);
    let standardizer = crate::standardize::Standardizer::fit(&x);
    standardizer.apply(&mut x);
    let mut head = Mlp::new(&[encoder.dim(), cfg.head_hidden, n_classes], cfg.seed);
    head.fit(&x, &train_labels, cfg.frozen_epochs, cfg.batch, cfg.lr, cfg.seed ^ 1);
    let train_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut preds = Vec::with_capacity(test.len());
    let mut truth = Vec::with_capacity(test.len());
    for &i in &test {
        let recs: Vec<&PacketRecord> =
            flows[i].packets.iter().map(|&p| &prep.data.records[p]).collect();
        let mut x = encoder.encode_packets(&recs);
        standardizer.apply(&mut x);
        let votes = head.predict(&x);
        let mut counts: HashMap<u16, u32> = HashMap::new();
        for v in votes {
            *counts.entry(v).or_default() += 1;
        }
        let winner = counts.into_iter().max_by_key(|(_, c)| *c).map(|(l, _)| l).unwrap_or(0);
        preds.push(winner);
        truth.push(flows[i].label);
    }
    let infer_secs = t1.elapsed().as_secs_f64();
    let acc = accuracy(&preds, &truth);
    let f1 = macro_f1(&preds, &truth, n_classes);
    CellResult { accuracy: acc, macro_f1: f1, train_secs, infer_secs, folds: vec![(acc, f1)] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::Task;

    fn tiny_cfg() -> CellConfig {
        CellConfig { frozen_epochs: 6, unfrozen_epochs: 3, kfolds: 2, ..Default::default() }
    }

    #[test]
    fn flow_cell_runs() {
        let prep = PreparedTask::build(Task::UstcBinary, 9, 0.15);
        let enc = EncoderModel::new(ModelKind::YaTc, 1);
        let cell = run_flow_cell(&prep, &enc, true, &tiny_cfg());
        assert!((0.0..=1.0).contains(&cell.accuracy));
        assert!(cell.macro_f1 <= 1.0);
    }

    #[test]
    fn majority_vote_runs() {
        let prep = PreparedTask::build(Task::UstcBinary, 10, 0.15);
        let enc = EncoderModel::new(ModelKind::PcapEncoder, 2);
        let cell = run_flow_cell_majority_vote(&prep, &enc, &tiny_cfg());
        assert!((0.0..=1.0).contains(&cell.accuracy));
    }

    #[test]
    #[should_panic(expected = "majority_vote")]
    fn flow_cell_rejects_pcap_encoder() {
        let prep = PreparedTask::build(Task::UstcBinary, 11, 0.1);
        let enc = EncoderModel::new(ModelKind::PcapEncoder, 3);
        let _ = run_flow_cell(&prep, &enc, true, &tiny_cfg());
    }

    #[test]
    fn netfound_selector_uses_bursts() {
        let prep = PreparedTask::build(Task::UstcBinary, 13, 0.15);
        let (_, idxs) = prep.data.flows().into_iter().max_by_key(|(_, v)| v.len()).unwrap();
        let sel = netfound_packets(&prep, &idxs);
        assert!(!sel.is_empty());
        assert!(sel.len() <= 72, "netFound max input is 12 bursts x 6 packets");
        let set: std::collections::HashSet<usize> = idxs.iter().copied().collect();
        assert!(sel.iter().all(|i| set.contains(i)));
    }

    #[test]
    fn flow_split_keeps_classes_in_both() {
        let prep = PreparedTask::build(Task::UstcBinary, 12, 0.15);
        let flows = flow_samples(&prep, 5, &|idxs: &[usize]| first_five(idxs));
        let (train, test) = balanced_flow_split(&flows, 0.75, 1);
        let tl: std::collections::HashSet<u16> = train.iter().map(|&i| flows[i].label).collect();
        let sl: std::collections::HashSet<u16> = test.iter().map(|&i| flows[i].label).collect();
        assert_eq!(tl.len(), 2);
        assert_eq!(sl.len(), 2);
        // training side balanced
        let c0 = train.iter().filter(|&&i| flows[i].label == 0).count();
        let c1 = train.iter().filter(|&&i| flows[i].label == 1).count();
        assert_eq!(c0, c1);
    }
}
