//! Shallow baselines over Table-12 features (Table 8, Fig. 5) plus the
//! MLP baseline row, run under the same split/balance protocol as the
//! encoders.

use crate::experiment::{CellConfig, SplitPolicy};
use crate::metrics::{accuracy, macro_f1};
use crate::pipeline::PreparedTask;
use dataset::record::PacketRecord;
use dataset::split::{balanced_undersample, stratified_sample, subsample};
use nn::{Mlp, Tensor};
use shallow::features::{FeatureConfig, N_FEATURES};
use shallow::forest::{ForestParams, RandomForest};
use shallow::gbdt::{GbdtParams, GradientBoosting, GrowthPolicy};
use std::time::Instant;

/// Which shallow model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShallowModel {
    /// Random forest.
    Rf,
    /// Depth-wise gradient boosting ("XGBoost-like").
    XgbLike,
    /// Leaf-wise gradient boosting ("LightGBM-like").
    LgbmLike,
    /// 2-layer MLP on the same features.
    Mlp,
}

impl ShallowModel {
    /// All four baselines in Table-8 order.
    pub const ALL: [ShallowModel; 4] =
        [ShallowModel::Rf, ShallowModel::XgbLike, ShallowModel::LgbmLike, ShallowModel::Mlp];

    /// Table-8 row name.
    pub fn name(&self) -> &'static str {
        match self {
            ShallowModel::Rf => "RF",
            ShallowModel::XgbLike => "XGBoost",
            ShallowModel::LgbmLike => "LightGBM",
            ShallowModel::Mlp => "MLP",
        }
    }
}

/// Result of one shallow run.
#[derive(Debug, Clone)]
pub struct ShallowResult {
    /// Test accuracy.
    pub accuracy: f64,
    /// Test macro-F1.
    pub macro_f1: f64,
    /// Training wall-clock seconds.
    pub train_secs: f64,
    /// Inference wall-clock seconds.
    pub infer_secs: f64,
    /// Normalised feature importance (random forest only).
    pub importance: Option<Vec<f64>>,
}

fn standardise(train: &mut [Vec<f32>], test: &mut [Vec<f32>]) {
    let d = train.first().map_or(0, Vec::len);
    let n = train.len().max(1) as f32;
    let mut mean = vec![0.0f32; d];
    for r in train.iter() {
        for (m, v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std = vec![0.0f32; d];
    for r in train.iter() {
        for ((s, v), m) in std.iter_mut().zip(r).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt().max(1e-6);
    }
    for set in [train, test] {
        for r in set.iter_mut() {
            for ((v, m), s) in r.iter_mut().zip(&mean).zip(&std) {
                *v = (*v - *m) / *s;
            }
        }
    }
}

/// Run a shallow baseline on a task under the given split policy
/// (Table 8 uses per-flow; Fig. 5 uses per-packet).
pub fn run_shallow(
    prep: &PreparedTask,
    model: ShallowModel,
    split_policy: SplitPolicy,
    feat_cfg: FeatureConfig,
    cfg: &CellConfig,
) -> ShallowResult {
    let task = prep.task;
    let data = &prep.data;
    let split = prep.split(split_policy, cfg.train_frac, cfg.max_flow_packets, cfg.seed);
    let label_of = |r: &PacketRecord| task.label_of(data, r);
    let train_idx = balanced_undersample(data, &split.train, &label_of, cfg.seed ^ 0xb);
    let train_idx = subsample(&train_idx, cfg.max_train, cfg.seed ^ 0xc);
    let test_idx = stratified_sample(
        data,
        &split.test,
        (cfg.max_test as f64 / split.test.len().max(1) as f64).min(1.0),
        &label_of,
        cfg.seed ^ 0xd,
    );
    let train_y: Vec<u16> = train_idx.iter().map(|&i| label_of(&data.records[i])).collect();
    let test_y: Vec<u16> = test_idx.iter().map(|&i| label_of(&data.records[i])).collect();
    // Feature rows for the whole dataset come from the artifact cache
    // (computed once per dataset + config, shared by every model/cell);
    // each run only gathers its own index subsets.
    let all_feats = prep.features(feat_cfg);
    let feats =
        |idx: &[usize]| -> Vec<[f32; N_FEATURES]> { idx.iter().map(|&i| all_feats[i]).collect() };
    let train_x = feats(&train_idx);
    let test_x = feats(&test_idx);
    let train_rows: Vec<&[f32]> = train_x.iter().map(|r| r.as_slice()).collect();
    let test_rows: Vec<&[f32]> = test_x.iter().map(|r| r.as_slice()).collect();
    let n_classes = task.n_classes();

    let mut importance = None;
    let t0 = Instant::now();
    let (train_secs, preds, infer_secs) = match model {
        ShallowModel::Rf => {
            let params = ForestParams {
                n_trees: 30,
                sample_size: Some(train_rows.len().min(3000)),
                ..Default::default()
            };
            let rf = RandomForest::fit(&train_rows, &train_y, n_classes, params, cfg.seed);
            importance = Some(rf.feature_importance());
            let train_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let preds = rf.predict(&test_rows);
            (train_secs, preds, t1.elapsed().as_secs_f64())
        }
        ShallowModel::XgbLike | ShallowModel::LgbmLike => {
            let params = GbdtParams {
                policy: if model == ShallowModel::XgbLike {
                    GrowthPolicy::DepthWise
                } else {
                    GrowthPolicy::LeafWise
                },
                rounds: if n_classes > 30 { 4 } else { 8 },
                ..Default::default()
            };
            let gb = GradientBoosting::fit(&train_rows, &train_y, n_classes, params);
            let train_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let preds = gb.predict(&test_rows);
            (train_secs, preds, t1.elapsed().as_secs_f64())
        }
        ShallowModel::Mlp => {
            let mut xtr: Vec<Vec<f32>> = train_x.iter().map(|r| r.to_vec()).collect();
            let mut xte: Vec<Vec<f32>> = test_x.iter().map(|r| r.to_vec()).collect();
            standardise(&mut xtr, &mut xte);
            let xt = Tensor::from_rows(&xtr);
            let xs = Tensor::from_rows(&xte);
            let mut mlp = Mlp::new(&[N_FEATURES, cfg.head_hidden, n_classes], cfg.seed);
            mlp.fit(&xt, &train_y, cfg.frozen_epochs, cfg.batch, cfg.lr, cfg.seed ^ 1);
            let train_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let preds = mlp.predict(&xs);
            (train_secs, preds, t1.elapsed().as_secs_f64())
        }
    };
    ShallowResult {
        accuracy: accuracy(&preds, &test_y),
        macro_f1: macro_f1(&preds, &test_y, n_classes),
        train_secs,
        infer_secs,
        importance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::Task;

    fn tiny_cfg() -> CellConfig {
        CellConfig { max_train: 600, max_test: 600, frozen_epochs: 8, ..Default::default() }
    }

    #[test]
    fn rf_solves_binary_task_well() {
        let prep = PreparedTask::build(Task::UstcBinary, 21, 0.15);
        let r = run_shallow(
            &prep,
            ShallowModel::Rf,
            SplitPolicy::PerFlow,
            FeatureConfig::default(),
            &tiny_cfg(),
        );
        assert!(r.accuracy > 0.85, "RF accuracy {}", r.accuracy);
        let imp = r.importance.expect("rf importance");
        assert_eq!(imp.len(), N_FEATURES);
    }

    #[test]
    fn all_models_run_on_app_task() {
        let prep = PreparedTask::build(Task::UstcApp, 22, 0.1);
        for m in ShallowModel::ALL {
            let r =
                run_shallow(&prep, m, SplitPolicy::PerFlow, FeatureConfig::default(), &tiny_cfg());
            assert!((0.0..=1.0).contains(&r.accuracy), "{}", m.name());
            assert!(r.accuracy > 1.0 / 20.0, "{} below chance: {}", m.name(), r.accuracy);
        }
    }

    #[test]
    fn without_ip_hurts() {
        let prep = PreparedTask::build(Task::UstcApp, 23, 0.1);
        let with_ip = run_shallow(
            &prep,
            ShallowModel::Rf,
            SplitPolicy::PerFlow,
            FeatureConfig { with_ip: true },
            &tiny_cfg(),
        );
        let without = run_shallow(
            &prep,
            ShallowModel::Rf,
            SplitPolicy::PerFlow,
            FeatureConfig { with_ip: false },
            &tiny_cfg(),
        );
        assert!(
            with_ip.macro_f1 >= without.macro_f1 - 0.02,
            "removing IP should not help: {} vs {}",
            with_ip.macro_f1,
            without.macro_f1
        );
    }
}
