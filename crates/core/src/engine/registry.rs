//! The `Experiment` trait and the registry all tables/figures/ablations
//! register into.

use crate::engine::context::RunContext;
use crate::experiment::{CellConfig, CellResult};
use crate::shallow_baselines::ShallowResult;
use std::sync::Arc;

/// Accuracy/F1/timing statistics of one executed cell. Fractions are in
/// `[0, 1]`; timings are real wall-clock seconds and are kept in memory
/// only — the runner zeroes them in serialised records so that result
/// JSON is bit-identical across serial and parallel runs.
#[derive(Debug, Clone, Copy)]
pub struct RecordStats {
    /// Mean test accuracy.
    pub accuracy: f64,
    /// Mean test macro-F1.
    pub macro_f1: f64,
    /// Wall-clock training seconds.
    pub train_secs: f64,
    /// Wall-clock inference seconds.
    pub infer_secs: f64,
}

impl RecordStats {
    /// Stats carrying metrics only, with wall-clock fields already
    /// zeroed — the form every serialised record and journal entry must
    /// take.
    pub fn of(accuracy: f64, macro_f1: f64) -> RecordStats {
        RecordStats { accuracy, macro_f1, train_secs: 0.0, infer_secs: 0.0 }
    }

    /// Copy with every wall-clock field zeroed. The single place the
    /// record contract's timing-zeroing lives: a future timing field
    /// added here is zeroed for the runner, the journal and the suite
    /// at once, so it cannot leak scheduling-dependent bytes into
    /// deterministic outputs.
    pub fn zero_wallclock(self) -> RecordStats {
        RecordStats::of(self.accuracy, self.macro_f1)
    }
}

impl From<&CellResult> for RecordStats {
    fn from(c: &CellResult) -> RecordStats {
        RecordStats {
            accuracy: c.accuracy,
            macro_f1: c.macro_f1,
            train_secs: c.train_secs,
            infer_secs: c.infer_secs,
        }
    }
}

impl From<&ShallowResult> for RecordStats {
    fn from(r: &ShallowResult) -> RecordStats {
        RecordStats {
            accuracy: r.accuracy,
            macro_f1: r.macro_f1,
            train_secs: r.train_secs,
            infer_secs: r.infer_secs,
        }
    }
}

/// Everything a cell hands back to its experiment's `render` step.
#[derive(Debug, Clone, Default)]
pub struct CellOutput {
    /// Core metrics, when the cell trains a classifier.
    pub stats: Option<RecordStats>,
    /// Named auxiliary values (histogram bins, feature importances,
    /// dataset counts, …) for render steps that need more than metrics.
    pub values: Vec<(String, f64)>,
    /// Pre-rendered text blocks (e.g. cleaning reports).
    pub lines: Vec<String>,
}

impl CellOutput {
    /// Output carrying only metrics.
    pub fn stats(stats: RecordStats) -> CellOutput {
        CellOutput { stats: Some(stats), ..Default::default() }
    }

    /// Output carrying only named values.
    pub fn values(values: Vec<(String, f64)>) -> CellOutput {
        CellOutput { values, ..Default::default() }
    }

    /// Output of a skipped or text-only cell.
    pub fn empty() -> CellOutput {
        CellOutput::default()
    }

    /// Copy with wall-clock timings zeroed via
    /// [`RecordStats::zero_wallclock`], matching the record contract:
    /// journal and cache bytes never depend on scheduling or the clock.
    pub fn zero_wallclock(&self) -> CellOutput {
        CellOutput { stats: self.stats.map(RecordStats::zero_wallclock), ..self.clone() }
    }
}

impl From<CellResult> for CellOutput {
    fn from(c: CellResult) -> CellOutput {
        CellOutput::stats(RecordStats::from(&c))
    }
}

impl From<ShallowResult> for CellOutput {
    fn from(r: ShallowResult) -> CellOutput {
        CellOutput::stats(RecordStats::from(&r))
    }
}

/// The work function of one cell. Receives the shared context plus the
/// cell's own [`CellConfig`] (same hyper-parameters as the run, with
/// the cell's independently derived seed).
pub type CellFn = Arc<dyn Fn(&RunContext, &CellConfig) -> CellOutput + Send + Sync>;

/// One schedulable unit of an experiment: its identity (task, model,
/// setting — the `ResultRecord` coordinates) plus the work function.
#[derive(Clone)]
pub struct CellSpec {
    /// Task name, e.g. "TLS-120".
    pub task: String,
    /// Model name, e.g. "ET-BERT".
    pub model: String,
    /// Setting, e.g. "per-flow/frozen".
    pub setting: String,
    /// Whether the runner should serialise this cell's stats as a
    /// [`crate::report::ResultRecord`] (matching which cells the
    /// original `repro` recorded).
    pub emit_record: bool,
    /// The work function.
    pub run: CellFn,
}

impl CellSpec {
    /// A record-emitting cell.
    pub fn new(
        task: impl Into<String>,
        model: impl Into<String>,
        setting: impl Into<String>,
        run: impl Fn(&RunContext, &CellConfig) -> CellOutput + Send + Sync + 'static,
    ) -> CellSpec {
        CellSpec {
            task: task.into(),
            model: model.into(),
            setting: setting.into(),
            emit_record: true,
            run: Arc::new(run),
        }
    }

    /// A cell whose output feeds `render` only (no serialised record).
    pub fn silent(
        task: impl Into<String>,
        model: impl Into<String>,
        setting: impl Into<String>,
        run: impl Fn(&RunContext, &CellConfig) -> CellOutput + Send + Sync + 'static,
    ) -> CellSpec {
        CellSpec { emit_record: false, ..CellSpec::new(task, model, setting, run) }
    }
}

/// One table, figure or ablation of the evaluation.
pub trait Experiment: Send + Sync {
    /// Stable id used on the command line (e.g. "table3").
    fn id(&self) -> &'static str;

    /// One-line description for `--list`.
    fn description(&self) -> &'static str;

    /// The experiment's grid of cells. Cells must be independent: the
    /// runner may execute them in any order, concurrently.
    fn cells(&self, ctx: &RunContext) -> Vec<CellSpec>;

    /// Render tables/charts to stdout from the collected outputs, which
    /// arrive in the same order as [`Experiment::cells`] returned them.
    fn render(&self, ctx: &RunContext, outputs: &[CellOutput]);
}

/// Registry of all experiments, in `all`-execution order.
#[derive(Default)]
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register an experiment. Panics on a duplicate id — that is a
    /// programming error in the suite.
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        assert!(self.get(exp.id()).is_none(), "duplicate experiment id: {}", exp.id());
        self.experiments.push(exp);
    }

    /// Look an experiment up by id.
    pub fn get(&self, id: &str) -> Option<&dyn Experiment> {
        self.experiments.iter().find(|e| e.id() == id).map(|e| e.as_ref())
    }

    /// All registered ids, in `all`-execution order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.experiments.iter().map(|e| e.id()).collect()
    }

    /// Iterate over registered experiments in `all`-execution order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.iter().map(|e| e.as_ref())
    }

    /// Run `filter` ("all" or one experiment id) under `ctx` in a
    /// single crash-safe session: an `all` sweep shares one journal and
    /// one manifest, so a killed sweep resumes from whichever cell it
    /// reached. Errors only when the run cannot *start* (unknown id,
    /// unusable journal); cell failures are isolated and land in the
    /// returned [`RunSummary`].
    pub fn run(
        &self,
        filter: &str,
        ctx: &RunContext,
        opts: &crate::engine::runner::RunOptions,
    ) -> Result<crate::engine::runner::RunSummary, crate::engine::runner::RunError> {
        use crate::engine::runner::{start_session, RunError};
        if filter != "all" && self.get(filter).is_none() {
            return Err(RunError::UnknownExperiment(filter.to_string()));
        }
        let session = start_session(ctx, opts)?;
        for exp in self.iter() {
            if filter == "all" || exp.id() == filter {
                session.run_experiment(exp, ctx, opts);
            }
        }
        Ok(session.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(&'static str);
    impl Experiment for Dummy {
        fn id(&self) -> &'static str {
            self.0
        }
        fn description(&self) -> &'static str {
            "dummy"
        }
        fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
            Vec::new()
        }
        fn render(&self, _ctx: &RunContext, _outputs: &[CellOutput]) {}
    }

    #[test]
    fn registry_preserves_order_and_rejects_unknown() {
        let mut r = Registry::new();
        r.register(Box::new(Dummy("b")));
        r.register(Box::new(Dummy("a")));
        assert_eq!(r.ids(), vec!["b", "a"]);
        assert!(r.get("a").is_some());
        assert!(r.get("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate experiment id")]
    fn duplicate_registration_panics() {
        let mut r = Registry::new();
        r.register(Box::new(Dummy("x")));
        r.register(Box::new(Dummy("x")));
    }
}
