//! Experiment engine: registry-driven orchestration of the paper's
//! tables, figures and ablations.
//!
//! The engine replaces the former `repro` binary's private `Ctx` state
//! with reusable subsystems:
//!
//! - [`context::RunContext`] — shared run state: the dataset
//!   [`crate::pipeline::TaskCache`], a process-wide pre-trained-encoder
//!   cache with optional on-disk checkpoints, and the per-cell seed
//!   derivation that makes cells order-independent;
//! - [`registry::Experiment`] / [`registry::Registry`] — every
//!   table/figure/ablation is an object exposing its grid of
//!   [`registry::CellSpec`]s plus a `render` step, registered under a
//!   stable id;
//! - [`runner`] — executes a registered experiment's cells, serially or
//!   on a thread pool (`--jobs N`), emitting bit-identical
//!   [`crate::report::ResultRecord`] JSON either way — with per-cell
//!   panic isolation, bounded retries and a soft time budget;
//! - [`journal`] — the append-only JSONL run journal and the atomically
//!   written `run-manifest.json` that make `--resume` possible;
//! - [`checkpoint::EncoderStore`] — build-once encoder memoisation keyed
//!   by pre-training provenance, optionally persisted to disk;
//! - [`suite`] — the 21 concrete experiments ported from `repro`.
//!
//! Front-end binaries (`repro`, the calibration probes) are thin
//! wrappers over `Registry::run(filter, &RunContext, &RunOptions)`.

pub mod checkpoint;
pub mod context;
pub mod distrib;
pub mod journal;
pub mod registry;
pub mod runner;
pub mod suite;

pub use checkpoint::EncoderStore;
pub use context::{EncoderSpec, Preset, RunContext};
pub use distrib::{run_coordinator, run_worker, CoordinatorOptions};
pub use journal::{
    CellId, Journal, JournalEntry, JournalError, JournalState, RunManifest, JOURNAL_FILE,
    MANIFEST_FILE,
};
pub use registry::{CellOutput, CellSpec, Experiment, RecordStats, Registry};
pub use runner::{run_experiment, start_session, RunError, RunOptions, RunSession, RunSummary};
pub use suite::default_registry;
