//! The concrete experiments of the paper's evaluation, ported from
//! the former `repro` binary onto the engine. Each experiment exposes
//! its grid of independent cells; the frozen/unfrozen × split-policy
//! tables (3, 4, 5) share one [`GridExperiment`] expansion instead of
//! per-table loops.

use crate::engine::context::{EncoderSpec, RunContext};
use crate::engine::registry::{CellOutput, CellSpec, Experiment, RecordStats, Registry};
use crate::experiment::{embeddings_for_purity, run_cell, CellConfig, FlowIdAblation, SplitPolicy};
use crate::flow_experiment::{run_flow_cell, run_flow_cell_majority_vote};
use crate::metrics::{accuracy, macro_f1};
use crate::pipeline::{PreparedTask, TokenVariant};
use crate::report::{bar_chart, TableBuilder};
use crate::shallow_baselines::{run_shallow, ShallowModel};
use dataset::record::PacketRecord;
use dataset::split::{balanced_undersample, subsample};
use dataset::transform::InputAblation;
use dataset::Task;
use encoders::model::{EncoderModel, ModelKind};
use encoders::pool::{pool_batch, PoolingMode};
use encoders::pretrain::pretrain_corpus;
use encoders::qa::{corrupt_checksums, qa_pretrain};
use nn::{Mlp, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use shallow::features::{feature_names, FeatureConfig};
use shallow::purity::knn_purity;
use std::sync::Arc;

/// The two packet-classification tasks most tables focus on.
const PACKET_TASKS: [Task; 2] = [Task::VpnApp, Task::Tls120];

fn setting_str(split: SplitPolicy, frozen: bool) -> &'static str {
    match (split, frozen) {
        (SplitPolicy::PerFlow, true) => "per-flow/frozen",
        (SplitPolicy::PerFlow, false) => "per-flow/unfrozen",
        (SplitPolicy::PerPacket, true) => "per-packet/frozen",
        (SplitPolicy::PerPacket, false) => "per-packet/unfrozen",
    }
}

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

fn expect_stats(out: &CellOutput) -> RecordStats {
    out.stats.expect("cell must produce metrics")
}

/// Build the full default suite: every table, figure and ablation, in
/// `all`-execution order.
pub fn default_registry() -> Registry {
    let mut r = Registry::new();
    r.register(Box::new(Table2));
    r.register(Box::new(Table13));
    r.register(Box::new(GridExperiment::table3()));
    r.register(Box::new(GridExperiment::table4()));
    r.register(Box::new(GridExperiment::table5()));
    r.register(Box::new(Table6));
    r.register(Box::new(Table7));
    r.register(Box::new(Table8));
    r.register(Box::new(Table9));
    r.register(Box::new(Table11));
    r.register(Box::new(Fig1));
    r.register(Box::new(Fig4));
    r.register(Box::new(Fig5));
    r.register(Box::new(Fig6));
    r.register(Box::new(QaExperiment));
    r.register(Box::new(RepeatVsPad));
    r.register(Box::new(BalanceAblation));
    r.register(Box::new(PoolingAblation));
    r.register(Box::new(AdvancedSplits));
    r.register(Box::new(ExtendedModels));
    r.register(Box::new(Robustness));
    r.register(Box::new(QuantInt8));
    r
}

// ---------------------------------------------------------------------
// Tables 3, 4, 5 — one grid expansion instead of per-table loops.

struct GridExperiment {
    id: &'static str,
    description: &'static str,
    title: &'static str,
    tasks: Vec<Task>,
    variants: Vec<(SplitPolicy, bool)>,
}

impl GridExperiment {
    fn table3() -> GridExperiment {
        GridExperiment {
            id: "table3",
            description: "packet classification, per-flow split, frozen encoders",
            title: "Table 3: packet classification — per-flow split, frozen encoders",
            tasks: Task::ALL.to_vec(),
            variants: vec![(SplitPolicy::PerFlow, true)],
        }
    }

    fn table4() -> GridExperiment {
        GridExperiment {
            id: "table4",
            description: "frozen vs unfrozen, per-flow split (VPN-app, TLS-120)",
            title: "Table 4: per-flow split — frozen vs unfrozen",
            tasks: PACKET_TASKS.to_vec(),
            variants: vec![(SplitPolicy::PerFlow, true), (SplitPolicy::PerFlow, false)],
        }
    }

    fn table5() -> GridExperiment {
        GridExperiment {
            id: "table5",
            description: "frozen vs unfrozen, per-packet split",
            title: "Table 5: per-packet split — frozen vs unfrozen",
            tasks: PACKET_TASKS.to_vec(),
            variants: vec![(SplitPolicy::PerPacket, true), (SplitPolicy::PerPacket, false)],
        }
    }
}

impl Experiment for GridExperiment {
    fn id(&self) -> &'static str {
        self.id
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for kind in ModelKind::ALL {
            for &task in &self.tasks {
                for &(split, frozen) in &self.variants {
                    cells.push(CellSpec::new(
                        task.name(),
                        kind.name(),
                        setting_str(split, frozen),
                        move |ctx: &RunContext, cfg: &CellConfig| {
                            let prep = ctx.prep(task);
                            let enc = ctx.encoder(EncoderSpec::pretrained(kind));
                            run_cell(&prep, &enc, split, frozen, cfg).into()
                        },
                    ));
                }
            }
        }
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut cols: Vec<String> = Vec::new();
        for &task in &self.tasks {
            for &(_, frozen) in &self.variants {
                let tag = if self.variants.len() > 1 {
                    if frozen {
                        " fro"
                    } else {
                        " unf"
                    }
                } else {
                    ""
                };
                cols.push(format!("{}{} AC", task.name(), tag));
                cols.push("F1".into());
            }
        }
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut t = TableBuilder::new(self.title, &col_refs);
        let per_model = self.tasks.len() * self.variants.len();
        for (kind, chunk) in ModelKind::ALL.iter().zip(outputs.chunks(per_model)) {
            let mut vals = Vec::new();
            for out in chunk {
                let s = expect_stats(out);
                vals.push(s.accuracy);
                vals.push(s.macro_f1);
            }
            t.row_pct(kind.name(), &vals);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Table 2 — dataset and task statistics.

struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn description(&self) -> &'static str {
        "dataset/task statistics"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        Task::ALL
            .into_iter()
            .map(|task| {
                CellSpec::silent(task.name(), "dataset", "stats", move |ctx, cfg| {
                    let prep = ctx.prep(task);
                    let split = prep.split(
                        SplitPolicy::PerFlow,
                        cfg.train_frac,
                        cfg.max_flow_packets,
                        cfg.seed,
                    );
                    let label = |r: &PacketRecord| task.label_of(&prep.data, r);
                    let bal = balanced_undersample(&prep.data, &split.train, &label, cfg.seed);
                    CellOutput::values(vec![
                        ("classes".into(), task.n_classes() as f64),
                        ("train_bal".into(), bal.len() as f64),
                        ("test".into(), split.test.len() as f64),
                        ("flows".into(), prep.data.n_flows() as f64),
                        ("packets".into(), prep.data.records.len() as f64),
                    ])
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table 2: downstream datasets and tasks (synthetic analogue)",
            &["#class", "#train(bal)", "#test", "#flows", "#packets"],
        );
        for (task, out) in Task::ALL.iter().zip(outputs) {
            let vals: Vec<String> =
                out.values.iter().map(|(_, v)| format!("{}", *v as u64)).collect();
            t.row(task.name(), &vals);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Table 6 — implicit-flow-ID ablation on unfrozen ET-BERT, TLS-120.

struct Table6;

const TABLE6_ROWS: [(&str, &str, SplitPolicy, FlowIdAblation, bool); 5] = [
    (
        "per-packet original",
        "per-packet, original",
        SplitPolicy::PerPacket,
        FlowIdAblation::None,
        true,
    ),
    (
        "per-packet w/o seq/ack/ts (test only)",
        "w/o SeqNo/AckNo/TS (test)",
        SplitPolicy::PerPacket,
        FlowIdAblation::TestOnly,
        true,
    ),
    (
        "per-packet w/o seq/ack/ts (train+test)",
        "w/o SeqNo/AckNo/TS (train+test)",
        SplitPolicy::PerPacket,
        FlowIdAblation::TrainAndTest,
        true,
    ),
    (
        "per-packet w/o pre-training",
        "w/o pre-training",
        SplitPolicy::PerPacket,
        FlowIdAblation::None,
        false,
    ),
    ("per-flow original", "per-flow, original", SplitPolicy::PerFlow, FlowIdAblation::None, true),
];

impl Experiment for Table6 {
    fn id(&self) -> &'static str {
        "table6"
    }

    fn description(&self) -> &'static str {
        "implicit-flow-ID ablation on ET-BERT (TLS-120)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        TABLE6_ROWS
            .iter()
            .map(|&(setting, _, split, ablation, pretrained)| {
                CellSpec::new("TLS-120", "ET-BERT", setting, move |ctx, cfg| {
                    let prep = ctx.prep(Task::Tls120);
                    let enc =
                        ctx.encoder(EncoderSpec::Standard { kind: ModelKind::EtBert, pretrained });
                    let cfg = CellConfig { flow_id_ablation: ablation, ..*cfg };
                    run_cell(&prep, &enc, split, false, &cfg).into()
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table 6: implicit flow IDs and pre-training — unfrozen ET-BERT, TLS-120",
            &["AC", "F1"],
        );
        for ((_, row_label, ..), out) in TABLE6_ROWS.iter().zip(outputs) {
            let s = expect_stats(out);
            t.row_pct(row_label, &[s.accuracy, s.macro_f1]);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Table 7 — Pcap-Encoder input ablation.

struct Table7;

const TABLE7_ROWS: [(&str, InputAblation); 4] = [
    ("w/o IP addr", InputAblation::NoIpAddr),
    ("w/o header", InputAblation::NoHeader),
    ("w/o payload", InputAblation::NoPayload),
    ("base", InputAblation::Base),
];

impl Experiment for Table7 {
    fn id(&self) -> &'static str {
        "table7"
    }

    fn description(&self) -> &'static str {
        "Pcap-Encoder input ablation"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for &(label, ablation) in &TABLE7_ROWS {
            for task in PACKET_TASKS {
                cells.push(CellSpec::new(task.name(), "Pcap-Encoder", label, move |ctx, cfg| {
                    let prep = ctx.prep(task);
                    let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::PcapEncoder));
                    let cfg = CellConfig { input_ablation: ablation, ..*cfg };
                    run_cell(&prep, &enc, SplitPolicy::PerFlow, true, &cfg).into()
                }));
            }
        }
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table 7: Pcap-Encoder input ablation (macro F1, per-flow, frozen)",
            &["VPN-app F1", "TLS-120 F1"],
        );
        for ((label, _), chunk) in TABLE7_ROWS.iter().zip(outputs.chunks(PACKET_TASKS.len())) {
            let vals: Vec<f64> = chunk.iter().map(|o| expect_stats(o).macro_f1).collect();
            t.row_pct(label, &vals);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Table 8 — shallow baselines with and without IP features.

struct Table8;

impl Experiment for Table8 {
    fn id(&self) -> &'static str {
        "table8"
    }

    fn description(&self) -> &'static str {
        "shallow baselines, base vs w/o IP"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for model in ShallowModel::ALL {
            for task in PACKET_TASKS {
                for with_ip in [true, false] {
                    let setting = if with_ip { "base" } else { "w/o IP" };
                    cells.push(CellSpec::new(
                        task.name(),
                        model.name(),
                        setting,
                        move |ctx: &RunContext, cfg: &CellConfig| {
                            let prep = ctx.prep(task);
                            run_shallow(
                                &prep,
                                model,
                                SplitPolicy::PerFlow,
                                FeatureConfig { with_ip },
                                cfg,
                            )
                            .into()
                        },
                    ));
                }
            }
        }
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table 8: shallow baselines (macro F1, per-flow split)",
            &["VPNapp base", "VPNapp w/oIP", "TLS120 base", "TLS120 w/oIP"],
        );
        let per_model = PACKET_TASKS.len() * 2;
        for (model, chunk) in ShallowModel::ALL.iter().zip(outputs.chunks(per_model)) {
            let vals: Vec<f64> = chunk.iter().map(|o| expect_stats(o).macro_f1).collect();
            t.row_pct(model.name(), &vals);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Table 9 — flow-level classification.

struct Table9;

impl Experiment for Table9 {
    fn id(&self) -> &'static str {
        "table9"
    }

    fn description(&self) -> &'static str {
        "flow-level classification"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for kind in ModelKind::ALL {
            for task in PACKET_TASKS {
                if kind == ModelKind::PcapEncoder {
                    cells.push(CellSpec::new(
                        task.name(),
                        kind.name(),
                        "frozen majority-vote",
                        move |ctx: &RunContext, cfg: &CellConfig| {
                            let prep = ctx.prep(task);
                            let enc = ctx.encoder(EncoderSpec::pretrained(kind));
                            run_flow_cell_majority_vote(&prep, &enc, cfg).into()
                        },
                    ));
                } else {
                    for frozen in [true, false] {
                        let setting = if frozen { "frozen" } else { "unfrozen" };
                        cells.push(CellSpec::new(
                            task.name(),
                            kind.name(),
                            setting,
                            move |ctx: &RunContext, cfg: &CellConfig| {
                                let prep = ctx.prep(task);
                                let enc = ctx.encoder(EncoderSpec::pretrained(kind));
                                run_flow_cell(&prep, &enc, frozen, cfg).into()
                            },
                        ));
                    }
                }
            }
        }
        // Extension row (not in the paper's table): a shallow RF on
        // classic flow statistics, the cost-benefit anchor.
        for task in PACKET_TASKS {
            cells.push(CellSpec::silent(
                task.name(),
                "RF (flow stats)",
                "per-flow",
                move |ctx, cfg| {
                    let prep = ctx.prep(task);
                    let (acc, f1) = flow_stats_rf(&prep, cfg);
                    CellOutput::stats(RecordStats::of(acc, f1))
                },
            ));
        }
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table 9: flow classification (per-flow split)",
            &[
                "VPNapp fro AC",
                "fro F1",
                "unf AC",
                "unf F1",
                "TLS120 fro AC",
                "fro F1",
                "unf AC",
                "unf F1",
            ],
        );
        let mut it = outputs.iter();
        for kind in ModelKind::ALL {
            let mut vals: Vec<String> = Vec::new();
            for _ in PACKET_TASKS {
                if kind == ModelKind::PcapEncoder {
                    let s = expect_stats(it.next().expect("majority-vote cell"));
                    vals.extend([pct(s.accuracy), pct(s.macro_f1), "-".into(), "-".into()]);
                } else {
                    for _ in 0..2 {
                        let s = expect_stats(it.next().expect("flow cell"));
                        vals.push(pct(s.accuracy));
                        vals.push(pct(s.macro_f1));
                    }
                }
            }
            t.row(kind.name(), &vals);
        }
        let mut vals: Vec<String> = Vec::new();
        for _ in PACKET_TASKS {
            let s = expect_stats(it.next().expect("flow-stats RF cell"));
            vals.extend([pct(s.accuracy), pct(s.macro_f1), "-".into(), "-".into()]);
        }
        t.row("RF (flow stats)*", &vals);
        println!("{}", t.render());
        println!("* extension row: shallow RF on flow statistics (not in the paper's table)\n");
    }
}

/// Shallow RF on flow-level statistics, per-flow split (extension).
fn flow_stats_rf(prep: &PreparedTask, cfg: &CellConfig) -> (f64, f64) {
    use shallow::flow_features::{extract_flow_features, N_FLOW_FEATURES};
    let mut x: Vec<[f32; N_FLOW_FEATURES]> = Vec::new();
    let mut y: Vec<u16> = Vec::new();
    for (_, idxs) in prep.data.flows() {
        if idxs.len() < 5 {
            continue;
        }
        let pkts: Vec<&PacketRecord> =
            idxs.iter().take(5).map(|&i| &prep.data.records[i]).collect();
        x.push(extract_flow_features(&pkts));
        y.push(prep.task.label_of(&prep.data, &prep.data.records[idxs[0]]));
    }
    let mut order: Vec<usize> = (0..x.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    order.shuffle(&mut rng);
    let cut = (order.len() as f64 * cfg.train_frac) as usize;
    let rows = |idx: &[usize]| -> Vec<&[f32]> { idx.iter().map(|&i| x[i].as_slice()).collect() };
    let labels = |idx: &[usize]| -> Vec<u16> { idx.iter().map(|&i| y[i]).collect() };
    let rf = shallow::forest::RandomForest::fit(
        &rows(&order[..cut]),
        &labels(&order[..cut]),
        prep.task.n_classes(),
        shallow::forest::ForestParams::default(),
        cfg.seed,
    );
    let preds = rf.predict(&rows(&order[cut..]));
    let truth = labels(&order[cut..]);
    (accuracy(&preds, &truth), macro_f1(&preds, &truth, prep.task.n_classes()))
}

// ---------------------------------------------------------------------
// Table 11 — Pcap-Encoder pre-training ablation.

struct Table11;

const TABLE11_VARIANTS: [encoders::pcap_encoder::PcapEncoderVariant; 3] = [
    encoders::pcap_encoder::PcapEncoderVariant::AutoencoderQa,
    encoders::pcap_encoder::PcapEncoderVariant::QaOnly,
    encoders::pcap_encoder::PcapEncoderVariant::Base,
];

impl Experiment for Table11 {
    fn id(&self) -> &'static str {
        "table11"
    }

    fn description(&self) -> &'static str {
        "Pcap-Encoder pre-training ablation"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for variant in TABLE11_VARIANTS {
            for task in PACKET_TASKS {
                cells.push(CellSpec::new(
                    task.name(),
                    variant.name(),
                    "per-flow/frozen",
                    move |ctx: &RunContext, cfg: &CellConfig| {
                        let prep = ctx.prep(task);
                        let enc = ctx.encoder(EncoderSpec::PcapVariant(variant));
                        run_cell(&prep, &enc, SplitPolicy::PerFlow, true, cfg).into()
                    },
                ));
            }
        }
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table 11: Pcap-Encoder pre-training ablation (per-flow, frozen)",
            &["VPNapp AC", "VPNapp F1", "TLS120 AC", "TLS120 F1"],
        );
        for (variant, chunk) in TABLE11_VARIANTS.iter().zip(outputs.chunks(PACKET_TASKS.len())) {
            let mut vals = Vec::new();
            for out in chunk {
                let s = expect_stats(out);
                vals.push(s.accuracy);
                vals.push(s.macro_f1);
            }
            t.row_pct(variant.name(), &vals);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Table 13 — protocol-filter cleaning statistics.

struct Table13;

const TABLE13_TASKS: [Task; 3] = [Task::VpnBinary, Task::UstcBinary, Task::Tls120];

impl Experiment for Table13 {
    fn id(&self) -> &'static str {
        "table13"
    }

    fn description(&self) -> &'static str {
        "protocol-filter cleaning statistics"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        TABLE13_TASKS
            .into_iter()
            .map(|task| {
                CellSpec::silent(task.name(), "dataset", "clean-report", move |ctx, _cfg| {
                    let prep = ctx.prep(task);
                    CellOutput {
                        lines: vec![format!(
                            "== Table 13: cleaning report for {} ==\n{}",
                            task.dataset().name(),
                            prep.clean_report.to_table()
                        )],
                        ..Default::default()
                    }
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        for out in outputs {
            for line in &out.lines {
                println!("{line}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 1 — headline summary bars on TLS-120.

struct Fig1;

const FIG1_KINDS: [ModelKind; 3] =
    [ModelKind::EtBert, ModelKind::TrafficFormer, ModelKind::PcapEncoder];

impl Experiment for Fig1 {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn description(&self) -> &'static str {
        "headline summary (TLS-120)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for kind in FIG1_KINDS {
            for (split, frozen) in [(SplitPolicy::PerPacket, false), (SplitPolicy::PerFlow, true)] {
                cells.push(CellSpec::new(
                    "TLS-120",
                    kind.name(),
                    setting_str(split, frozen),
                    move |ctx: &RunContext, cfg: &CellConfig| {
                        let prep = ctx.prep(Task::Tls120);
                        let enc = ctx.encoder(EncoderSpec::pretrained(kind));
                        run_cell(&prep, &enc, split, frozen, cfg).into()
                    },
                ));
            }
        }
        cells.push(CellSpec::silent("TLS-120", "RF", "per-flow", |ctx, cfg| {
            let prep = ctx.prep(Task::Tls120);
            run_shallow(
                &prep,
                ShallowModel::Rf,
                SplitPolicy::PerFlow,
                FeatureConfig::default(),
                cfg,
            )
            .into()
        }));
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut items: Vec<(String, f64)> = Vec::new();
        let mut it = outputs.iter();
        for kind in FIG1_KINDS {
            let claimed = expect_stats(it.next().expect("claimed cell"));
            let proper = expect_stats(it.next().expect("proper cell"));
            items.push((
                format!("{} (per-packet, unfrozen)", kind.name()),
                claimed.accuracy * 100.0,
            ));
            items.push((format!("{} (per-flow, frozen)", kind.name()), proper.accuracy * 100.0));
        }
        let rf = expect_stats(it.next().expect("RF cell"));
        items.push(("Shallow RF (per-flow)".into(), rf.accuracy * 100.0));
        println!(
            "{}",
            bar_chart(
                "Fig. 1: accuracy on TLS-120 — claimed setting vs proper evaluation",
                &items,
                50
            )
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 4 — 5-NN purity of ET-BERT embeddings, frozen vs unfrozen.

struct Fig4;

fn purity_output(emb: &[Vec<f32>], labels: &[u16]) -> CellOutput {
    let h = knn_purity(emb, labels, 5);
    let mut values: Vec<(String, f64)> = h
        .fraction
        .iter()
        .enumerate()
        .map(|(m, f)| (format!("{m}/5 same-class"), f * 100.0))
        .collect();
    values.push(("__mean".into(), h.mean_purity()));
    CellOutput::values(values)
}

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "5-NN purity of ET-BERT embeddings, frozen vs unfrozen"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        vec![
            CellSpec::silent("TLS-120", "ET-BERT", "frozen", |ctx, cfg| {
                let prep = ctx.prep(Task::Tls120);
                let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::EtBert));
                let n = cfg.max_test.min(1200);
                let (emb, labels) = embeddings_for_purity(&prep, &enc, n, cfg.seed);
                purity_output(&emb, &labels)
            }),
            CellSpec::silent("TLS-120", "ET-BERT", "unfrozen", |ctx, cfg| {
                // Fine-tune end-to-end on the per-packet split first,
                // then embed the same sample (the paper's procedure).
                let prep = ctx.prep(Task::Tls120);
                let mut enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::EtBert));
                let n = cfg.max_test.min(1200);
                let split = prep.split(
                    SplitPolicy::PerPacket,
                    cfg.train_frac,
                    cfg.max_flow_packets,
                    cfg.seed,
                );
                let label_of = |r: &PacketRecord| prep.task.label_of(&prep.data, r);
                let train = balanced_undersample(&prep.data, &split.train, &label_of, cfg.seed);
                let train = subsample(&train, cfg.max_train, cfg.seed);
                let mut head =
                    Mlp::new(&[enc.dim(), cfg.head_hidden, prep.task.n_classes()], cfg.seed);
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let mut order = train.clone();
                let mut pooled = Tensor::default();
                let mut d = Tensor::default();
                for epoch in 0..cfg.unfrozen_epochs {
                    order.shuffle(&mut rng);
                    for chunk in order.chunks(cfg.batch) {
                        let recs: Vec<&PacketRecord> =
                            chunk.iter().map(|&i| &prep.data.records[i]).collect();
                        let labels: Vec<u16> = recs.iter().map(|r| label_of(r)).collect();
                        let tokens = enc.tokenize_training_batch(&recs, epoch as u64);
                        enc.forward_tokens_into(&tokens, &mut pooled);
                        head.train_batch_into(&pooled, &labels, cfg.lr, &mut d);
                        let lr_enc = cfg.lr_encoder * (64.0 / enc.dim() as f32).min(1.0);
                        enc.backward(&d, lr_enc);
                    }
                }
                let (emb, labels) = embeddings_for_purity(&prep, &enc, n, cfg.seed);
                purity_output(&emb, &labels)
            }),
        ]
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        for (name, out) in ["frozen", "unfrozen"].iter().zip(outputs) {
            let mean =
                out.values.iter().find(|(k, _)| k == "__mean").map(|(_, v)| *v).unwrap_or(0.0);
            let items: Vec<(String, f64)> =
                out.values.iter().filter(|(k, _)| k != "__mean").cloned().collect();
            println!(
                "{}",
                bar_chart(
                    &format!(
                        "Fig. 4 ({name}): 5-NN purity of ET-BERT embeddings, TLS-120 (mean {:.2})",
                        mean
                    ),
                    &items,
                    40
                )
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 5 — RF feature importance, per-packet split, TLS-120.

struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "RF feature importance, with and without IP"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        [true, false]
            .into_iter()
            .map(|with_ip| {
                let setting = if with_ip { "with IP" } else { "w/o IP" };
                CellSpec::silent("TLS-120", "RF", setting, move |ctx, cfg| {
                    let prep = ctx.prep(Task::Tls120);
                    let r = run_shallow(
                        &prep,
                        ShallowModel::Rf,
                        SplitPolicy::PerPacket,
                        FeatureConfig { with_ip },
                        cfg,
                    );
                    let imp = r.importance.as_ref().expect("rf importance");
                    let names = feature_names();
                    let mut pairs: Vec<(String, f64)> =
                        names.iter().zip(imp).map(|(n, &v)| (n.to_string(), v)).collect();
                    pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
                    pairs.truncate(10);
                    pairs.push(("__accuracy".into(), r.accuracy * 100.0));
                    CellOutput::values(pairs)
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        for (with_ip, out) in [true, false].into_iter().zip(outputs) {
            let acc =
                out.values.iter().find(|(k, _)| k == "__accuracy").map(|(_, v)| *v).unwrap_or(0.0);
            let pairs: Vec<(String, f64)> =
                out.values.iter().filter(|(k, _)| k != "__accuracy").cloned().collect();
            println!(
                "{}",
                bar_chart(
                    &format!(
                        "Fig. 5 ({}): top-10 RF feature importance, per-packet TLS-120 (accuracy {:.1}%)",
                        if with_ip { "with IP" } else { "w/o IP" },
                        acc
                    ),
                    &pairs,
                    40
                )
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 6 — relative training/inference time on VPN-app (per-flow).

struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "relative training/inference time"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        let mut cells = vec![CellSpec::silent("VPN-app", "RF", "per-flow", |ctx, cfg| {
            let prep = ctx.prep(Task::VpnApp);
            run_shallow(
                &prep,
                ShallowModel::Rf,
                SplitPolicy::PerFlow,
                FeatureConfig::default(),
                cfg,
            )
            .into()
        })];
        for kind in ModelKind::ALL {
            for frozen in [true, false] {
                let setting = if frozen { "frozen" } else { "unfrozen" };
                cells.push(CellSpec::new(
                    "VPN-app",
                    kind.name(),
                    setting,
                    move |ctx: &RunContext, cfg: &CellConfig| {
                        let prep = ctx.prep(Task::VpnApp);
                        let enc = ctx.encoder(EncoderSpec::pretrained(kind));
                        run_cell(&prep, &enc, SplitPolicy::PerFlow, frozen, cfg).into()
                    },
                ));
            }
        }
        cells
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        // Timings here are the in-memory wall-clock values; they are
        // zeroed only in the serialised records.
        let rf = expect_stats(&outputs[0]);
        let mut train_items = vec![("RF".to_string(), 1.0)];
        let mut infer_items = vec![("RF".to_string(), 1.0)];
        let mut it = outputs[1..].iter();
        for kind in ModelKind::ALL {
            for frozen in [true, false] {
                let s = expect_stats(it.next().expect("timing cell"));
                let tag = format!("{} ({})", kind.name(), if frozen { "fro" } else { "unf" });
                train_items.push((tag, s.train_secs / rf.train_secs.max(1e-9)));
                if frozen {
                    infer_items
                        .push((kind.name().to_string(), s.infer_secs / rf.infer_secs.max(1e-9)));
                }
            }
        }
        println!("{}", bar_chart("Fig. 6a: training time relative to RF", &train_items, 40));
        println!("{}", bar_chart("Fig. 6b: inference time relative to RF", &infer_items, 40));
    }
}

// ---------------------------------------------------------------------
// App. A.1.3 — Q&A pre-training accuracy per question.

struct QaExperiment;

impl Experiment for QaExperiment {
    fn id(&self) -> &'static str {
        "qa"
    }

    fn description(&self) -> &'static str {
        "Pcap-Encoder Q&A pre-training accuracy (App. A.1.3)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        vec![CellSpec::silent("pretrain-corpus", "Pcap-Encoder", "qa", |ctx, cfg| {
            let budget = ctx.budget;
            let mut corpus = pretrain_corpus(cfg.seed ^ 0x1a, budget.corpus_flows * 2);
            let mut held = pretrain_corpus(cfg.seed ^ 0x2b, budget.corpus_flows / 3 + 5);
            corrupt_checksums(&mut corpus, 0.25, cfg.seed ^ 0x6e);
            corrupt_checksums(&mut held, 0.25, cfg.seed ^ 0x7f);
            let mut model = EncoderModel::new(ModelKind::PcapEncoder, cfg.seed ^ 0xabc);
            // Heads learn with Adam; a higher lr here only benefits
            // them — the encoder side uses geometry-preserving SGD
            // (DESIGN.md §4b).
            let report = qa_pretrain(
                &mut model,
                &corpus,
                &held,
                budget.qa_epochs * 2,
                budget.lr.max(0.05),
                cfg.seed ^ 0x4d,
            );
            let mut values: Vec<(String, f64)> =
                report.accuracy.iter().map(|(q, a)| (format!("{q:?}"), a * 100.0)).collect();
            values.push(("__mean".into(), report.mean_accuracy() * 100.0));
            CellOutput::values(values)
        })]
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let out = &outputs[0];
        let mean = out.values.iter().find(|(k, _)| k == "__mean").map(|(_, v)| *v).unwrap_or(0.0);
        let items: Vec<(String, f64)> =
            out.values.iter().filter(|(k, _)| k != "__mean").cloned().collect();
        println!(
            "{}",
            bar_chart(
                &format!("App. A.1.3: Q&A held-out accuracy per question (mean {:.1}%)", mean),
                &items,
                40
            )
        );
    }
}

// ---------------------------------------------------------------------
// §5 footnote 11 — Repeat vs Padding for packet-level flow embedders.

struct RepeatVsPad;

impl Experiment for RepeatVsPad {
    fn id(&self) -> &'static str {
        "repeat_vs_pad"
    }

    fn description(&self) -> &'static str {
        "packet-input strategy ablation (§5 fn. 11)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        vec![
            CellSpec::silent("VPN-app", "YaTC", "repeat", |ctx, cfg| {
                let prep = ctx.prep(Task::VpnApp);
                let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::YaTc));
                run_cell(&prep, &enc, SplitPolicy::PerFlow, true, cfg).into()
            }),
            CellSpec::silent("VPN-app", "YaTC", "pad", |ctx, cfg| {
                let prep = ctx.prep(Task::VpnApp);
                let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::YaTc));
                let split = prep.split(
                    SplitPolicy::PerFlow,
                    cfg.train_frac,
                    cfg.max_flow_packets,
                    cfg.seed,
                );
                let label_of = |r: &PacketRecord| prep.task.label_of(&prep.data, r);
                let train = balanced_undersample(&prep.data, &split.train, &label_of, cfg.seed);
                let train = subsample(&train, cfg.max_train, cfg.seed);
                let test = subsample(&split.test, cfg.max_test, cfg.seed);
                let padded = prep.tokens(&enc, TokenVariant::Padded);
                let tok = |idx: &[usize]| -> Vec<Vec<u32>> {
                    idx.iter().map(|&i| padded[i].clone()).collect()
                };
                let x_train = enc.encode_tokens(&tok(&train));
                let y_train: Vec<u16> =
                    train.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                let x_test = enc.encode_tokens(&tok(&test));
                let y_test: Vec<u16> =
                    test.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                let mut head =
                    Mlp::new(&[enc.dim(), cfg.head_hidden, prep.task.n_classes()], cfg.seed);
                head.fit(&x_train, &y_train, cfg.frozen_epochs, cfg.batch, cfg.lr, cfg.seed);
                let preds = head.predict(&x_test);
                CellOutput::stats(RecordStats::of(
                    accuracy(&preds, &y_test),
                    macro_f1(&preds, &y_test, prep.task.n_classes()),
                ))
            }),
        ]
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let repeat = expect_stats(&outputs[0]);
        let pad = expect_stats(&outputs[1]);
        println!(
            "{}",
            bar_chart(
                "fn.11 ablation: Repeat vs Padding input strategy (YaTC, VPN-app, frozen)",
                &[
                    ("Repeat x5".into(), repeat.accuracy * 100.0),
                    ("Pad with zero packets".into(), pad.accuracy * 100.0),
                ],
                40
            )
        );
    }
}

// ---------------------------------------------------------------------
// §6.2 closing remark — balanced vs unbalanced training split.

struct BalanceAblation;

impl Experiment for BalanceAblation {
    fn id(&self) -> &'static str {
        "balance_ablation"
    }

    fn description(&self) -> &'static str {
        "balanced vs unbalanced flow training (§6.2)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        vec![
            CellSpec::silent("TLS-120", "Pcap-Encoder", "balanced", |ctx, cfg| {
                let prep = ctx.prep(Task::Tls120);
                let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::PcapEncoder));
                run_cell(&prep, &enc, SplitPolicy::PerFlow, true, cfg).into()
            }),
            CellSpec::silent("TLS-120", "Pcap-Encoder", "natural", |ctx, cfg| {
                let prep = ctx.prep(Task::Tls120);
                let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::PcapEncoder));
                let split = prep.split(
                    SplitPolicy::PerFlow,
                    cfg.train_frac,
                    cfg.max_flow_packets,
                    cfg.seed,
                );
                let label_of = |r: &PacketRecord| prep.task.label_of(&prep.data, r);
                let train = subsample(&split.train, cfg.max_train, cfg.seed);
                let test = subsample(&split.test, cfg.max_test, cfg.seed);
                let recs = |idx: &[usize]| -> Vec<&PacketRecord> {
                    idx.iter().map(|&i| &prep.data.records[i]).collect()
                };
                let x_train = enc.encode_packets(&recs(&train));
                let y_train: Vec<u16> =
                    train.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                let x_test = enc.encode_packets(&recs(&test));
                let y_test: Vec<u16> =
                    test.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                let mut head =
                    Mlp::new(&[enc.dim(), cfg.head_hidden, prep.task.n_classes()], cfg.seed);
                head.fit(&x_train, &y_train, cfg.frozen_epochs, cfg.batch, cfg.lr, cfg.seed);
                let preds = head.predict(&x_test);
                CellOutput::stats(RecordStats::of(
                    accuracy(&preds, &y_test),
                    macro_f1(&preds, &y_test, prep.task.n_classes()),
                ))
            }),
        ]
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let balanced = expect_stats(&outputs[0]);
        let natural = expect_stats(&outputs[1]);
        println!(
            "{}",
            bar_chart(
                "§6.2 ablation: balanced vs unbalanced training (Pcap-Encoder, TLS-120, macro F1)",
                &[
                    ("balanced undersampling".into(), balanced.macro_f1 * 100.0),
                    ("natural distribution".into(), natural.macro_f1 * 100.0),
                ],
                40
            )
        );
    }
}

// ---------------------------------------------------------------------
// App. A.1.2 — bottleneck pooling ablation on frozen Pcap-Encoder.

struct PoolingAblation;

impl Experiment for PoolingAblation {
    fn id(&self) -> &'static str {
        "pooling"
    }

    fn description(&self) -> &'static str {
        "bottleneck pooling ablation (App. A.1.2)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        PoolingMode::ALL
            .into_iter()
            .map(|mode| {
                CellSpec::silent("VPN-app", "Pcap-Encoder", mode.name(), move |ctx, cfg| {
                    let prep = ctx.prep(Task::VpnApp);
                    let enc = ctx.encoder(EncoderSpec::pretrained(ModelKind::PcapEncoder));
                    let split = prep.split(
                        SplitPolicy::PerFlow,
                        cfg.train_frac,
                        cfg.max_flow_packets,
                        cfg.seed,
                    );
                    let label_of = |r: &PacketRecord| prep.task.label_of(&prep.data, r);
                    let train = balanced_undersample(&prep.data, &split.train, &label_of, cfg.seed);
                    let train = subsample(&train, cfg.max_train, cfg.seed);
                    let test = subsample(&split.test, cfg.max_test, cfg.seed);
                    let tokens = |idx: &[usize]| -> Vec<Vec<u32>> {
                        idx.iter()
                            .map(|&i| enc.tokenize_packet(&prep.data.records[i], None))
                            .collect()
                    };
                    let (ttr, tte) = (tokens(&train), tokens(&test));
                    let y_train: Vec<u16> =
                        train.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                    let y_test: Vec<u16> =
                        test.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                    let x_train = pool_batch(&enc.embedding, &ttr, mode, cfg.seed);
                    let x_test = pool_batch(&enc.embedding, &tte, mode, cfg.seed);
                    let mut head =
                        Mlp::new(&[enc.dim(), cfg.head_hidden, prep.task.n_classes()], cfg.seed);
                    head.fit(&x_train, &y_train, cfg.frozen_epochs, cfg.batch, cfg.lr, cfg.seed);
                    let preds = head.predict(&x_test);
                    CellOutput::stats(RecordStats::of(
                        accuracy(&preds, &y_test),
                        macro_f1(&preds, &y_test, prep.task.n_classes()),
                    ))
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let items: Vec<(String, f64)> = PoolingMode::ALL
            .iter()
            .zip(outputs)
            .map(|(mode, out)| (mode.name().to_string(), expect_stats(out).macro_f1 * 100.0))
            .collect();
        println!(
            "{}",
            bar_chart(
                "App. A.1.2: bottleneck pooling ablation (Pcap-Encoder frozen, VPN-app, macro F1)",
                &items,
                40
            )
        );
    }
}

// ---------------------------------------------------------------------
// §4.1 extension — stricter split policies.

struct AdvancedSplits;

const SPLIT_POLICIES: [&str; 4] = ["per-packet (leaky)", "per-flow", "per-client", "per-time"];

impl Experiment for AdvancedSplits {
    fn id(&self) -> &'static str {
        "advanced_splits"
    }

    fn description(&self) -> &'static str {
        "per-flow vs per-client vs per-time splits (§4.1)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        SPLIT_POLICIES
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                CellSpec::silent("VPN-app", "RF", name, move |ctx, cfg| {
                    use dataset::split::{per_client_split, per_time_split};
                    use std::sync::Arc;
                    let prep = ctx.prep(Task::VpnApp);
                    let split = match i {
                        0 => prep.split(
                            SplitPolicy::PerPacket,
                            cfg.train_frac,
                            cfg.max_flow_packets,
                            cfg.seed,
                        ),
                        1 => prep.split(
                            SplitPolicy::PerFlow,
                            cfg.train_frac,
                            cfg.max_flow_packets,
                            cfg.seed,
                        ),
                        2 => Arc::new(per_client_split(&prep.data, cfg.train_frac, cfg.seed)),
                        _ => Arc::new(per_time_split(&prep.data, cfg.train_frac)),
                    };
                    let label_of = |r: &PacketRecord| prep.task.label_of(&prep.data, r);
                    let train = balanced_undersample(&prep.data, &split.train, &label_of, cfg.seed);
                    let train = subsample(&train, cfg.max_train, cfg.seed);
                    let test = subsample(&split.test, cfg.max_test, cfg.seed);
                    if train.is_empty() || test.is_empty() {
                        ctx.obs().warn(
                            "suite",
                            &format!("  advanced_splits {name}: skipped (degenerate partition)"),
                            &[("split", name.into())],
                        );
                        return CellOutput::empty();
                    }
                    let all_feats = prep.features(FeatureConfig::default());
                    let feats = |idx: &[usize]| -> Vec<[f32; shallow::features::N_FEATURES]> {
                        idx.iter().map(|&i| all_feats[i]).collect()
                    };
                    let (xtr, xte) = (feats(&train), feats(&test));
                    fn rows(x: &[[f32; shallow::features::N_FEATURES]]) -> Vec<&[f32]> {
                        x.iter().map(|r| &r[..]).collect()
                    }
                    let ytr: Vec<u16> =
                        train.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                    let yte: Vec<u16> =
                        test.iter().map(|&i| label_of(&prep.data.records[i])).collect();
                    let rf = shallow::forest::RandomForest::fit(
                        &rows(&xtr),
                        &ytr,
                        prep.task.n_classes(),
                        shallow::forest::ForestParams::default(),
                        cfg.seed,
                    );
                    let preds = rf.predict(&rows(&xte));
                    CellOutput::stats(RecordStats::of(
                        accuracy(&preds, &yte),
                        macro_f1(&preds, &yte, prep.task.n_classes()),
                    ))
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let items: Vec<(String, f64)> = SPLIT_POLICIES
            .iter()
            .zip(outputs)
            .filter_map(|(name, out)| out.stats.map(|s| (name.to_string(), s.macro_f1 * 100.0)))
            .collect();
        println!(
            "{}",
            bar_chart(
                "§4.1 extension: RF macro F1 under increasingly strict splits (VPN-app)",
                &items,
                40
            )
        );
    }
}

// ---------------------------------------------------------------------
// Table-1 extension — models the paper does not evaluate.

struct ExtendedModels;

impl Experiment for ExtendedModels {
    fn id(&self) -> &'static str {
        "extended_models"
    }

    fn description(&self) -> &'static str {
        "Table-1 models the paper does not evaluate (PERT, PacRep, PTU)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        ModelKind::EXTENDED
            .into_iter()
            .map(|kind| {
                CellSpec::new("VPN-app", kind.name(), "per-flow/frozen", move |ctx, cfg| {
                    let prep = ctx.prep(Task::VpnApp);
                    let enc = ctx.encoder(EncoderSpec::pretrained(kind));
                    run_cell(&prep, &enc, SplitPolicy::PerFlow, true, cfg).into()
                })
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Table-1 extension: all nine analogues, VPN-app (per-flow, frozen)",
            &["AC", "F1"],
        );
        for (kind, out) in ModelKind::EXTENDED.iter().zip(outputs) {
            let s = expect_stats(out);
            t.row_pct(kind.name(), &[s.accuracy, s.macro_f1]);
        }
        println!("{}", t.render());
    }
}

// ---------------------------------------------------------------------
// Extension — robustness under capture faults.

struct Robustness;

const FAULT_RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

impl Experiment for Robustness {
    fn id(&self) -> &'static str {
        "robustness"
    }

    fn description(&self) -> &'static str {
        "RF accuracy vs capture-fault rate (extension)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        FAULT_RATES
            .into_iter()
            .map(|loss| {
                CellSpec::silent(
                    "USTC-app",
                    "RF",
                    format!("{:.0}% faults", loss * 100.0),
                    move |ctx, cfg| {
                        use traffic_synth::faults::{inject_faults, FaultConfig};
                        let spec =
                            traffic_synth::DatasetSpec::new(Task::UstcApp.dataset(), ctx.seed)
                                .scaled(ctx.scale);
                        let mut trace = spec.generate();
                        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xfa17);
                        inject_faults(&mut trace, FaultConfig::capture_loss(loss), &mut rng);
                        dataset::clean::clean_trace(&mut trace);
                        let data = dataset::record::Prepared::from_trace(&trace);
                        let prep = PreparedTask::from_parts(
                            Task::UstcApp,
                            Arc::new(data),
                            Arc::new(Default::default()),
                            ctx.seed,
                        );
                        run_shallow(
                            &prep,
                            ShallowModel::Rf,
                            SplitPolicy::PerFlow,
                            FeatureConfig::default(),
                            cfg,
                        )
                        .into()
                    },
                )
            })
            .collect()
    }

    fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
        let items: Vec<(String, f64)> = FAULT_RATES
            .iter()
            .zip(outputs)
            .map(|(loss, out)| {
                (format!("{:.0}% faults", loss * 100.0), expect_stats(out).macro_f1 * 100.0)
            })
            .collect();
        println!(
            "{}",
            bar_chart(
                "Extension: RF macro F1 on USTC-app vs capture-fault rate (per-flow split)",
                &items,
                40
            )
        );
    }
}

// ---------------------------------------------------------------------
// Extension — int8-quantised frozen encoder (accuracy vs throughput).

/// The int8 serving encoder is an explicit experiment, never a silent
/// substitution: this pits the f32 frozen Pcap-Encoder against its
/// int8-quantised copy on the same task, head recipe and seed, so the
/// accuracy cost of quantisation is a recorded, journaled number.
/// Throughput (flows/sec) is wall-clock and therefore *render-only* —
/// it never enters [`CellOutput::values`], keeping the journal
/// byte-deterministic.
struct QuantInt8;

const QUANT_VARIANTS: [(&str, bool); 2] = [("PcapEnc f32", false), ("PcapEnc int8", true)];

fn quant_cell(ctx: &RunContext, cfg: &CellConfig, int8: bool) -> CellOutput {
    use std::time::Instant;
    let prep = ctx.prep(Task::VpnApp);
    let task = prep.task;
    let data = &prep.data;
    let split = prep.split(SplitPolicy::PerFlow, cfg.train_frac, cfg.max_flow_packets, cfg.seed);
    let label_of = |r: &PacketRecord| task.label_of(data, r);
    let train = balanced_undersample(data, &split.train, &label_of, cfg.seed ^ 0xb);
    let train = subsample(&train, cfg.max_train, cfg.seed ^ 0xc);
    let test = subsample(&split.test, cfg.max_test, cfg.seed ^ 0xd);
    let train_labels: Vec<u16> = train.iter().map(|&i| label_of(&data.records[i])).collect();
    let train_recs: Vec<&PacketRecord> = train.iter().map(|&i| &data.records[i]).collect();
    let test_labels: Vec<u16> = test.iter().map(|&i| label_of(&data.records[i])).collect();
    let test_recs: Vec<&PacketRecord> = test.iter().map(|&i| &data.records[i]).collect();

    let frozen = ctx.encoder(EncoderSpec::pretrained(ModelKind::PcapEncoder)).freeze();
    let t0 = Instant::now();
    let (x_train, x_test) = if int8 {
        let q = frozen.quantize();
        (q.encode_packets(&train_recs), q.encode_packets(&test_recs))
    } else {
        (frozen.encode_packets(&train_recs), frozen.encode_packets(&test_recs))
    };
    let n_classes = task.n_classes();
    let mut head = Mlp::new(&[frozen.dim(), cfg.head_hidden, n_classes], cfg.seed);
    head.fit(&x_train, &train_labels, cfg.frozen_epochs, cfg.batch, cfg.lr, cfg.seed ^ 0x1);
    let train_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let pred = head.predict(&x_test);
    let infer_secs = t1.elapsed().as_secs_f64();
    CellOutput::stats(RecordStats {
        accuracy: accuracy(&pred, &test_labels),
        macro_f1: macro_f1(&pred, &test_labels, n_classes),
        train_secs,
        infer_secs,
    })
}

impl Experiment for QuantInt8 {
    fn id(&self) -> &'static str {
        "quant_int8"
    }

    fn description(&self) -> &'static str {
        "int8-quantised frozen encoder vs f32: accuracy delta + serving throughput (extension)"
    }

    fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
        QUANT_VARIANTS
            .into_iter()
            .map(|(model, int8)| {
                CellSpec::new("VPN-app", model, "per-flow/frozen", move |ctx, cfg| {
                    quant_cell(ctx, cfg, int8)
                })
            })
            .collect()
    }

    fn render(&self, ctx: &RunContext, outputs: &[CellOutput]) {
        let mut t = TableBuilder::new(
            "Extension: int8 serving encoder vs f32, VPN-app (per-flow, frozen)",
            &["AC", "F1", "kflows/s"],
        );
        // Throughput is measured here in render — wall-clock must never
        // reach the journaled cell outputs.
        let frozen = ctx.encoder(EncoderSpec::pretrained(ModelKind::PcapEncoder)).freeze();
        let quant = frozen.quantize();
        let recs_owned = ctx.prep(Task::VpnApp).data.clone();
        let recs: Vec<&PacketRecord> = recs_owned.records.iter().take(512).collect();
        let mut scratch = encoders::EncodeScratch::default();
        let mut enc_out = Tensor::default();
        frozen.encode_packets_into(&recs, &mut scratch, &mut enc_out); // warm scratch
        let t0 = std::time::Instant::now();
        frozen.encode_packets_into(&recs, &mut scratch, &mut enc_out);
        let f32_rate = recs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9) / 1e3;
        quant.encode_packets_into(&recs, &mut scratch, &mut enc_out); // warm scratch
        let t1 = std::time::Instant::now();
        quant.encode_packets_into(&recs, &mut scratch, &mut enc_out);
        let int8_rate = recs.len() as f64 / t1.elapsed().as_secs_f64().max(1e-9) / 1e3;
        let rates = [f32_rate, int8_rate];
        for ((name, _), (out, rate)) in QUANT_VARIANTS.iter().zip(outputs.iter().zip(rates)) {
            let s = expect_stats(out);
            t.row(name, &[pct(s.accuracy), pct(s.macro_f1), format!("{rate:.1}")]);
        }
        println!("{}", t.render());
        if let [a, b] = outputs {
            let (fa, fb) = (expect_stats(a), expect_stats(b));
            println!(
                "int8 accuracy delta vs f32: {:+.2} pts AC, {:+.2} pts F1\n",
                (fb.accuracy - fa.accuracy) * 100.0,
                (fb.macro_f1 - fa.macro_f1) * 100.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::context::Preset;

    /// Every experiment id the pre-engine `repro` match accepted, plus
    /// engine-era additions (`quant_int8`).
    const LEGACY_IDS: [&str; 22] = [
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "table11",
        "table13",
        "fig1",
        "fig4",
        "fig5",
        "fig6",
        "qa",
        "repeat_vs_pad",
        "pooling",
        "advanced_splits",
        "extended_models",
        "robustness",
        "balance_ablation",
        "quant_int8",
    ];

    #[test]
    fn registry_exposes_every_legacy_experiment() {
        let r = default_registry();
        for id in LEGACY_IDS {
            assert!(r.get(id).is_some(), "experiment {id} missing from registry");
        }
        assert_eq!(r.ids().len(), LEGACY_IDS.len(), "no extra or missing experiments");
    }

    #[test]
    fn cell_identities_are_unique_within_each_experiment() {
        // Duplicate (task, model, setting) triples within one experiment
        // would collapse two cells onto one derived seed.
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        for exp in default_registry().iter() {
            let mut seen = std::collections::HashSet::new();
            for cell in exp.cells(&ctx) {
                let key = (cell.task.clone(), cell.model.clone(), cell.setting.clone());
                assert!(seen.insert(key.clone()), "{}: duplicate cell identity {key:?}", exp.id());
            }
        }
    }

    #[test]
    fn grid_experiments_declare_consistent_shapes() {
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let r = default_registry();
        assert_eq!(r.get("table3").unwrap().cells(&ctx).len(), 6 * 6);
        assert_eq!(r.get("table4").unwrap().cells(&ctx).len(), 6 * 2 * 2);
        assert_eq!(r.get("table5").unwrap().cells(&ctx).len(), 6 * 2 * 2);
    }
}
