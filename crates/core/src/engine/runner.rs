//! Cell execution: serial or on a thread pool, with deterministic
//! output either way — now crash-safe, panic-isolated and resumable.
//!
//! Determinism contract: each cell's seed depends only on its identity
//! (see [`RunContext::cell_seed`]), outputs are collected by cell index
//! (not completion order), and wall-clock timing fields are zeroed in
//! serialised records. `--jobs 4` therefore emits byte-identical result
//! JSON to `--jobs 1` — and, because journal replay returns the exact
//! outputs the journal recorded, a resumed run emits byte-identical
//! records to an uninterrupted one.
//!
//! Failure isolation: every cell runs under `catch_unwind`, so one
//! panicking cell marks *that cell* failed in the journal (payload
//! captured) instead of killing the sweep. A bounded retry policy with
//! a deterministic, seed-derived backoff re-attempts failed cells, and
//! `--max-cell-seconds` marks overrunning cells failed. The manifest
//! (`run-manifest.json`, written atomically) reports totals, failures,
//! resumed counts and write errors; a failed record write is an error
//! in the manifest and the exit code, never just a warning.

use crate::artifact::{ArtifactCache, ArtifactStats};
use crate::engine::context::RunContext;
use crate::engine::journal::{
    atomic_write, CellId, Journal, JournalEntry, JournalError, JournalState, RunManifest,
    JOURNAL_FILE,
};
use crate::engine::registry::{CellOutput, CellSpec, Experiment, RecordStats};
use crate::obs::{self, CellOutcome, ObsSink};
use crate::report::{records_json_pretty, ResultRecord};
use encoders::checkpoint::stable_hash64;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the runner executes an experiment.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for independent cells (1 = in-line, serial).
    pub jobs: usize,
    /// Threads for the nn matmul kernels inside each cell. `None`
    /// splits the `jobs` budget automatically: whatever `jobs` leaves
    /// unused at the cell level goes to the kernels. Kernel parallelism
    /// is row-partitioned and bit-identical to serial, so this never
    /// affects results.
    pub kernel_threads: Option<usize>,
    /// Where result-record JSON files, the run journal and the manifest
    /// are written; `None` disables all serialisation (the calibration
    /// probes don't record).
    pub out_dir: Option<PathBuf>,
    /// Replay cells already `done` in `out_dir`'s journal instead of
    /// re-running them; only missing/failed cells execute. Replayed
    /// outputs are byte-identical to a fresh run's records.
    pub resume: bool,
    /// Attempts per cell before it is marked failed (min 1). Retries
    /// target environmental failures; a deterministic panic will simply
    /// fail `max_attempts` times, each logged in the journal.
    pub max_attempts: u32,
    /// Soft per-cell time budget: a cell whose attempt overruns this is
    /// marked `failed` in the journal (with the overrun recorded as its
    /// error) instead of poisoning the record set. Soft means the cell
    /// is not preempted mid-flight; the verdict lands when it returns.
    pub max_cell_seconds: Option<f64>,
    /// Record out-of-band observability files under `out_dir`:
    /// `trace.jsonl` (append-only leveled events) and `metrics.json`
    /// (aggregated at finish). Strictly separate from records, journal
    /// and manifest, whose bytes are identical with tracing on or off.
    pub trace: bool,
    /// Journal a `started`/`done` pair even for cells replayed from the
    /// artifact cache. Off for normal runs (a warm single-process run
    /// journals nothing for replayed cells); worker processes under
    /// `--workers` set it so the coordinator's merged journal covers
    /// every cell regardless of cache state — the distrib byte-stability
    /// contract (`engine::distrib`).
    pub journal_replays: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            jobs: 1,
            kernel_threads: None,
            out_dir: Some(PathBuf::from("results")),
            resume: false,
            max_attempts: 1,
            max_cell_seconds: None,
            trace: false,
            journal_replays: false,
        }
    }
}

/// Why a run could not start (running itself never aborts: cell
/// failures are isolated and reported in the [`RunSummary`]).
#[derive(Debug)]
pub enum RunError {
    /// The experiment filter matched nothing.
    UnknownExperiment(String),
    /// The journal could not be created or replayed.
    Journal(JournalError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownExperiment(id) => write!(f, "unknown experiment: {id}"),
            RunError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl From<JournalError> for RunError {
    fn from(e: JournalError) -> RunError {
        RunError::Journal(e)
    }
}

impl std::error::Error for RunError {}

/// What happened over a whole session, mirrored into the manifest.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Cells scheduled.
    pub cells_total: usize,
    /// Cells with a finished output (executed or replayed).
    pub cells_done: usize,
    /// Cells that exhausted their attempts.
    pub cells_failed: usize,
    /// Cells replayed from the journal.
    pub cells_resumed: usize,
    /// Identities of failed cells.
    pub failed_cells: Vec<String>,
    /// Record/manifest write failures.
    pub record_write_errors: Vec<String>,
    /// How the artifact cache served this session (datasets, token and
    /// feature matrices, splits, cell outputs).
    pub artifacts: ArtifactStats,
    /// Where the manifest landed, when one was written.
    pub manifest_path: Option<PathBuf>,
    /// Where `metrics.json` landed, when the session traced.
    pub metrics_path: Option<PathBuf>,
}

impl RunSummary {
    /// True when every cell finished and every write landed — the exit
    /// code contract: anything else is a failed run.
    pub fn ok(&self) -> bool {
        self.cells_failed == 0 && self.record_write_errors.is_empty()
    }
}

#[derive(Default)]
struct Tally {
    total: usize,
    done: usize,
    failed: usize,
    resumed: usize,
    failed_cells: Vec<String>,
    record_write_errors: Vec<String>,
}

/// One crash-safe run: owns the journal, the replay state loaded from a
/// previous crashed/killed run, and the tally that becomes the
/// manifest. `Registry::run` keeps a single session across an `all`
/// sweep so the whole grid shares one journal.
pub struct RunSession {
    journal: Option<Journal>,
    prior: JournalState,
    out_dir: Option<PathBuf>,
    tally: Mutex<Tally>,
    /// The context's artifact cache, captured so `finish` can stamp its
    /// counters into the manifest, and the hex run fingerprint prefixing
    /// every cell-output artifact key.
    artifacts: Arc<ArtifactCache>,
    run_fp_hex: String,
    /// Out-of-band event/metrics sink: a per-session tracing sink with
    /// `opts.trace`, the process-global stderr sink otherwise. Installed
    /// on the context and caches for the session's lifetime.
    obs: Arc<ObsSink>,
    started: Instant,
}

/// Open a session: create (or, with `resume`, replay) the journal under
/// `opts.out_dir`. With `out_dir: None` the session journals nothing.
pub fn start_session(ctx: &RunContext, opts: &RunOptions) -> Result<RunSession, RunError> {
    let sink = match (&opts.out_dir, opts.trace) {
        (Some(dir), true) => Arc::new(
            ObsSink::with_dir(dir, obs::global().format())
                .map_err(|e| JournalError::Io(dir.clone(), e))?,
        ),
        _ => obs::global(),
    };
    ctx.set_obs(sink.clone());
    let mut session = RunSession {
        journal: None,
        prior: JournalState::default(),
        out_dir: opts.out_dir.clone(),
        tally: Mutex::new(Tally::default()),
        artifacts: ctx.artifacts().clone(),
        run_fp_hex: format!("{:016x}", ctx.run_fingerprint()),
        obs: sink,
        started: Instant::now(),
    };
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| JournalError::Io(dir.clone(), e))?;
        let path = dir.join(JOURNAL_FILE);
        let fingerprint = ctx.run_fingerprint();
        if opts.resume {
            let (journal, state) = Journal::resume(&path, fingerprint)?;
            if state.n_done() > 0 {
                session.obs.info(
                    "runner",
                    &format!(
                        "[resume] journal {} has {} finished cell(s) to replay",
                        path.display(),
                        state.n_done()
                    ),
                    &[
                        ("journal", path.display().to_string().into()),
                        ("done", state.n_done().into()),
                    ],
                );
            }
            session.journal = Some(journal);
            session.prior = state;
        } else {
            session.journal = Some(Journal::create(&path, fingerprint)?);
        }
    }
    Ok(session)
}

/// Open a distrib *worker* session (`engine::distrib`): its journal
/// lives at `worker_dir/journal.jsonl` and is always opened in resume
/// mode (fresh file = fresh run, so coordinator retry waves append),
/// while `prior` is the replay state folded from *every* worker's
/// journal — a cell any sibling finished is never re-executed here. The
/// worker's own manifest and metrics land under `worker_dir`.
pub(crate) fn start_worker_session(
    ctx: &RunContext,
    opts: &RunOptions,
    worker_dir: &Path,
    prior: JournalState,
) -> Result<RunSession, RunError> {
    let sink = if opts.trace {
        Arc::new(
            ObsSink::with_dir(worker_dir, obs::global().format())
                .map_err(|e| JournalError::Io(worker_dir.to_path_buf(), e))?,
        )
    } else {
        obs::global()
    };
    ctx.set_obs(sink.clone());
    std::fs::create_dir_all(worker_dir)
        .map_err(|e| JournalError::Io(worker_dir.to_path_buf(), e))?;
    let path = worker_dir.join(JOURNAL_FILE);
    let (journal, _own_state) = Journal::resume(&path, ctx.run_fingerprint())?;
    Ok(RunSession {
        journal: Some(journal),
        prior,
        out_dir: Some(worker_dir.to_path_buf()),
        tally: Mutex::new(Tally::default()),
        artifacts: ctx.artifacts().clone(),
        run_fp_hex: format!("{:016x}", ctx.run_fingerprint()),
        obs: sink,
        started: Instant::now(),
    })
}

impl RunSession {
    /// Count `n` additional scheduled cells in the tally — the worker
    /// loop schedules cells one claim at a time instead of through
    /// `execute_cells`.
    pub(crate) fn bump_total(&self, n: usize) {
        self.tally().total += n;
    }

    /// The replay state this session was opened with.
    pub(crate) fn prior(&self) -> &JournalState {
        &self.prior
    }

    /// Execute one experiment under this session: run or replay its
    /// cells (possibly in parallel), write its result records, then
    /// render its tables/charts. Panics in cells *and* in render are
    /// contained; failures land in the tally, not in an abort.
    pub fn run_experiment(&self, exp: &dyn Experiment, ctx: &RunContext, opts: &RunOptions) {
        let exp_started = Instant::now();
        let cells = exp.cells(ctx);
        let jobs = opts.jobs.max(1);
        let cell_jobs = jobs.min(cells.len().max(1));
        let kernel = opts.kernel_threads.unwrap_or_else(|| (jobs / cell_jobs).max(1));
        nn::set_kernel_threads(kernel);
        self.obs.record_kernel_budget(jobs, cell_jobs, kernel);
        self.obs.debug(
            "runner",
            &format!("  [budget] {}: jobs={jobs} cell_jobs={cell_jobs} kernel={kernel}", exp.id()),
            &[
                ("experiment", exp.id().into()),
                ("jobs", jobs.into()),
                ("cell_jobs", cell_jobs.into()),
                ("kernel_threads", kernel.into()),
            ],
        );
        let outputs = self.execute_cells(exp.id(), &cells, ctx, cell_jobs, opts);

        let records: Vec<ResultRecord> = cells
            .iter()
            .zip(&outputs)
            .filter(|(spec, _)| spec.emit_record)
            .filter_map(|(spec, out)| {
                // Wall-clock timings are nondeterministic; zero them so
                // records are byte-identical across serial, parallel and
                // resumed runs. Real timings stay in RecordStats for
                // render and flow to metrics.json out of band.
                out.stats.map(RecordStats::zero_wallclock).map(|s| ResultRecord {
                    experiment: exp.id().into(),
                    task: spec.task.clone(),
                    model: spec.model.clone(),
                    setting: spec.setting.clone(),
                    accuracy: s.accuracy * 100.0,
                    macro_f1: s.macro_f1 * 100.0,
                    train_secs: s.train_secs,
                    infer_secs: s.infer_secs,
                })
            })
            .collect();
        if let Some(dir) = &self.out_dir.clone() {
            self.flush_records(dir, exp.id(), &records);
        }

        // A render step that chokes on a failed cell's empty output must
        // not take down the sweep — the records are already on disk.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| exp.render(ctx, &outputs))) {
            let msg = panic_message(payload.as_ref());
            self.obs.warn(
                "runner",
                &format!("  [render] {} panicked: {msg}", exp.id()),
                &[("experiment", exp.id().into()), ("panic", msg.as_str().into())],
            );
        }
        self.obs.record_experiment_wall(exp.id(), exp_started.elapsed().as_secs_f64());
    }

    /// Finish the session: write the manifest atomically and return the
    /// summary. Callers decide the exit code from [`RunSummary::ok`].
    pub fn finish(self) -> RunSummary {
        let stats = self.artifacts.stats();
        let tally = self.tally.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut summary = RunSummary {
            cells_total: tally.total,
            cells_done: tally.done,
            cells_failed: tally.failed,
            cells_resumed: tally.resumed,
            failed_cells: tally.failed_cells,
            record_write_errors: tally.record_write_errors,
            artifacts: stats,
            manifest_path: None,
            metrics_path: None,
        };
        if let Some(dir) = &self.out_dir {
            let journal_hash =
                self.journal.as_ref().and_then(|j| j.content_hash().ok()).unwrap_or(0);
            let manifest = RunManifest {
                cells_total: summary.cells_total,
                cells_done: summary.cells_done,
                cells_failed: summary.cells_failed,
                cells_resumed: summary.cells_resumed,
                failed_cells: summary.failed_cells.clone(),
                record_write_errors: summary.record_write_errors.clone(),
                artifact_mem_hits: stats.mem_hits,
                artifact_disk_hits: stats.disk_hits,
                artifact_builds: stats.builds,
                journal_hash,
            };
            match manifest.write_atomic(dir) {
                Ok(path) => summary.manifest_path = Some(path),
                Err(e) => summary
                    .record_write_errors
                    .push(format!("{}: {e}", dir.join("run-manifest.json").display())),
            }
        }
        // Metrics are observability, not results: a failed write warns
        // but never fails the run the way a lost record does.
        match self.obs.write_metrics(&summary, self.started.elapsed().as_secs_f64()) {
            Ok(path) => summary.metrics_path = path,
            Err(e) => {
                self.obs.warn("runner", &format!("  [warn] could not write metrics: {e}"), &[])
            }
        }
        summary
    }

    fn append_journal(&self, entry: &JournalEntry) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(entry) {
                let msg = format!("{}: append failed: {e}", journal.path().display());
                self.obs.error("runner", &format!("  [error] {msg}"), &[]);
                self.tally().record_write_errors.push(msg);
            }
        }
    }

    fn tally(&self) -> std::sync::MutexGuard<'_, Tally> {
        self.tally.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn execute_cells(
        &self,
        exp_id: &str,
        cells: &[CellSpec],
        ctx: &RunContext,
        jobs: usize,
        opts: &RunOptions,
    ) -> Vec<CellOutput> {
        let n = cells.len();
        self.tally().total += n;
        let run_one = |i: usize| -> CellOutput { self.run_cell(exp_id, cells, i, ctx, opts) };

        if jobs <= 1 || n <= 1 {
            return (0..n).map(run_one).collect();
        }

        // std-only work-stealing-ish pool: an atomic next-cell index and
        // a slot vector filled by cell index, so collection order never
        // depends on completion order.
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<CellOutput>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = run_one(i);
                    // Recover from poisoning like `tally()` does: the
                    // slots hold plain data, and aborting the sweep here
                    // would lose every in-flight cell's output.
                    slots.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|o| o.expect("every cell ran"))
            .collect()
    }

    /// Run (or replay) one cell with panic isolation, bounded retries
    /// and the soft time budget. Always returns an output — a failed
    /// cell contributes `CellOutput::empty()` to render and no record.
    /// `pub(crate)` for the distrib worker loop, which schedules cells
    /// by claim instead of through `execute_cells`.
    pub(crate) fn run_cell(
        &self,
        exp_id: &str,
        cells: &[CellSpec],
        i: usize,
        ctx: &RunContext,
        opts: &RunOptions,
    ) -> CellOutput {
        let n = cells.len();
        let spec = &cells[i];
        let cfg = ctx.cell_config(exp_id, &spec.task, &spec.model, &spec.setting);
        let id = CellId {
            experiment: exp_id.to_string(),
            task: spec.task.clone(),
            model: spec.model.clone(),
            setting: spec.setting.clone(),
            seed: cfg.seed,
        };
        let cell = id.hash();
        let label = format!("{exp_id}/{}/{}/{}", spec.task, spec.model, spec.setting);
        let cell_started = Instant::now();
        let base_fields: Vec<(&'static str, crate::obs::Value)> = vec![
            ("experiment", exp_id.into()),
            ("task", spec.task.as_str().into()),
            ("model", spec.model.as_str().into()),
            ("setting", spec.setting.as_str().into()),
        ];
        let cell_fields = |extra: &[(&'static str, crate::obs::Value)]| {
            let mut fields = base_fields.clone();
            fields.extend_from_slice(extra);
            fields
        };

        if let Some(out) = self.prior.done_output(cell) {
            let mut tally = self.tally();
            tally.done += 1;
            tally.resumed += 1;
            drop(tally);
            self.obs.info(
                "runner",
                &format!(
                    "  {exp_id} [{}/{n}] {} {} {}: replayed from journal",
                    i + 1,
                    spec.model,
                    spec.task,
                    spec.setting,
                ),
                &cell_fields(&[("outcome", "replayed-journal".into())]),
            );
            self.obs.record_cell(
                exp_id,
                CellOutcome::ReplayedJournal,
                0,
                0,
                cell_started.elapsed().as_secs_f64(),
                0.0,
                0.0,
            );
            return out.clone();
        }

        // Content-addressed replay: a finished output keyed by the run
        // fingerprint + cell identity is byte-identical to executing the
        // cell (same contract journal replay relies on), so a warm
        // `--cache-dir` serves it across processes and a repeated run in
        // one process serves it from memory.
        let seed_hex = format!("{:016x}", cfg.seed);
        let cell_parts =
            [self.run_fp_hex.as_str(), exp_id, &spec.task, &spec.model, &spec.setting, &seed_hex];
        if let Some(out) = self.artifacts.lookup::<CellOutput>(&cell_parts) {
            if opts.journal_replays {
                // Worker mode: the replayed cell must still appear in
                // this worker's journal, because the coordinator's merge
                // reconstructs the canonical journal purely from worker
                // journals — warm runs merge byte-identical to cold ones.
                let attempt = self.prior.attempts(cell) + 1;
                self.append_journal(&JournalEntry::Started { cell, attempt, id: id.clone() });
                self.append_journal(&JournalEntry::Done { cell, attempt, output: (*out).clone() });
            }
            self.tally().done += 1;
            self.obs.info(
                "runner",
                &format!(
                    "  {exp_id} [{}/{n}] {} {} {}: replayed from artifact cache",
                    i + 1,
                    spec.model,
                    spec.task,
                    spec.setting,
                ),
                &cell_fields(&[("outcome", "replayed-cache".into())]),
            );
            self.obs.record_cell(
                exp_id,
                CellOutcome::ReplayedCache,
                0,
                0,
                cell_started.elapsed().as_secs_f64(),
                0.0,
                0.0,
            );
            return (*out).clone();
        }

        let prior_attempts = self.prior.attempts(cell);
        let max_attempts = opts.max_attempts.max(1);
        let mut last_error = String::new();
        let mut backoff_total = 0u64;
        let mut attempts_made = 0u32;
        for round in 0..max_attempts {
            attempts_made = round + 1;
            let attempt = prior_attempts + round + 1;
            self.append_journal(&JournalEntry::Started { cell, attempt, id: id.clone() });
            let started = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| (spec.run)(ctx, &cfg))) {
                Ok(out) => {
                    let elapsed = started.elapsed().as_secs_f64();
                    if let Some(limit) = opts.max_cell_seconds {
                        if elapsed > limit {
                            last_error = format!(
                                "soft timeout: attempt ran {elapsed:.1}s, over \
                                 --max-cell-seconds {limit}"
                            );
                            self.append_journal(&JournalEntry::Failed {
                                cell,
                                attempt,
                                error: last_error.clone(),
                            });
                            self.obs.warn(
                                "runner",
                                &format!("  {exp_id} [{}/{n}] {label}: {last_error}", i + 1),
                                &cell_fields(&[("error", last_error.as_str().into())]),
                            );
                            // Re-running a cell that just overran its
                            // budget would overrun again; fail it now.
                            break;
                        }
                    }
                    let zeroed = out.zero_wallclock();
                    self.append_journal(&JournalEntry::Done {
                        cell,
                        attempt,
                        output: zeroed.clone(),
                    });
                    // Only successful outputs are cached — a failure must
                    // re-execute next run, never replay.
                    self.artifacts.store(&cell_parts, zeroed);
                    self.tally().done += 1;
                    match &out.stats {
                        Some(s) => self.obs.info(
                            "runner",
                            &format!(
                                "  {exp_id} [{}/{n}] {} {} {}: AC={:.1} F1={:.1}",
                                i + 1,
                                spec.model,
                                spec.task,
                                spec.setting,
                                s.accuracy * 100.0,
                                s.macro_f1 * 100.0,
                            ),
                            &cell_fields(&[
                                ("accuracy", s.accuracy.into()),
                                ("macro_f1", s.macro_f1.into()),
                                ("train_secs", s.train_secs.into()),
                                ("infer_secs", s.infer_secs.into()),
                            ]),
                        ),
                        None => self.obs.info(
                            "runner",
                            &format!(
                                "  {exp_id} [{}/{n}] {} {} {}: done",
                                i + 1,
                                spec.model,
                                spec.task,
                                spec.setting,
                            ),
                            &cell_fields(&[]),
                        ),
                    }
                    // Real timings leave through the sink only; the
                    // serialised output above is already zeroed.
                    let (train, infer) =
                        out.stats.map_or((0.0, 0.0), |s| (s.train_secs, s.infer_secs));
                    self.obs.add_stage("train", train);
                    self.obs.add_stage("infer", infer);
                    self.obs.record_cell(
                        exp_id,
                        CellOutcome::Executed,
                        round + 1,
                        backoff_total,
                        cell_started.elapsed().as_secs_f64(),
                        train,
                        infer,
                    );
                    return out;
                }
                Err(payload) => {
                    last_error = format!("panic: {}", panic_message(payload.as_ref()));
                    self.append_journal(&JournalEntry::Failed {
                        cell,
                        attempt,
                        error: last_error.clone(),
                    });
                    self.obs.warn(
                        "runner",
                        &format!(
                            "  {exp_id} [{}/{n}] {label}: attempt {attempt} failed ({last_error})",
                            i + 1
                        ),
                        &cell_fields(&[
                            ("attempt", attempt.into()),
                            ("error", last_error.as_str().into()),
                        ]),
                    );
                    if round + 1 < max_attempts {
                        // Deterministic, seed-derived backoff: the cell
                        // hash already encodes the seed, so the schedule
                        // is reproducible and no wall-clock value ever
                        // reaches a journal entry or record.
                        let ms = backoff_ms(cell, attempt);
                        backoff_total += ms;
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
            }
        }
        let mut tally = self.tally();
        tally.failed += 1;
        tally.failed_cells.push(format!("{label}: {last_error}"));
        drop(tally);
        self.obs.record_cell(
            exp_id,
            CellOutcome::Failed,
            attempts_made,
            backoff_total,
            cell_started.elapsed().as_secs_f64(),
            0.0,
            0.0,
        );
        CellOutput::empty()
    }

    fn flush_records(&self, dir: &Path, exp_id: &str, records: &[ResultRecord]) {
        if records.is_empty() {
            return;
        }
        let path = dir.join(format!("{exp_id}.json"));
        let json = records_json_pretty(records);
        match atomic_write(&path, json.as_bytes()) {
            Ok(()) => self.obs.info(
                "runner",
                &format!("  [saved] {}", path.display()),
                &[("experiment", exp_id.into()), ("path", path.display().to_string().into())],
            ),
            Err(e) => {
                // A lost record file invalidates the whole comparison:
                // surface it in the manifest and the exit code.
                let msg = format!("{}: {e}", path.display());
                self.obs.error(
                    "runner",
                    &format!("  [error] could not write records: {msg}"),
                    &[("experiment", exp_id.into()), ("error", msg.as_str().into())],
                );
                self.tally().record_write_errors.push(msg);
            }
        }
    }
}

/// Deterministic retry backoff in milliseconds: exponential in the
/// attempt with a seed-derived jitter, capped well under a second. No
/// wall-clock feeds into it, so retry schedules are reproducible.
fn backoff_ms(cell: u64, attempt: u32) -> u64 {
    let jitter = stable_hash64(&[&format!("{cell:016x}"), &attempt.to_string()]) % 20;
    (1u64 << attempt.min(5)) * 5 + jitter
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Convenience wrapper: run one experiment in its own session. The
/// `repro` front-end uses `Registry::run` instead so an `all` sweep
/// shares a single journal and manifest.
pub fn run_experiment(
    exp: &dyn Experiment,
    ctx: &RunContext,
    opts: &RunOptions,
) -> Result<RunSummary, RunError> {
    let session = start_session(ctx, opts)?;
    session.run_experiment(exp, ctx, opts);
    Ok(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::context::Preset;
    use crate::engine::registry::RecordStats;

    struct Synthetic;
    impl Experiment for Synthetic {
        fn id(&self) -> &'static str {
            "synthetic"
        }
        fn description(&self) -> &'static str {
            "seed-echo cells for runner tests"
        }
        fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
            (0..8)
                .map(|i| {
                    CellSpec::new("T", format!("m{i}"), "s", |_ctx, cfg| {
                        // Echo the derived seed through the metrics so a
                        // scheduling bug (wrong seed, wrong slot) is
                        // visible in the collected outputs.
                        CellOutput::stats(RecordStats {
                            accuracy: (cfg.seed % 1000) as f64 / 1000.0,
                            macro_f1: (cfg.seed % 97) as f64 / 97.0,
                            train_secs: 1.0,
                            infer_secs: 1.0,
                        })
                    })
                })
                .collect()
        }
        fn render(&self, _ctx: &RunContext, _outputs: &[CellOutput]) {}
    }

    fn collect(jobs: usize) -> Vec<(f64, f64)> {
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let cells = Synthetic.cells(&ctx);
        let opts = RunOptions { jobs, out_dir: None, ..Default::default() };
        let session = start_session(&ctx, &opts).expect("no out dir, no journal to fail");
        session
            .execute_cells("synthetic", &cells, &ctx, jobs, &opts)
            .into_iter()
            .map(|o| {
                let s = o.stats.unwrap();
                (s.accuracy, s.macro_f1)
            })
            .collect()
    }

    #[test]
    fn parallel_execution_matches_serial_in_order_and_value() {
        let serial = collect(1);
        for jobs in [2, 4, 8] {
            assert_eq!(collect(jobs), serial, "jobs={jobs} must match serial");
        }
    }

    /// Half the grid panics while the other half is mid-flight: the
    /// regression case for the `execute_cells` slot mutex, which used to
    /// `.expect("runner slots poisoned")` and would abort the whole
    /// sweep on poisoning instead of recovering like `tally()` does.
    struct Hostile;
    impl Experiment for Hostile {
        fn id(&self) -> &'static str {
            "hostile"
        }
        fn description(&self) -> &'static str {
            "panicking cells interleaved with slow healthy ones"
        }
        fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
            (0..8)
                .map(|i| {
                    CellSpec::new("T", format!("m{i}"), "s", move |_ctx, cfg| {
                        if i % 2 == 1 {
                            panic!("hostile cell {i}");
                        }
                        // Keep healthy cells in flight while the hostile
                        // ones panic on sibling workers.
                        std::thread::sleep(Duration::from_millis(10));
                        CellOutput::stats(RecordStats::of(
                            (cfg.seed % 1000) as f64 / 1000.0,
                            (cfg.seed % 97) as f64 / 97.0,
                        ))
                    })
                })
                .collect()
        }
        fn render(&self, _ctx: &RunContext, _outputs: &[CellOutput]) {}
    }

    #[test]
    fn hostile_panics_mid_flight_do_not_abort_the_parallel_sweep() {
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let cells = Hostile.cells(&ctx);
        let opts = RunOptions { jobs: 4, out_dir: None, ..Default::default() };
        let session = start_session(&ctx, &opts).expect("no out dir, no journal to fail");
        let outputs = session.execute_cells("hostile", &cells, &ctx, 4, &opts);
        assert_eq!(outputs.len(), 8, "every slot filled despite panics");
        for (i, out) in outputs.iter().enumerate() {
            if i % 2 == 1 {
                assert!(out.stats.is_none(), "hostile cell {i} must yield an empty output");
            } else {
                let s = out.stats.expect("healthy cell kept its output");
                let seed = ctx.cell_config("hostile", "T", &format!("m{i}"), "s").seed;
                assert_eq!(s.accuracy, (seed % 1000) as f64 / 1000.0, "slot {i} holds its cell");
            }
        }
        let summary = session.finish();
        assert_eq!((summary.cells_done, summary.cells_failed), (4, 4));
    }

    struct PanicsOnce;
    impl Experiment for PanicsOnce {
        fn id(&self) -> &'static str {
            "panics"
        }
        fn description(&self) -> &'static str {
            "one deliberately panicking cell"
        }
        fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
            vec![
                CellSpec::new("T", "ok", "s", |_ctx, cfg| {
                    CellOutput::stats(RecordStats {
                        accuracy: (cfg.seed % 100) as f64 / 100.0,
                        macro_f1: 0.5,
                        train_secs: 0.0,
                        infer_secs: 0.0,
                    })
                }),
                CellSpec::new("T", "boom", "s", |_ctx, _cfg| -> CellOutput {
                    panic!("deliberate test panic");
                }),
            ]
        }
        fn render(&self, _ctx: &RunContext, outputs: &[CellOutput]) {
            // Deliberately assumes every cell has stats, like several
            // real render steps: must not take down the run when the
            // failed cell's output is empty.
            for out in outputs {
                let _ = out.stats.expect("stats");
            }
        }
    }

    #[test]
    fn panicking_cell_fails_alone_and_is_retried_with_attempt_count() {
        let dir = std::env::temp_dir().join("debunk-runner-panic-test");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let opts = RunOptions { out_dir: Some(dir.clone()), max_attempts: 2, ..Default::default() };
        let summary = run_experiment(&PanicsOnce, &ctx, &opts).expect("session starts");
        assert_eq!(summary.cells_total, 2);
        assert_eq!(summary.cells_done, 1, "the healthy cell finished");
        assert_eq!(summary.cells_failed, 1, "only the panicking cell failed");
        assert!(!summary.ok());
        assert!(summary.failed_cells[0].contains("boom"));
        assert!(summary.failed_cells[0].contains("deliberate test panic"));

        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(
            journal.matches("\"status\":\"failed\"").count(),
            2,
            "both attempts journalled: {journal}"
        );
        assert_eq!(journal.matches("\"status\":\"done\"").count(), 1);

        // The manifest reports the same story, atomically written.
        let manifest = RunManifest::from_json(
            &std::fs::read_to_string(dir.join("run-manifest.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(manifest.cells_failed, 1);
        assert_eq!(manifest.cells_done, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_replays_done_cells_without_rerunning() {
        let dir = std::env::temp_dir().join("debunk-runner-resume-test");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let opts = RunOptions { out_dir: Some(dir.clone()), ..Default::default() };
        let first = run_experiment(&Synthetic, &ctx, &opts).expect("fresh run");
        assert_eq!((first.cells_done, first.cells_resumed), (8, 0));
        let records = std::fs::read_to_string(dir.join("synthetic.json")).unwrap();

        let resumed_opts = RunOptions { resume: true, ..opts };
        let second = run_experiment(&Synthetic, &ctx, &resumed_opts).expect("resumed run");
        assert_eq!((second.cells_done, second.cells_resumed), (8, 8), "all cells replayed");
        let replayed = std::fs::read_to_string(dir.join("synthetic.json")).unwrap();
        assert_eq!(records, replayed, "replayed records byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soft_timeout_marks_overrunning_cells_failed() {
        struct Slow;
        impl Experiment for Slow {
            fn id(&self) -> &'static str {
                "slow"
            }
            fn description(&self) -> &'static str {
                "sleeps past the soft budget"
            }
            fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
                vec![CellSpec::new("T", "sleepy", "s", |_ctx, _cfg| {
                    std::thread::sleep(Duration::from_millis(30));
                    CellOutput::empty()
                })]
            }
            fn render(&self, _ctx: &RunContext, _outputs: &[CellOutput]) {}
        }
        let dir = std::env::temp_dir().join("debunk-runner-timeout-test");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let opts = RunOptions {
            out_dir: Some(dir.clone()),
            max_cell_seconds: Some(0.001),
            ..Default::default()
        };
        let summary = run_experiment(&Slow, &ctx, &opts).expect("session starts");
        assert_eq!(summary.cells_failed, 1);
        assert!(summary.failed_cells[0].contains("soft timeout"));
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(journal.contains("soft timeout"), "timeout recorded in journal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 1..10 {
            let a = backoff_ms(0xabc, attempt);
            assert_eq!(a, backoff_ms(0xabc, attempt), "same inputs, same backoff");
            assert!(a < 200, "backoff stays well under a second: {a}ms");
        }
        assert_ne!(backoff_ms(1, 1), backoff_ms(2, 1), "seed-derived jitter differs per cell");
    }
}
