//! Cell execution: serial or on a thread pool, with deterministic
//! output either way.
//!
//! Determinism contract: each cell's seed depends only on its identity
//! (see [`RunContext::cell_seed`]), outputs are collected by cell index
//! (not completion order), and wall-clock timing fields are zeroed in
//! serialised records. `--jobs 4` therefore emits byte-identical result
//! JSON to `--jobs 1`.

use crate::engine::context::RunContext;
use crate::engine::registry::{CellOutput, CellSpec, Experiment};
use crate::report::ResultRecord;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the runner executes an experiment.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for independent cells (1 = in-line, serial).
    pub jobs: usize,
    /// Threads for the nn matmul kernels inside each cell. `None`
    /// splits the `jobs` budget automatically: whatever `jobs` leaves
    /// unused at the cell level goes to the kernels. Kernel parallelism
    /// is row-partitioned and bit-identical to serial, so this never
    /// affects results.
    pub kernel_threads: Option<usize>,
    /// Where result-record JSON files are written; `None` disables
    /// serialisation (the calibration probes don't record).
    pub out_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions { jobs: 1, kernel_threads: None, out_dir: Some(PathBuf::from("results")) }
    }
}

/// Execute one experiment: run its cells (possibly in parallel), write
/// its result records, then render its tables/charts.
pub fn run_experiment(exp: &dyn Experiment, ctx: &RunContext, opts: &RunOptions) {
    let cells = exp.cells(ctx);
    let jobs = opts.jobs.max(1);
    let cell_jobs = jobs.min(cells.len().max(1));
    let kernel = opts.kernel_threads.unwrap_or_else(|| (jobs / cell_jobs).max(1));
    nn::set_kernel_threads(kernel);
    let outputs = execute_cells(exp.id(), &cells, ctx, cell_jobs);

    let records: Vec<ResultRecord> = cells
        .iter()
        .zip(&outputs)
        .filter(|(spec, _)| spec.emit_record)
        .filter_map(|(spec, out)| {
            out.stats.map(|s| ResultRecord {
                experiment: exp.id().into(),
                task: spec.task.clone(),
                model: spec.model.clone(),
                setting: spec.setting.clone(),
                accuracy: s.accuracy * 100.0,
                macro_f1: s.macro_f1 * 100.0,
                // Wall-clock timings are nondeterministic; zero them so
                // records are byte-identical across serial/parallel
                // runs. Real timings stay in RecordStats for render.
                train_secs: 0.0,
                infer_secs: 0.0,
            })
        })
        .collect();
    if let Some(dir) = &opts.out_dir {
        flush_records(dir, exp.id(), &records);
    }

    exp.render(ctx, &outputs);
}

fn execute_cells(
    exp_id: &str,
    cells: &[CellSpec],
    ctx: &RunContext,
    jobs: usize,
) -> Vec<CellOutput> {
    let n = cells.len();
    let run_one = |i: usize| -> CellOutput {
        let spec = &cells[i];
        let cfg = ctx.cell_config(exp_id, &spec.task, &spec.model, &spec.setting);
        let out = (spec.run)(ctx, &cfg);
        match &out.stats {
            Some(s) => eprintln!(
                "  {exp_id} [{}/{n}] {} {} {}: AC={:.1} F1={:.1}",
                i + 1,
                spec.model,
                spec.task,
                spec.setting,
                s.accuracy * 100.0,
                s.macro_f1 * 100.0,
            ),
            None => eprintln!(
                "  {exp_id} [{}/{n}] {} {} {}: done",
                i + 1,
                spec.model,
                spec.task,
                spec.setting,
            ),
        }
        out
    };

    if jobs <= 1 || n <= 1 {
        return (0..n).map(run_one).collect();
    }

    // std-only work-stealing-ish pool: an atomic next-cell index and a
    // slot vector filled by cell index, so collection order never
    // depends on completion order.
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellOutput>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run_one(i);
                slots.lock().expect("runner slots poisoned")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("runner slots poisoned")
        .into_iter()
        .map(|o| o.expect("every cell ran"))
        .collect()
}

fn flush_records(dir: &Path, exp_id: &str, records: &[ResultRecord]) {
    if records.is_empty() {
        return;
    }
    std::fs::create_dir_all(dir).ok();
    let path = dir.join(format!("{exp_id}.json"));
    let json = serde_json::to_string_pretty(records).expect("serialise records");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| eprintln!("warning: could not write {}: {e}", path.display()));
    eprintln!("  [saved] {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::context::Preset;
    use crate::engine::registry::RecordStats;

    struct Synthetic;
    impl Experiment for Synthetic {
        fn id(&self) -> &'static str {
            "synthetic"
        }
        fn description(&self) -> &'static str {
            "seed-echo cells for runner tests"
        }
        fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
            (0..8)
                .map(|i| {
                    CellSpec::new("T", format!("m{i}"), "s", |_ctx, cfg| {
                        // Echo the derived seed through the metrics so a
                        // scheduling bug (wrong seed, wrong slot) is
                        // visible in the collected outputs.
                        CellOutput::stats(RecordStats {
                            accuracy: (cfg.seed % 1000) as f64 / 1000.0,
                            macro_f1: (cfg.seed % 97) as f64 / 97.0,
                            train_secs: 1.0,
                            infer_secs: 1.0,
                        })
                    })
                })
                .collect()
        }
        fn render(&self, _ctx: &RunContext, _outputs: &[CellOutput]) {}
    }

    fn collect(jobs: usize) -> Vec<(f64, f64)> {
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let cells = Synthetic.cells(&ctx);
        execute_cells("synthetic", &cells, &ctx, jobs)
            .into_iter()
            .map(|o| {
                let s = o.stats.unwrap();
                (s.accuracy, s.macro_f1)
            })
            .collect()
    }

    #[test]
    fn parallel_execution_matches_serial_in_order_and_value() {
        let serial = collect(1);
        for jobs in [2, 4, 8] {
            assert_eq!(collect(jobs), serial, "jobs={jobs} must match serial");
        }
    }
}
