//! Process-wide pre-trained-encoder cache with optional on-disk
//! checkpoints.
//!
//! Every encoder build is keyed by its pre-training provenance
//! ([`encoders::checkpoint::PretrainKey`]). Within a process each
//! provenance is built at most once, even when cells request it
//! concurrently from worker threads; with a cache directory configured
//! (`--cache-dir`) the built encoder is also persisted, so subsequent
//! invocations skip pre-training entirely — no `[pretrain]` log line is
//! emitted for a checkpoint served from memory or disk.

use crate::artifact::PathLock;
use crate::obs::ObsSink;
use encoders::checkpoint::{load_checkpoint, save_checkpoint, PretrainKey};
use encoders::model::EncoderModel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Build-once encoder cache, optionally backed by a checkpoint dir.
pub struct EncoderStore {
    cache_dir: Option<PathBuf>,
    slots: Mutex<HashMap<u64, Arc<OnceLock<EncoderModel>>>>,
}

impl EncoderStore {
    /// New store; `cache_dir` enables on-disk checkpoints.
    pub fn new(cache_dir: Option<PathBuf>) -> EncoderStore {
        EncoderStore { cache_dir, slots: Mutex::new(HashMap::new()) }
    }

    /// Get the encoder for `key`, building it with `build` at most once
    /// per process. Concurrent callers for the *same* key block until
    /// the first build finishes; callers for different keys proceed in
    /// parallel.
    pub fn get_or_build(
        &self,
        key: &PretrainKey,
        obs: &ObsSink,
        build: impl FnOnce() -> EncoderModel,
    ) -> EncoderModel {
        let slot = self.slots.lock().entry(key.cache_key()).or_default().clone();
        slot.get_or_init(|| self.load_or_build(key, obs, build)).clone()
    }

    fn load_or_build(
        &self,
        key: &PretrainKey,
        obs: &ObsSink,
        build: impl FnOnce() -> EncoderModel,
    ) -> EncoderModel {
        let Some(dir) = self.cache_dir.clone() else {
            obs.info(
                "checkpoint",
                &format!("  [pretrain] {}", key.provenance()),
                &[("provenance", key.provenance().into())],
            );
            return obs.time_stage("pretrain", build);
        };
        let path = dir.join(key.file_name());
        // Cross-process single-flight, same protocol as the artifact
        // cache (crate::artifact::PathLock): with several worker
        // processes sharing one --cache-dir, exactly one pre-trains each
        // provenance; the rest wait for the tmp+rename publication and
        // load it. A lock whose holder died is stolen.
        let mut build = Some(build);
        let mut warned_corrupt = false;
        loop {
            if path.exists() {
                match load_checkpoint(&path, key) {
                    Ok(model) => {
                        obs.debug(
                            "checkpoint",
                            &format!("  [checkpoint] loaded {}", path.display()),
                            &[("path", path.display().to_string().into())],
                        );
                        return model;
                    }
                    Err(e) if !warned_corrupt => {
                        warned_corrupt = true;
                        obs.warn(
                            "checkpoint",
                            &format!("  [checkpoint] ignoring {}: {e}", path.display()),
                            &[("path", path.display().to_string().into())],
                        );
                    }
                    Err(_) => {}
                }
            }
            if let Some(_guard) = PathLock::try_acquire(&path) {
                // Re-probe under the lock: the previous holder may have
                // published while we acquired. A corrupt checkpoint
                // falls through to the rebuild, which replaces it.
                if path.exists() {
                    if let Ok(model) = load_checkpoint(&path, key) {
                        return model;
                    }
                }
                obs.info(
                    "checkpoint",
                    &format!("  [pretrain] {}", key.provenance()),
                    &[("provenance", key.provenance().into())],
                );
                let model =
                    obs.time_stage("pretrain", build.take().expect("builder invoked at most once"));
                // Write to a temp sibling and rename so a crash mid-save
                // never leaves a torn checkpoint at the final path — the
                // loader would otherwise trust a half-written file.
                let tmp = path.with_extension(format!("json.{}.tmp", std::process::id()));
                let saved = std::fs::create_dir_all(&dir)
                    .and_then(|()| save_checkpoint(&tmp, key, &model))
                    .and_then(|()| std::fs::rename(&tmp, &path));
                match saved {
                    Ok(()) => obs.debug(
                        "checkpoint",
                        &format!("  [checkpoint] saved {}", path.display()),
                        &[("path", path.display().to_string().into())],
                    ),
                    Err(e) => {
                        std::fs::remove_file(&tmp).ok();
                        obs.warn(
                            "checkpoint",
                            &format!("  [checkpoint] could not save {}: {e}", path.display()),
                            &[("path", path.display().to_string().into())],
                        );
                    }
                }
                return model;
            }
            if !PathLock::steal_if_stale(&path) {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoders::model::ModelKind;
    use encoders::pcap_encoder::PretrainBudget;

    fn key(seed: u64) -> PretrainKey {
        PretrainKey {
            model: "ET-BERT".into(),
            pretrained: false,
            variant: None,
            budget: PretrainBudget::default(),
            seed,
        }
    }

    #[test]
    fn builds_once_per_key() {
        let store = EncoderStore::new(None);
        let obs = crate::obs::global();
        let mut builds = 0;
        for _ in 0..3 {
            store.get_or_build(&key(1), &obs, || {
                builds += 1;
                EncoderModel::new(ModelKind::EtBert, 1)
            });
        }
        assert_eq!(builds, 1);
        store.get_or_build(&key(2), &obs, || {
            builds += 1;
            EncoderModel::new(ModelKind::EtBert, 2)
        });
        assert_eq!(builds, 2, "a different key builds again");
    }

    #[test]
    fn disk_cache_survives_store_restart() {
        let dir = std::env::temp_dir().join("debunk-encoder-store-test");
        std::fs::remove_dir_all(&dir).ok();
        let k = key(7);
        let obs = crate::obs::global();
        let first = EncoderStore::new(Some(dir.clone()))
            .get_or_build(&k, &obs, || EncoderModel::new(ModelKind::EtBert, 7));
        // A fresh store (fresh process, conceptually) must load from
        // disk instead of invoking the builder.
        let second = EncoderStore::new(Some(dir.clone()))
            .get_or_build(&k, &obs, || panic!("must not re-pretrain: checkpoint exists"));
        assert_eq!(first.to_json(), second.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }
}
