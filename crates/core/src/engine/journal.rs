//! Crash-safe run journal: an append-only, line-oriented JSONL log of
//! every cell a suite run starts, finishes or fails, plus the atomic
//! `run-manifest.json` summary.
//!
//! Why this exists: a multi-minute `repro all` sweep used to be all or
//! nothing — a panic in one cell, a SIGKILL, or a power cut lost every
//! finished cell. The journal records each cell's identity hash
//! (experiment id + task/model/setting + derived seed), its status
//! transitions (`started` → `done`/`failed`) with attempt counts, and
//! the finished [`CellOutput`]. On `--resume`, completed cells are
//! replayed from the journal byte-identically (the PR 1 determinism
//! contract holds at any `--jobs`) and only missing or failed cells
//! execute.
//!
//! Format notes:
//!
//! - One JSON object per line, appended with a single `write` + flush,
//!   so a crash can only damage the final line. The loader tolerates a
//!   truncated final line (the in-flight cell simply re-runs) but
//!   rejects corruption anywhere else with a line-numbered error.
//! - The first line is a `run` header carrying the run fingerprint
//!   (seed, scale, budget, hyper-parameters). Resuming under a
//!   different configuration is a hard error, not a silent mix of
//!   incompatible cells. Each resumed session appends another header,
//!   leaving an audit trail of attempts.
//! - Serialisation is hand-rolled and deterministic: `u64` values are
//!   fixed-width hex strings (JSON numbers lose precision past 2^53),
//!   floats use the shortest round-trip form, and wall-clock timings
//!   are zeroed before a `done` entry is written — journal bytes never
//!   depend on scheduling or the clock, matching the record contract.

use crate::engine::registry::{CellOutput, RecordStats};
use encoders::checkpoint::stable_hash64;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal file name under `--out-dir`.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Manifest file name under `--out-dir`.
pub const MANIFEST_FILE: &str = "run-manifest.json";

// ---------------------------------------------------------------------------
// Deterministic JSON helpers (shared with the record writer in `report`)
// ---------------------------------------------------------------------------

/// Escape a string into a JSON string literal (without the quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` the way serde_json/Ryu does for the values that occur
/// here: integral values keep one decimal (`1.0`), everything else uses
/// the shortest string that parses back to the same bits. Non-finite
/// values (a diverged fold) become `null` rather than invalid JSON.
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e16 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// A parsed JSON value. Only what the journal and manifest need — no
/// serde dependency, so the journal stays functional (and testable) in
/// minimal environments and its byte format is fully pinned down here.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one JSON document. Fails with a human-readable reason on any
/// malformed input; never panics, whatever the bytes (corrupt journals
/// are exactly the input this must survive).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth > 32 {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        match text.parse::<f64>() {
            // `from_str` maps overflow to ±inf; JSON has no infinities,
            // so an overflowing literal is corrupt, not a huge value.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(format!("invalid number '{text}' at offset {start}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: journal writes only BMP
                            // escapes, but corrupt bytes may not.
                            let c = char::from_u32(cp).unwrap_or('\u{fffd}');
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str so
                    // boundaries are valid by construction.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-utf8 \\u escape".to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end - 1; // caller advances one more
        Ok(cp)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}

/// Write `bytes` to `path` atomically: write a sibling temp file, flush,
/// then rename over the target. Readers never observe a torn file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Cell identity and journal entries
// ---------------------------------------------------------------------------

/// Stable identity of one cell: the `ResultRecord` coordinates plus the
/// derived cell seed. The hash of this is the journal's cell key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellId {
    /// Experiment id, e.g. "table3".
    pub experiment: String,
    /// Task name.
    pub task: String,
    /// Model name.
    pub model: String,
    /// Setting.
    pub setting: String,
    /// The cell's derived seed (see `RunContext::cell_seed`).
    pub seed: u64,
}

impl CellId {
    /// Identity hash used as the journal key. Seed participates, so a
    /// journal written under one base seed never replays into another.
    pub fn hash(&self) -> u64 {
        stable_hash64(&[
            &self.experiment,
            &self.task,
            &self.model,
            &self.setting,
            &format!("{:016x}", self.seed),
        ])
    }
}

/// One journal line.
#[derive(Debug, Clone)]
pub enum JournalEntry {
    /// Session header: every session (fresh or resumed) appends one.
    Run {
        /// Hash of the run configuration (seed, scale, budget, cfg).
        fingerprint: u64,
    },
    /// A cell attempt began.
    Started {
        /// Cell identity hash.
        cell: u64,
        /// 1-based attempt number, cumulative across resumes.
        attempt: u32,
        /// Full identity, for humans reading the journal.
        id: CellId,
    },
    /// A cell attempt finished; `output` has wall-clock timings zeroed.
    Done {
        /// Cell identity hash.
        cell: u64,
        /// Attempt that succeeded.
        attempt: u32,
        /// The finished output (replayed on `--resume`).
        output: CellOutput,
    },
    /// A cell attempt failed (panic payload or soft-timeout message).
    Failed {
        /// Cell identity hash.
        cell: u64,
        /// Attempt that failed.
        attempt: u32,
        /// Captured panic payload or timeout description.
        error: String,
    },
}

fn output_to_json(out: &CellOutput) -> String {
    let mut s = String::from("{\"stats\":");
    match &out.stats {
        // Timings are zeroed at append time; only the deterministic
        // metrics are stored.
        Some(st) => {
            s.push_str(&format!(
                "{{\"accuracy\":{},\"macro_f1\":{}}}",
                format_f64(st.accuracy),
                format_f64(st.macro_f1)
            ));
        }
        None => s.push_str("null"),
    }
    s.push_str(",\"values\":[");
    for (i, (k, v)) in out.values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[\"{}\",{}]", escape_json(k), format_f64(*v)));
    }
    s.push_str("],\"lines\":[");
    for (i, line) in out.lines.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\"", escape_json(line)));
    }
    s.push_str("]}");
    s
}

fn output_from_json(j: &Json) -> Result<CellOutput, String> {
    let stats = match j.get("stats").ok_or("missing 'stats'")? {
        Json::Null => None,
        st => Some(RecordStats::of(field_f64(st, "accuracy")?, field_f64(st, "macro_f1")?)),
    };
    let mut values = Vec::new();
    if let Json::Arr(items) = j.get("values").ok_or("missing 'values'")? {
        for item in items {
            match item {
                Json::Arr(pair) if pair.len() == 2 => {
                    let k = pair[0].str().ok_or("value key not a string")?.to_string();
                    let v = match &pair[1] {
                        Json::Num(n) => *n,
                        Json::Null => f64::NAN,
                        _ => return Err("value entry not a number".to_string()),
                    };
                    values.push((k, v));
                }
                _ => return Err("malformed values entry".to_string()),
            }
        }
    } else {
        return Err("'values' not an array".to_string());
    }
    let mut lines = Vec::new();
    if let Json::Arr(items) = j.get("lines").ok_or("missing 'lines'")? {
        for item in items {
            lines.push(item.str().ok_or("line not a string")?.to_string());
        }
    } else {
        return Err("'lines' not an array".to_string());
    }
    Ok(CellOutput { stats, values, lines })
}

/// Successful cell outputs are themselves content-addressed artifacts:
/// keyed by (run fingerprint, cell identity), they let a warm
/// `--cache-dir` run replay finished cells across *processes*, exactly
/// like `--resume` replays them from the journal within one output
/// directory. The payload reuses the journal's deterministic JSON codec
/// (timings zeroed before store), so a cached cell is byte-identical to
/// an executed one.
impl crate::artifact::Artifact for CellOutput {
    const STAGE: &'static str = "cell";

    fn to_bytes(&self) -> Vec<u8> {
        output_to_json(self).into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<CellOutput, String> {
        let s = std::str::from_utf8(bytes).map_err(|e| format!("not utf-8: {e}"))?;
        output_from_json(&parse_json(s)?)
    }
}

fn field_f64(j: &Json, key: &str) -> Result<f64, String> {
    match j.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        Some(Json::Null) => Ok(f64::NAN),
        _ => Err(format!("missing or non-numeric '{key}'")),
    }
}

fn field_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key).and_then(Json::str).ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn field_hex64(j: &Json, key: &str) -> Result<u64, String> {
    let s = field_str(j, key)?;
    u64::from_str_radix(s, 16).map_err(|_| format!("'{key}' is not a hex u64"))
}

fn field_attempt(j: &Json) -> Result<u32, String> {
    let n = j.get("attempt").and_then(Json::num).ok_or("missing 'attempt'")?;
    if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
        return Err("'attempt' out of range".to_string());
    }
    Ok(n as u32)
}

impl JournalEntry {
    /// Serialise to one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            JournalEntry::Run { fingerprint } => {
                format!("{{\"status\":\"run\",\"version\":1,\"fingerprint\":\"{fingerprint:016x}\"}}")
            }
            JournalEntry::Started { cell, attempt, id } => format!(
                "{{\"status\":\"started\",\"cell\":\"{cell:016x}\",\"attempt\":{attempt},\
                 \"experiment\":\"{}\",\"task\":\"{}\",\"model\":\"{}\",\"setting\":\"{}\",\
                 \"seed\":\"{:016x}\"}}",
                escape_json(&id.experiment),
                escape_json(&id.task),
                escape_json(&id.model),
                escape_json(&id.setting),
                id.seed,
            ),
            JournalEntry::Done { cell, attempt, output } => format!(
                "{{\"status\":\"done\",\"cell\":\"{cell:016x}\",\"attempt\":{attempt},\"output\":{}}}",
                output_to_json(output)
            ),
            JournalEntry::Failed { cell, attempt, error } => format!(
                "{{\"status\":\"failed\",\"cell\":\"{cell:016x}\",\"attempt\":{attempt},\
                 \"error\":\"{}\"}}",
                escape_json(error)
            ),
        }
    }

    /// Parse one journal line.
    pub fn from_line(line: &str) -> Result<JournalEntry, String> {
        let j = parse_json(line)?;
        match field_str(&j, "status")? {
            "run" => Ok(JournalEntry::Run { fingerprint: field_hex64(&j, "fingerprint")? }),
            "started" => Ok(JournalEntry::Started {
                cell: field_hex64(&j, "cell")?,
                attempt: field_attempt(&j)?,
                id: CellId {
                    experiment: field_str(&j, "experiment")?.to_string(),
                    task: field_str(&j, "task")?.to_string(),
                    model: field_str(&j, "model")?.to_string(),
                    setting: field_str(&j, "setting")?.to_string(),
                    seed: field_hex64(&j, "seed")?,
                },
            }),
            "done" => Ok(JournalEntry::Done {
                cell: field_hex64(&j, "cell")?,
                attempt: field_attempt(&j)?,
                output: output_from_json(j.get("output").ok_or("missing 'output'")?)?,
            }),
            "failed" => Ok(JournalEntry::Failed {
                cell: field_hex64(&j, "cell")?,
                attempt: field_attempt(&j)?,
                error: field_str(&j, "error")?.to_string(),
            }),
            other => Err(format!("unknown status '{other}'")),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a journal could not be opened or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(PathBuf, io::Error),
    /// A non-final line failed to parse — the file was edited or the
    /// storage corrupted it; resuming would silently lose cells.
    Corrupt {
        /// Journal path.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// Parser diagnosis.
        reason: String,
    },
    /// The file has entries but no `run` header line first.
    MissingHeader(PathBuf),
    /// The journal was written under a different configuration.
    FingerprintMismatch {
        /// Journal path.
        path: PathBuf,
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint found in the journal.
        found: u64,
    },
    /// Two `done` entries for the same cell disagree — the journal is
    /// not a record of one deterministic run and must not be replayed.
    ConflictingDone {
        /// Journal path.
        path: PathBuf,
        /// 1-based line number of the second, conflicting entry.
        line: usize,
        /// Cell identity hash.
        cell: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(path, e) => write!(f, "journal {}: {e}", path.display()),
            JournalError::Corrupt { path, line, reason } => {
                write!(f, "journal {} line {line} is corrupt: {reason}", path.display())
            }
            JournalError::MissingHeader(path) => {
                write!(f, "journal {} has no run header line", path.display())
            }
            JournalError::FingerprintMismatch { path, expected, found } => write!(
                f,
                "journal {} was written by a different run configuration \
                 (journal fingerprint {found:016x}, this run is {expected:016x}); \
                 rerun without --resume or use a fresh --out dir",
                path.display()
            ),
            JournalError::ConflictingDone { path, line, cell } => write!(
                f,
                "journal {} line {line} has a conflicting 'done' entry for cell {cell:016x}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

// ---------------------------------------------------------------------------
// Replay state
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CellState {
    attempts: u32,
    done: Option<(CellOutput, String)>, // output + its serialised form
    last_error: Option<String>,
}

/// Replay state folded from a journal: which cells finished (and their
/// outputs), and how many attempts each cell has consumed.
#[derive(Debug, Default)]
pub struct JournalState {
    cells: HashMap<u64, CellState>,
}

impl JournalState {
    /// Fold journal `content` (the raw file bytes as UTF-8) into replay
    /// state, validating the header against `fingerprint`.
    pub fn parse(
        content: &str,
        path: &Path,
        fingerprint: u64,
    ) -> Result<JournalState, JournalError> {
        let mut state = JournalState::default();
        // A line is complete only if newline-terminated; a crash mid-
        // append leaves a partial final fragment which is not replayed.
        let complete_len = content.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let complete = &content[..complete_len];
        let n_lines = complete.lines().count();
        let mut saw_header = false;
        for (idx, line) in complete.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = match JournalEntry::from_line(line) {
                Ok(e) => e,
                // A parse failure on the final complete line is the
                // crash-truncation case (the newline made it to disk
                // but the line body did not, or vice versa): drop it.
                Err(_) if idx + 1 == n_lines => break,
                Err(reason) => {
                    return Err(JournalError::Corrupt {
                        path: path.to_path_buf(),
                        line: idx + 1,
                        reason,
                    })
                }
            };
            match entry {
                JournalEntry::Run { fingerprint: found } => {
                    if found != fingerprint {
                        return Err(JournalError::FingerprintMismatch {
                            path: path.to_path_buf(),
                            expected: fingerprint,
                            found,
                        });
                    }
                    saw_header = true;
                }
                _ if !saw_header => return Err(JournalError::MissingHeader(path.to_path_buf())),
                JournalEntry::Started { cell, attempt, .. } => {
                    let c = state.cells.entry(cell).or_default();
                    c.attempts = c.attempts.max(attempt);
                }
                JournalEntry::Done { cell, attempt, output } => {
                    let serialized = output_to_json(&output);
                    let c = state.cells.entry(cell).or_default();
                    c.attempts = c.attempts.max(attempt);
                    match &c.done {
                        // Duplicated identical entries are harmless
                        // (e.g. a replayed block of the file); a
                        // disagreement means the journal lies.
                        Some((_, prev)) if *prev != serialized => {
                            return Err(JournalError::ConflictingDone {
                                path: path.to_path_buf(),
                                line: idx + 1,
                                cell,
                            });
                        }
                        Some(_) => {}
                        None => c.done = Some((output, serialized)),
                    }
                }
                JournalEntry::Failed { cell, attempt, error } => {
                    let c = state.cells.entry(cell).or_default();
                    c.attempts = c.attempts.max(attempt);
                    c.last_error = Some(error);
                }
            }
        }
        Ok(state)
    }

    /// The finished output for a cell, if the journal has one.
    pub fn done_output(&self, cell: u64) -> Option<&CellOutput> {
        self.cells.get(&cell).and_then(|c| c.done.as_ref()).map(|(out, _)| out)
    }

    /// Attempts already consumed by a cell (0 if never started).
    pub fn attempts(&self, cell: u64) -> u32 {
        self.cells.get(&cell).map(|c| c.attempts).unwrap_or(0)
    }

    /// Last recorded failure for a cell, if any.
    pub fn last_error(&self, cell: u64) -> Option<&str> {
        self.cells.get(&cell).and_then(|c| c.last_error.as_deref())
    }

    /// Number of cells with a finished output.
    pub fn n_done(&self) -> usize {
        self.cells.values().filter(|c| c.done.is_some()).count()
    }
}

// ---------------------------------------------------------------------------
// The journal itself
// ---------------------------------------------------------------------------

/// Append-only journal writer. Thread-safe: worker threads append
/// concurrently; each entry is a single buffered write + flush.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Start a fresh journal at `path` (truncating any previous one)
    /// and write the session header.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let file = File::create(path).map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        let journal = Journal { file: Mutex::new(file), path: path.to_path_buf() };
        journal
            .append(&JournalEntry::Run { fingerprint })
            .map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        Ok(journal)
    }

    /// Open `path` for resumption: fold its entries into replay state
    /// (validating the fingerprint), then reopen in append mode and log
    /// a fresh session header. A missing or empty file resumes as a
    /// fresh run.
    pub fn resume(path: &Path, fingerprint: u64) -> Result<(Journal, JournalState), JournalError> {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(JournalError::Io(path.to_path_buf(), e)),
        };
        let state = JournalState::parse(&content, path, fingerprint)?;
        // A crash can leave a half-written final line. Trim the file to
        // its last complete line before appending, or the next entry
        // would fuse with the fragment into a corrupt line that poisons
        // every later resume.
        let complete = content.rfind('\n').map_or(0, |i| i + 1);
        if complete < content.len() {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
            file.set_len(complete as u64).map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        let journal = Journal { file: Mutex::new(file), path: path.to_path_buf() };
        journal
            .append(&JournalEntry::Run { fingerprint })
            .map_err(|e| JournalError::Io(path.to_path_buf(), e))?;
        Ok((journal, state))
    }

    /// Append one entry: a single `write` of the full line, flushed, so
    /// concurrent appends never interleave and a crash can only damage
    /// the final line.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let mut line = entry.to_line();
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stable hash of the journal's current on-disk contents (recorded
    /// in the manifest so a journal/manifest pair is self-checking).
    pub fn content_hash(&self) -> io::Result<u64> {
        let content = std::fs::read_to_string(&self.path)?;
        Ok(stable_hash64(&[&content]))
    }
}

// ---------------------------------------------------------------------------
// Run manifest
// ---------------------------------------------------------------------------

/// Summary of one suite run, written atomically as
/// `run-manifest.json` under `--out-dir`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Cells the run scheduled.
    pub cells_total: usize,
    /// Cells with a finished output (including replayed ones).
    pub cells_done: usize,
    /// Cells that exhausted their attempts (panic or timeout).
    pub cells_failed: usize,
    /// Cells replayed from the journal instead of executed.
    pub cells_resumed: usize,
    /// Identities of failed cells, `experiment/task/model/setting`.
    pub failed_cells: Vec<String>,
    /// Result-record or manifest write failures (empty on a clean run).
    pub record_write_errors: Vec<String>,
    /// Artifact-cache requests served from the in-memory tier.
    pub artifact_mem_hits: usize,
    /// Artifact-cache requests served from the `--cache-dir` disk tier.
    pub artifact_disk_hits: usize,
    /// Artifact-cache cold misses that ran a builder.
    pub artifact_builds: usize,
    /// Hash of the journal contents at manifest-write time.
    pub journal_hash: u64,
}

impl RunManifest {
    /// Pretty JSON rendering (deterministic, 2-space indent).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"cells_total\": {},\n", self.cells_total));
        s.push_str(&format!("  \"cells_done\": {},\n", self.cells_done));
        s.push_str(&format!("  \"cells_failed\": {},\n", self.cells_failed));
        s.push_str(&format!("  \"cells_resumed\": {},\n", self.cells_resumed));
        let list = |items: &[String]| -> String {
            if items.is_empty() {
                "[]".to_string()
            } else {
                let body: Vec<String> =
                    items.iter().map(|i| format!("    \"{}\"", escape_json(i))).collect();
                format!("[\n{}\n  ]", body.join(",\n"))
            }
        };
        s.push_str(&format!("  \"failed_cells\": {},\n", list(&self.failed_cells)));
        s.push_str(&format!("  \"record_write_errors\": {},\n", list(&self.record_write_errors)));
        s.push_str(&format!("  \"artifact_mem_hits\": {},\n", self.artifact_mem_hits));
        s.push_str(&format!("  \"artifact_disk_hits\": {},\n", self.artifact_disk_hits));
        s.push_str(&format!("  \"artifact_builds\": {},\n", self.artifact_builds));
        s.push_str(&format!("  \"journal_hash\": \"{:016x}\"\n", self.journal_hash));
        s.push('}');
        s
    }

    /// Parse a manifest previously written by [`RunManifest::to_json`].
    pub fn from_json(s: &str) -> Result<RunManifest, String> {
        let j = parse_json(s)?;
        let count = |key: &str| -> Result<usize, String> {
            let n = j.get(key).and_then(Json::num).ok_or(format!("missing '{key}'"))?;
            if n.fract() != 0.0 || n < 0.0 {
                return Err(format!("'{key}' is not a count"));
            }
            Ok(n as usize)
        };
        let strings = |key: &str| -> Result<Vec<String>, String> {
            match j.get(key) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|i| i.str().map(String::from).ok_or(format!("non-string in '{key}'")))
                    .collect(),
                _ => Err(format!("missing '{key}'")),
            }
        };
        Ok(RunManifest {
            cells_total: count("cells_total")?,
            cells_done: count("cells_done")?,
            cells_failed: count("cells_failed")?,
            cells_resumed: count("cells_resumed")?,
            failed_cells: strings("failed_cells")?,
            record_write_errors: strings("record_write_errors")?,
            artifact_mem_hits: count("artifact_mem_hits")?,
            artifact_disk_hits: count("artifact_disk_hits")?,
            artifact_builds: count("artifact_builds")?,
            journal_hash: field_hex64(&j, "journal_hash")?,
        })
    }

    /// Write the manifest atomically under `dir`; returns its path.
    pub fn write_atomic(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(MANIFEST_FILE);
        let mut body = self.to_json();
        body.push('\n');
        atomic_write(&path, body.as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_output() -> CellOutput {
        CellOutput {
            stats: Some(RecordStats {
                accuracy: 0.875,
                macro_f1: 0.8612345678901234,
                train_secs: 0.0,
                infer_secs: 0.0,
            }),
            values: vec![("bins".to_string(), 7.0), ("q\"uote".to_string(), -0.125)],
            lines: vec!["line one".to_string(), "tab\there".to_string()],
        }
    }

    fn sample_id(n: u64) -> CellId {
        CellId {
            experiment: "table3".to_string(),
            task: "TLS-120".to_string(),
            model: format!("model-{n}"),
            setting: "per-flow/frozen".to_string(),
            seed: 0xdead_beef ^ n,
        }
    }

    fn sample_journal(fingerprint: u64, n_cells: u64) -> (Vec<CellId>, String) {
        let mut content = JournalEntry::Run { fingerprint }.to_line() + "\n";
        let ids: Vec<CellId> = (0..n_cells).map(sample_id).collect();
        for id in &ids {
            let h = id.hash();
            content +=
                &(JournalEntry::Started { cell: h, attempt: 1, id: id.clone() }.to_line() + "\n");
            content += &(JournalEntry::Done { cell: h, attempt: 1, output: sample_output() }
                .to_line()
                + "\n");
        }
        (ids, content)
    }

    #[test]
    fn entries_round_trip_through_lines() {
        let id = sample_id(3);
        let entries = [
            JournalEntry::Run { fingerprint: 0x0123_4567_89ab_cdef },
            JournalEntry::Started { cell: id.hash(), attempt: 2, id: id.clone() },
            JournalEntry::Done { cell: id.hash(), attempt: 2, output: sample_output() },
            JournalEntry::Failed {
                cell: id.hash(),
                attempt: 1,
                error: "panic: index 9 out of bounds\nwith \"newline\"".to_string(),
            },
        ];
        for entry in &entries {
            let line = entry.to_line();
            assert!(!line.contains('\n'), "journal lines are single lines: {line}");
            let back = JournalEntry::from_line(&line).expect("parse own serialization");
            // CellOutput lacks PartialEq on purpose (it holds f64s with
            // possible NaN); compare by serialized form instead.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn state_replays_done_cells() {
        let (ids, content) = sample_journal(42, 3);
        let state = JournalState::parse(&content, Path::new("j"), 42).expect("valid journal");
        assert_eq!(state.n_done(), 3);
        for id in &ids {
            let out = state.done_output(id.hash()).expect("cell done");
            assert_eq!(output_to_json(out), output_to_json(&sample_output()));
            assert_eq!(state.attempts(id.hash()), 1);
        }
        assert!(state.done_output(0x1234).is_none(), "unknown cells are not done");
    }

    #[test]
    fn truncated_final_line_is_tolerated_at_every_cut() {
        let (_, content) = sample_journal(7, 2);
        assert!(content.is_ascii(), "sample journal is ASCII so every cut is a char boundary");
        let full = JournalState::parse(&content, Path::new("j"), 7).unwrap().n_done();
        assert_eq!(full, 2);
        for cut in 0..content.len() {
            let partial = &content[..cut];
            match JournalState::parse(partial, Path::new("j"), 7) {
                Ok(state) => assert!(state.n_done() <= full),
                Err(e) => {
                    // Only the header-line cuts may fail, and only with
                    // the clear missing-header diagnosis.
                    assert!(
                        matches!(e, JournalError::MissingHeader(_)),
                        "cut at {cut}: unexpected error {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicated_done_lines_are_harmless_but_conflicts_are_fatal() {
        let (ids, content) = sample_journal(9, 2);
        let done_line =
            JournalEntry::Done { cell: ids[0].hash(), attempt: 1, output: sample_output() }
                .to_line();
        let dup = format!("{content}{done_line}\n");
        let state = JournalState::parse(&dup, Path::new("j"), 9).expect("duplicate done is fine");
        assert_eq!(state.n_done(), 2);

        let mut conflicting = sample_output();
        if let Some(st) = &mut conflicting.stats {
            st.accuracy += 0.5;
        }
        let bad = JournalEntry::Done { cell: ids[0].hash(), attempt: 2, output: conflicting };
        let evil = format!("{content}{}\n", bad.to_line());
        // Trailing-line tolerance must not mask the conflict: pad with a
        // subsequent valid line so the conflict is not final.
        let evil = format!("{evil}{}\n", JournalEntry::Run { fingerprint: 9 }.to_line());
        match JournalState::parse(&evil, Path::new("j"), 9) {
            Err(JournalError::ConflictingDone { cell, .. }) => assert_eq!(cell, ids[0].hash()),
            other => panic!("expected ConflictingDone, got {other:?}"),
        }
    }

    #[test]
    fn started_without_done_consumes_attempts_but_reruns() {
        let id = sample_id(0);
        let h = id.hash();
        let mut content = JournalEntry::Run { fingerprint: 1 }.to_line() + "\n";
        content +=
            &(JournalEntry::Started { cell: h, attempt: 1, id: id.clone() }.to_line() + "\n");
        content += &(JournalEntry::Failed { cell: h, attempt: 1, error: "panic: x".into() }
            .to_line()
            + "\n");
        content += &(JournalEntry::Started { cell: h, attempt: 2, id }.to_line() + "\n");
        let state = JournalState::parse(&content, Path::new("j"), 1).unwrap();
        assert_eq!(state.n_done(), 0, "no done entry, cell must re-run");
        assert_eq!(state.attempts(h), 2, "attempt count survives the crash");
        assert_eq!(state.last_error(h), Some("panic: x"));
    }

    #[test]
    fn corrupt_middle_line_is_a_clear_error() {
        let (_, content) = sample_journal(5, 2);
        let mut lines: Vec<&str> = content.lines().collect();
        lines[2] = "{\"status\":\"done\",garbage";
        let broken = lines.join("\n") + "\n";
        match JournalState::parse(&broken, Path::new("j"), 5) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Corrupt at line 3, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_mismatch_refuses_replay() {
        let (_, content) = sample_journal(11, 1);
        match JournalState::parse(&content, Path::new("j"), 12) {
            Err(JournalError::FingerprintMismatch { expected, found, .. }) => {
                assert_eq!((expected, found), (12, 11));
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn journal_file_round_trips_and_resumes() {
        let dir = std::env::temp_dir().join("debunk-journal-roundtrip-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);

        let id = sample_id(1);
        let h = id.hash();
        let journal = Journal::create(&path, 77).unwrap();
        journal.append(&JournalEntry::Started { cell: h, attempt: 1, id: id.clone() }).unwrap();
        journal
            .append(&JournalEntry::Done { cell: h, attempt: 1, output: sample_output() })
            .unwrap();
        drop(journal);

        let (journal2, state) = Journal::resume(&path, 77).unwrap();
        assert_eq!(state.n_done(), 1);
        assert!(state.done_output(h).is_some());
        drop(journal2);
        // The resumed session appended a second header.
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.matches("\"status\":\"run\"").count(), 2);

        // Resuming a missing journal is a fresh run, not an error.
        let missing = dir.join("missing.jsonl");
        let (_, empty) = Journal::resume(&missing, 77).unwrap();
        assert_eq!(empty.n_done(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_output_artifact_codec_round_trips() {
        use crate::artifact::Artifact;
        let out = sample_output();
        let bytes = Artifact::to_bytes(&out);
        let back = <CellOutput as Artifact>::from_bytes(&bytes).unwrap();
        assert_eq!(output_to_json(&back), output_to_json(&out));
        assert!(<CellOutput as Artifact>::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(<CellOutput as Artifact>::from_bytes(b"{\"stats\":null}").is_err());
    }

    #[test]
    fn manifest_round_trips_and_writes_atomically() {
        let dir = std::env::temp_dir().join("debunk-manifest-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = RunManifest {
            cells_total: 21,
            cells_done: 19,
            cells_failed: 2,
            cells_resumed: 7,
            failed_cells: vec!["table3/TLS-120/ET-BERT/per-flow".to_string()],
            record_write_errors: vec!["results/table3.json: permission denied".to_string()],
            artifact_mem_hits: 31,
            artifact_disk_hits: 4,
            artifact_builds: 9,
            journal_hash: 0xfeed_f00d_dead_beef,
        };
        let back = RunManifest::from_json(&manifest.to_json()).expect("parse own json");
        assert_eq!(back, manifest);

        let path = manifest.write_atomic(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), MANIFEST_FILE);
        let on_disk = RunManifest::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(on_disk, manifest);
        assert!(!dir.join("run-manifest.tmp").exists(), "temp file renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_parser_survives_garbage() {
        for garbage in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1e999999}",
            "nulll",
            "\u{7f}\u{1}",
            "{\"\\u12\":1}",
            "[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[1]]]",
        ] {
            assert!(parse_json(garbage).is_err(), "garbage must error: {garbage:?}");
        }
        let ok = parse_json("{\"a\": [1, -2.5, \"x\\ny\", null, true]}").unwrap();
        assert_eq!(
            ok.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Str("x\ny".to_string()),
                Json::Null,
                Json::Bool(true),
            ])
        );
    }

    #[test]
    fn f64_formatting_round_trips() {
        for v in [0.0, -0.0, 1.0, 97.5, 0.8612345678901234, -13.25, 1e-9, 123456789.125] {
            let s = format_f64(v);
            let back: f64 = s.parse().expect("formatted float parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} must round-trip exactly");
        }
        assert_eq!(format_f64(1.0), "1.0", "integral floats keep one decimal");
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
    }
}
