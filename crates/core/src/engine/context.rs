//! Shared run state handed to every experiment cell.

use crate::artifact::ArtifactCache;
use crate::engine::checkpoint::EncoderStore;
use crate::experiment::{build_encoder, CellConfig};
use crate::obs::ObsSink;
use crate::pipeline::{PreparedTask, TaskCache};
use dataset::Task;
use encoders::checkpoint::{stable_hash64, PretrainKey};
use encoders::model::{EncoderModel, ModelKind};
use encoders::pcap_encoder::{pretrain_pcap_encoder, PcapEncoderVariant, PretrainBudget};
use std::path::PathBuf;
use std::sync::Arc;

/// Compute-budget preset shared by `repro` and the calibration probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Smoke-test budget: tiny epochs and sample caps.
    Fast,
    /// The recorded configuration — every phenomenon at
    /// single-core-friendly cost.
    Medium,
    /// Paper-faithful folds and caps.
    Full,
}

impl Preset {
    /// Parse a `--budget` value.
    pub fn parse(name: &str) -> Option<Preset> {
        match name {
            "fast" => Some(Preset::Fast),
            "medium" => Some(Preset::Medium),
            "full" => Some(Preset::Full),
            _ => None,
        }
    }

    /// Preset name as accepted by `--budget`.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Fast => "fast",
            Preset::Medium => "medium",
            Preset::Full => "full",
        }
    }

    /// Default dataset scale for the preset.
    pub fn default_scale(&self) -> f64 {
        match self {
            Preset::Fast => 0.4,
            Preset::Medium => 0.7,
            Preset::Full => 1.0,
        }
    }

    /// Cell hyper-parameters and pre-training budget for the preset.
    pub fn config(&self, seed: u64) -> (CellConfig, PretrainBudget) {
        let mut cfg = CellConfig { seed, ..Default::default() };
        let budget = match self {
            Preset::Fast => {
                cfg.frozen_epochs = 10;
                cfg.unfrozen_epochs = 5;
                cfg.kfolds = 2;
                cfg.max_train = 1500;
                cfg.max_test = 1500;
                PretrainBudget { corpus_flows: 60, ae_epochs: 1, qa_epochs: 2, lr: 0.01 }
            }
            Preset::Medium => {
                cfg.frozen_epochs = 30;
                cfg.unfrozen_epochs = 20;
                cfg.kfolds = 2;
                cfg.max_train = 8000;
                cfg.max_test = 3000;
                PretrainBudget { corpus_flows: 150, ae_epochs: 1, qa_epochs: 3, lr: 0.01 }
            }
            Preset::Full => {
                cfg.kfolds = 3;
                PretrainBudget { corpus_flows: 200, ae_epochs: 2, qa_epochs: 4, lr: 0.01 }
            }
        };
        (cfg, budget)
    }
}

/// What kind of encoder a cell wants from the [`RunContext`] cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncoderSpec {
    /// A standard model, optionally pre-trained with its paper
    /// objective (Tables 3–9).
    Standard {
        /// Which model.
        kind: ModelKind,
        /// Run the pretext phases?
        pretrained: bool,
    },
    /// A Pcap-Encoder pre-training variant (Table 11).
    PcapVariant(PcapEncoderVariant),
}

impl EncoderSpec {
    /// Shorthand for a pre-trained standard encoder.
    pub fn pretrained(kind: ModelKind) -> EncoderSpec {
        EncoderSpec::Standard { kind, pretrained: true }
    }

    /// Shorthand for a randomly-initialised standard encoder.
    pub fn fresh(kind: ModelKind) -> EncoderSpec {
        EncoderSpec::Standard { kind, pretrained: false }
    }

    /// Display name (model or variant).
    pub fn name(&self) -> &'static str {
        match self {
            EncoderSpec::Standard { kind, .. } => kind.name(),
            EncoderSpec::PcapVariant(v) => v.name(),
        }
    }

    /// Full pre-training identity for this spec under a budget + seed.
    pub fn pretrain_key(&self, budget: PretrainBudget, seed: u64) -> PretrainKey {
        match *self {
            EncoderSpec::Standard { kind, pretrained } => PretrainKey {
                model: kind.name().to_string(),
                pretrained,
                variant: None,
                budget,
                seed,
            },
            EncoderSpec::PcapVariant(v) => PretrainKey {
                model: ModelKind::PcapEncoder.name().to_string(),
                pretrained: true,
                variant: Some(v),
                budget,
                seed,
            },
        }
    }

    fn build(&self, budget: PretrainBudget, seed: u64) -> EncoderModel {
        match *self {
            EncoderSpec::Standard { kind, pretrained } => {
                build_encoder(kind, pretrained, budget, seed)
            }
            EncoderSpec::PcapVariant(v) => pretrain_pcap_encoder(v, budget, seed).model,
        }
    }
}

/// Shared state for one engine run: configuration plus the dataset and
/// encoder caches every cell draws from. Immutable from the cells' point
/// of view, so cells can execute concurrently.
pub struct RunContext {
    /// Base seed for the whole run (`--seed`).
    pub seed: u64,
    /// Dataset scale multiplier (`--scale`).
    pub scale: f64,
    /// Pre-training budget for encoders built on demand.
    pub budget: PretrainBudget,
    /// Baseline cell hyper-parameters; the runner derives a per-cell
    /// copy with an independent seed (see [`RunContext::cell_seed`]).
    pub cfg: CellConfig,
    tasks: TaskCache,
    encoders: EncoderStore,
    /// Out-of-band event/metrics sink shared by the run (see
    /// [`crate::obs`]); defaults to the process-global stderr sink and
    /// is swapped in by the runner when a session starts with tracing.
    obs: parking_lot::Mutex<Arc<ObsSink>>,
}

impl RunContext {
    /// New context from explicit configuration.
    pub fn new(seed: u64, scale: f64, budget: PretrainBudget, cfg: CellConfig) -> RunContext {
        RunContext {
            seed,
            scale,
            budget,
            cfg,
            tasks: TaskCache::new(),
            encoders: EncoderStore::new(None),
            obs: parking_lot::Mutex::new(crate::obs::global()),
        }
    }

    /// The content-addressed artifact cache backing dataset preparation
    /// (and, through the runner, deterministic cell-output replay).
    pub fn artifacts(&self) -> &Arc<ArtifactCache> {
        self.tasks.artifacts()
    }

    /// The run's event/metrics sink.
    pub fn obs(&self) -> Arc<ObsSink> {
        self.obs.lock().clone()
    }

    /// Install `sink` on this context and its artifact cache so every
    /// component a cell touches reports to the same place. Called by
    /// the runner when a session starts.
    pub fn set_obs(&self, sink: Arc<ObsSink>) {
        self.artifacts().set_obs(sink.clone());
        *self.obs.lock() = sink;
    }

    /// New context from a [`Preset`]. `scale` overrides the preset's
    /// default dataset scale when given.
    pub fn from_preset(preset: Preset, seed: u64, scale: Option<f64>) -> RunContext {
        let (cfg, budget) = preset.config(seed);
        RunContext::new(seed, scale.unwrap_or_else(|| preset.default_scale()), budget, cfg)
    }

    /// Enable the on-disk cache tier under `dir` (`--cache-dir`):
    /// encoder checkpoints *and* pipeline/cell artifacts share the one
    /// directory, so a warm second run loads both.
    pub fn with_cache_dir(mut self, dir: PathBuf) -> RunContext {
        self.encoders = EncoderStore::new(Some(dir.clone()));
        self.tasks = TaskCache::with_artifacts(Arc::new(ArtifactCache::new(Some(dir))));
        self.artifacts().set_obs(self.obs());
        self
    }

    /// Prepared (generated + cleaned + parsed) dataset for a task,
    /// memoised process-wide.
    pub fn prep(&self, task: Task) -> PreparedTask {
        self.tasks.get(task, self.seed, self.scale)
    }

    /// Encoder for `spec` under the run's pre-training budget; built at
    /// most once per provenance, served from disk when a checkpoint
    /// cache is configured.
    pub fn encoder(&self, spec: EncoderSpec) -> EncoderModel {
        self.encoder_with_budget(spec, self.budget)
    }

    /// Same as [`RunContext::encoder`] with an explicit budget (the
    /// calibration probes sweep budgets).
    pub fn encoder_with_budget(&self, spec: EncoderSpec, budget: PretrainBudget) -> EncoderModel {
        let key = spec.pretrain_key(budget, self.pretrain_seed());
        let obs = self.obs();
        self.encoders.get_or_build(&key, &obs, || spec.build(budget, self.pretrain_seed()))
    }

    /// Seed used for encoder pre-training (kept distinct from the cell
    /// seeds, matching the original `repro` convention).
    pub fn pretrain_seed(&self) -> u64 {
        self.seed ^ 0xabc
    }

    /// Identity of the whole run's configuration, stamped into the
    /// journal header. Resuming under a different seed/scale/budget
    /// would silently mix incompatible cells into one record set, so
    /// the journal refuses to replay across fingerprints.
    pub fn run_fingerprint(&self) -> u64 {
        stable_hash64(&[
            &format!("{:016x}", self.seed),
            &format!("{:016x}", self.scale.to_bits()),
            &format!("{:?}", self.budget),
            &format!("{:?}", self.cfg),
        ])
    }

    /// Independent seed for one cell, derived by hashing the cell's
    /// identity rather than threading one mutable RNG through
    /// sequential calls. This is what makes cells order-independent:
    /// a cell gets the same seed whether it runs first, last, or on a
    /// worker thread. (Fold-level seeds are derived from this inside
    /// `run_cell` by adding the fold index.)
    pub fn cell_seed(&self, experiment: &str, task: &str, model: &str, setting: &str) -> u64 {
        stable_hash64(&[experiment, task, model, setting]) ^ self.seed
    }

    /// Per-cell configuration: the shared hyper-parameters with the
    /// cell's derived seed.
    pub fn cell_config(
        &self,
        experiment: &str,
        task: &str,
        model: &str,
        setting: &str,
    ) -> CellConfig {
        CellConfig { seed: self.cell_seed(experiment, task, model, setting), ..self.cfg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_round_trips_names() {
        for p in [Preset::Fast, Preset::Medium, Preset::Full] {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("warp"), None);
    }

    #[test]
    fn cell_seeds_are_order_independent_and_distinct() {
        let ctx = RunContext::from_preset(Preset::Fast, 42, None);
        let a = ctx.cell_seed("table3", "TLS-120", "ET-BERT", "per-flow/frozen");
        let b = ctx.cell_seed("table3", "TLS-120", "ET-BERT", "per-flow/frozen");
        assert_eq!(a, b, "same identity, same seed");
        let c = ctx.cell_seed("table3", "TLS-120", "YaTC", "per-flow/frozen");
        assert_ne!(a, c, "different model, different seed");
        let d = RunContext::from_preset(Preset::Fast, 43, None).cell_seed(
            "table3",
            "TLS-120",
            "ET-BERT",
            "per-flow/frozen",
        );
        assert_ne!(a, d, "different base seed, different cell seed");
    }

    #[test]
    fn encoder_specs_have_distinct_provenance() {
        let budget = PretrainBudget::default();
        let a = EncoderSpec::pretrained(ModelKind::EtBert).pretrain_key(budget, 1);
        let b = EncoderSpec::fresh(ModelKind::EtBert).pretrain_key(budget, 1);
        let c = EncoderSpec::PcapVariant(PcapEncoderVariant::QaOnly).pretrain_key(budget, 1);
        assert_ne!(a.provenance(), b.provenance());
        assert_ne!(a.provenance(), c.provenance());
    }
}
