//! Multi-process sharded suite execution (`repro --workers N`).
//!
//! A *coordinator* process spawns N *worker* processes (each also
//! runnable standalone via `repro ... --worker I`). Workers race to
//! claim cells through `O_EXCL` claim records under
//! `<out>/claims/claim-<cell>.json`, execute claimed cells with exactly
//! the per-cell panic isolation and bounded retry of a single-process
//! run, and append to per-worker journals under
//! `<out>/workers/wNN/journal.jsonl`. When every worker has exited, the
//! coordinator folds the worker journals into one canonical journal,
//! the result-record files and one `run-manifest.json` via a
//! deterministic merge ordered by suite enumeration (cell key), never
//! by completion time.
//!
//! ## Byte-stability contract (DESIGN.md §6g)
//!
//! For a suite whose cells all succeed, the merged `journal.jsonl`,
//! every `<experiment>.json` record file and `run-manifest.json` are
//! byte-identical to an uninterrupted single-process `--jobs` run and
//! invariant across worker counts, cold or warm cache, and across a
//! worker SIGKILL + `--resume` — because workers journal replayed cells
//! too ([`crate::engine::runner::RunOptions::journal_replays`]) and the
//! merge normalises every finished cell to one `started`/`done` pair at
//! attempt 1. Failed cells are normalised to `max_attempts`
//! `started`/`failed` pairs carrying the last recorded error, which is
//! worker-count invariant but can legitimately differ from a
//! single-process journal's literal retry trace (e.g. a soft timeout
//! fails fast without retrying).
//!
//! Claim records are liveness hints, not results: a claim whose owner
//! PID is dead is swept and the cell re-claimed by the next wave, so a
//! SIGKILLed worker never wedges the suite.

use crate::engine::context::RunContext;
use crate::engine::journal::{
    atomic_write, parse_json, CellId, Journal, JournalEntry, JournalError, JournalState, Json,
    RunManifest, JOURNAL_FILE,
};
use crate::engine::registry::{CellOutput, Experiment, RecordStats, Registry};
use crate::engine::runner::{start_worker_session, RunError, RunOptions, RunSummary};
use crate::obs;
use crate::report::{records_json_pretty, ResultRecord};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Claim records live under `<out>/claims/`.
pub const CLAIMS_DIR: &str = "claims";
/// Per-worker journals/manifests live under `<out>/workers/wNN/`.
pub const WORKERS_DIR: &str = "workers";

/// Coordinator-side knobs for `repro --workers N`.
pub struct CoordinatorOptions {
    /// Worker processes to spawn per wave (min 1).
    pub workers: usize,
    /// Program + fixed arguments of the worker command; the coordinator
    /// appends `--worker <index>` per spawned process. Must reproduce
    /// the coordinator's own `RunContext` (preset, seed, scale,
    /// cache dir) bit-for-bit or workers refuse the journal fingerprint.
    pub worker_cmd: Vec<String>,
    /// Spawn waves before giving up on unfinished cells (min 1). Extra
    /// waves run only when cells are left both unfinished and unfailed —
    /// i.e. a worker died abnormally mid-cell.
    pub max_waves: usize,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions { workers: 1, worker_cmd: Vec::new(), max_waves: 3 }
    }
}

/// The directory worker `index` journals into.
pub fn worker_dir(root: &Path, index: usize) -> PathBuf {
    root.join(WORKERS_DIR).join(format!("w{index:02}"))
}

fn claim_path(root: &Path, cell: u64) -> PathBuf {
    root.join(CLAIMS_DIR).join(format!("claim-{cell:016x}.json"))
}

/// Try to claim `cell` for `worker`. `O_EXCL` creation makes exactly
/// one process win a race; the loser skips the cell (its output will
/// arrive through the winner's journal).
fn try_claim(root: &Path, cell: u64, worker: usize) -> bool {
    let path = claim_path(root, cell);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
        Ok(mut file) => {
            use std::io::Write as _;
            let _ = write!(
                file,
                "{{\"cell\":\"{cell:016x}\",\"worker\":{worker},\"pid\":{}}}",
                std::process::id()
            );
            let _ = file.flush();
            true
        }
        Err(_) => false,
    }
}

/// Remove claim records whose owner process is dead (or whose record is
/// torn — its writer crashed mid-claim). Returns how many were swept.
/// Claims from live PIDs are kept: they may belong to standalone
/// workers this coordinator did not spawn.
pub fn sweep_stale_claims(root: &Path) -> usize {
    let dir = root.join(CLAIMS_DIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(_) => return 0,
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let stale = match std::fs::read_to_string(&path) {
            Ok(content) => match claim_pid(&content) {
                Some(pid) => !pid_alive(pid),
                None => true,
            },
            Err(_) => true,
        };
        if stale && std::fs::remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    swept
}

fn claim_pid(content: &str) -> Option<u32> {
    let pid = parse_json(content).ok()?.get("pid").and_then(Json::num)?;
    if pid.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&pid) {
        return None;
    }
    Some(pid as u32)
}

/// Best-effort liveness probe via procfs; without procfs every recorded
/// PID counts as dead, which at worst re-runs a cell (outputs are
/// deterministic, so a duplicate run is wasted work, never a conflict).
fn pid_alive(pid: u32) -> bool {
    Path::new("/proc/self").exists() && Path::new(&format!("/proc/{pid}")).exists()
}

/// Fold every worker journal (and, on `resume`, a previously merged or
/// single-process root journal) into one replay state. Each file's
/// crash-torn final fragment is dropped before concatenation, exactly
/// like [`JournalState::parse`] does per file; conflicting `done`
/// outputs across workers surface as [`JournalError::ConflictingDone`].
fn combined_state(root: &Path, fingerprint: u64, resume: bool) -> Result<JournalState, RunError> {
    let mut combined = String::new();
    let mut fold = |path: &Path| {
        if let Ok(content) = std::fs::read_to_string(path) {
            let complete_len = content.rfind('\n').map(|i| i + 1).unwrap_or(0);
            combined.push_str(&content[..complete_len]);
        }
    };
    if resume {
        fold(&root.join(JOURNAL_FILE));
    }
    let workers = root.join(WORKERS_DIR);
    if let Ok(entries) = std::fs::read_dir(&workers) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            fold(&dir.join(JOURNAL_FILE));
        }
    }
    JournalState::parse(&combined, &workers, fingerprint).map_err(RunError::from)
}

/// One suite cell's identity, precomputed in enumeration order.
struct CellMeta {
    task: String,
    model: String,
    setting: String,
    seed: u64,
    cell: u64,
    emit_record: bool,
}

struct ExpCells<'a> {
    exp: &'a dyn Experiment,
    metas: Vec<CellMeta>,
}

fn matches(filter: &str, id: &str) -> bool {
    filter == "all" || filter == id
}

fn check_filter(registry: &Registry, filter: &str) -> Result<(), RunError> {
    if filter != "all" && registry.get(filter).is_none() {
        return Err(RunError::UnknownExperiment(filter.to_string()));
    }
    Ok(())
}

fn enumerate<'a>(registry: &'a Registry, filter: &str, ctx: &RunContext) -> Vec<ExpCells<'a>> {
    registry
        .iter()
        .filter(|exp| matches(filter, exp.id()))
        .map(|exp| {
            let metas = exp
                .cells(ctx)
                .iter()
                .map(|spec| {
                    let cfg = ctx.cell_config(exp.id(), &spec.task, &spec.model, &spec.setting);
                    let id = CellId {
                        experiment: exp.id().to_string(),
                        task: spec.task.clone(),
                        model: spec.model.clone(),
                        setting: spec.setting.clone(),
                        seed: cfg.seed,
                    };
                    CellMeta {
                        task: spec.task.clone(),
                        model: spec.model.clone(),
                        setting: spec.setting.clone(),
                        seed: cfg.seed,
                        cell: id.hash(),
                        emit_record: spec.emit_record,
                    }
                })
                .collect();
            ExpCells { exp, metas }
        })
        .collect()
}

fn out_root(opts: &RunOptions) -> Result<PathBuf, RunError> {
    opts.out_dir.clone().ok_or_else(|| {
        RunError::Journal(JournalError::Io(
            PathBuf::from("."),
            io::Error::new(io::ErrorKind::InvalidInput, "--workers requires an output directory"),
        ))
    })
}

/// Run one worker process' share of the suite: walk the suite in
/// enumeration order, skip cells a sibling already finished (combined
/// journal state), claim the rest one at a time and execute each
/// through the standard cell runner (panic isolation, bounded retry,
/// artifact-cache replay — with `journal_replays` forced on so the
/// coordinator's merge sees every cell). Serial within the worker;
/// parallelism comes from the worker count.
pub fn run_worker(
    registry: &Registry,
    filter: &str,
    ctx: &RunContext,
    opts: &RunOptions,
    index: usize,
) -> Result<RunSummary, RunError> {
    check_filter(registry, filter)?;
    let root = out_root(opts)?;
    let opts = RunOptions { journal_replays: true, ..opts.clone() };
    std::fs::create_dir_all(root.join(CLAIMS_DIR))
        .map_err(|e| JournalError::Io(root.join(CLAIMS_DIR), e))?;
    let prior = combined_state(&root, ctx.run_fingerprint(), opts.resume)?;
    let session = start_worker_session(ctx, &opts, &worker_dir(&root, index), prior)?;
    nn::set_kernel_threads(opts.kernel_threads.unwrap_or_else(|| opts.jobs.max(1)));
    for exp in registry.iter().filter(|exp| matches(filter, exp.id())) {
        let cells = exp.cells(ctx);
        for i in 0..cells.len() {
            let spec = &cells[i];
            let cfg = ctx.cell_config(exp.id(), &spec.task, &spec.model, &spec.setting);
            let cell = CellId {
                experiment: exp.id().to_string(),
                task: spec.task.clone(),
                model: spec.model.clone(),
                setting: spec.setting.clone(),
                seed: cfg.seed,
            }
            .hash();
            if session.prior().done_output(cell).is_some() {
                continue; // a sibling (or a previous wave) finished it
            }
            if !try_claim(&root, cell, index) {
                continue; // another worker owns it right now
            }
            session.bump_total(1);
            session.run_cell(exp.id(), &cells, i, ctx, &opts);
        }
    }
    Ok(session.finish())
}

/// Spawn `copts.workers` worker processes, wait for them, re-wave on
/// abnormal deaths, then deterministically merge the worker journals
/// into the canonical journal, record files and manifest under
/// `opts.out_dir`. Returns the merged summary; callers derive the exit
/// code from [`RunSummary::ok`] exactly as for `Registry::run`.
pub fn run_coordinator(
    registry: &Registry,
    filter: &str,
    ctx: &RunContext,
    opts: &RunOptions,
    copts: &CoordinatorOptions,
) -> Result<RunSummary, RunError> {
    let log = obs::global();
    check_filter(registry, filter)?;
    let root = out_root(opts)?;
    if copts.worker_cmd.is_empty() {
        return Err(RunError::Journal(JournalError::Io(
            root,
            io::Error::new(io::ErrorKind::InvalidInput, "empty worker command"),
        )));
    }
    if opts.resume {
        let swept = sweep_stale_claims(&root);
        if swept > 0 {
            log.info(
                "distrib",
                &format!("[distrib] swept {swept} stale claim(s) from dead workers"),
                &[("swept", swept.into())],
            );
        }
    } else {
        // Fresh run: prior claims and worker journals are another run's
        // state, not this one's.
        std::fs::remove_dir_all(root.join(CLAIMS_DIR)).ok();
        std::fs::remove_dir_all(root.join(WORKERS_DIR)).ok();
    }
    for sub in [CLAIMS_DIR, WORKERS_DIR] {
        std::fs::create_dir_all(root.join(sub)).map_err(|e| JournalError::Io(root.join(sub), e))?;
    }

    let fingerprint = ctx.run_fingerprint();
    let suite = enumerate(registry, filter, ctx);
    let n_workers = copts.workers.max(1);
    let max_waves = copts.max_waves.max(1);
    let mut artifact_builds = 0usize;
    let mut wave = 0;
    let state = loop {
        wave += 1;
        log.info(
            "distrib",
            &format!("[distrib] wave {wave}: spawning {n_workers} worker process(es)"),
            &[("wave", wave.into()), ("workers", n_workers.into())],
        );
        let mut children = Vec::new();
        for index in 0..n_workers {
            let wdir = worker_dir(&root, index);
            std::fs::create_dir_all(&wdir).map_err(|e| JournalError::Io(wdir.clone(), e))?;
            match spawn_worker(&copts.worker_cmd, index, &wdir) {
                Ok(child) => children.push((index, child)),
                Err(e) => log.error(
                    "distrib",
                    &format!("[distrib] could not spawn worker {index}: {e}"),
                    &[("worker", index.into())],
                ),
            }
        }
        for (index, mut child) in children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => match status.code() {
                    Some(code) => log.warn(
                        "distrib",
                        &format!("[distrib] worker {index} exited with code {code}"),
                        &[("worker", index.into()), ("code", (code as u64).into())],
                    ),
                    None => log.warn(
                        "distrib",
                        &format!("[distrib] worker {index} was killed by a signal"),
                        &[("worker", index.into())],
                    ),
                },
                Err(e) => log.error(
                    "distrib",
                    &format!("[distrib] could not wait for worker {index}: {e}"),
                    &[("worker", index.into())],
                ),
            }
        }
        // Worker manifests are per-wave scratch: consume their build
        // counters now so a re-spawned worker's fresh manifest never
        // double-counts (a SIGKILLed worker leaves none — its builds go
        // uncounted, like any crashed session's).
        artifact_builds += consume_worker_manifests(&root, n_workers);
        let state = combined_state(&root, fingerprint, opts.resume)?;
        let unfinished = suite
            .iter()
            .flat_map(|e| &e.metas)
            .filter(|m| state.done_output(m.cell).is_none() && state.last_error(m.cell).is_none())
            .count();
        if unfinished == 0 || wave >= max_waves {
            break state;
        }
        log.warn(
            "distrib",
            &format!(
                "[distrib] {unfinished} cell(s) neither finished nor failed after wave {wave}; \
                 sweeping stale claims and re-spawning"
            ),
            &[("unfinished", unfinished.into()), ("wave", wave.into())],
        );
        sweep_stale_claims(&root);
    };
    merge_run(&root, fingerprint, &suite, &state, ctx, opts, artifact_builds)
}

fn spawn_worker(cmd: &[String], index: usize, wdir: &Path) -> io::Result<std::process::Child> {
    let log_path = wdir.join("log.txt");
    let log_file = std::fs::OpenOptions::new().create(true).append(true).open(&log_path)?;
    let log_file2 = log_file.try_clone()?;
    Command::new(&cmd[0])
        .args(&cmd[1..])
        .arg("--worker")
        .arg(index.to_string())
        .stdin(Stdio::null())
        .stdout(log_file)
        .stderr(log_file2)
        .spawn()
}

fn consume_worker_manifests(root: &Path, n_workers: usize) -> usize {
    let mut builds = 0;
    for index in 0..n_workers {
        let path = worker_dir(root, index).join(crate::engine::journal::MANIFEST_FILE);
        if let Ok(content) = std::fs::read_to_string(&path) {
            if let Ok(manifest) = RunManifest::from_json(&content) {
                builds += manifest.artifact_builds;
            }
            std::fs::remove_file(&path).ok();
        }
    }
    builds
}

/// Merge an already-populated worker state into the canonical outputs
/// under `opts.out_dir`, without spawning anything. `run_coordinator`
/// calls this after its waves; tests drive [`run_worker`] in-process
/// and then merge directly.
pub fn merge_workers(
    registry: &Registry,
    filter: &str,
    ctx: &RunContext,
    opts: &RunOptions,
    artifact_builds: usize,
) -> Result<RunSummary, RunError> {
    check_filter(registry, filter)?;
    let root = out_root(opts)?;
    let fingerprint = ctx.run_fingerprint();
    let suite = enumerate(registry, filter, ctx);
    let state = combined_state(&root, fingerprint, opts.resume)?;
    merge_run(&root, fingerprint, &suite, &state, ctx, opts, artifact_builds)
}

/// The deterministic k-way merge: canonical journal, record files and
/// manifest reconstructed purely from the folded worker state, in suite
/// enumeration order — completion order, worker count and cache state
/// leave no trace in the bytes.
fn merge_run(
    root: &Path,
    fingerprint: u64,
    suite: &[ExpCells<'_>],
    state: &JournalState,
    ctx: &RunContext,
    opts: &RunOptions,
    artifact_builds: usize,
) -> Result<RunSummary, RunError> {
    let log = obs::global();
    let journal = Journal::create(&root.join(JOURNAL_FILE), fingerprint)?;
    let journal_io = |e: io::Error| JournalError::Io(root.join(JOURNAL_FILE), e);
    let max_attempts = opts.max_attempts.max(1);
    let mut done = 0usize;
    let mut failed_cells = Vec::new();
    for e in suite {
        for m in &e.metas {
            let id = CellId {
                experiment: e.exp.id().to_string(),
                task: m.task.clone(),
                model: m.model.clone(),
                setting: m.setting.clone(),
                seed: m.seed,
            };
            match state.done_output(m.cell) {
                Some(out) => {
                    // Normalised to a single first-attempt pair: retry
                    // counts are scheduling history, not results.
                    journal
                        .append(&JournalEntry::Started { cell: m.cell, attempt: 1, id })
                        .map_err(journal_io)?;
                    journal
                        .append(&JournalEntry::Done {
                            cell: m.cell,
                            attempt: 1,
                            output: out.clone(),
                        })
                        .map_err(journal_io)?;
                    done += 1;
                }
                None => {
                    let error = state
                        .last_error(m.cell)
                        .unwrap_or("cell was never attempted (worker died or waves exhausted)")
                        .to_string();
                    for attempt in 1..=max_attempts {
                        journal
                            .append(&JournalEntry::Started {
                                cell: m.cell,
                                attempt,
                                id: id.clone(),
                            })
                            .map_err(journal_io)?;
                        journal
                            .append(&JournalEntry::Failed {
                                cell: m.cell,
                                attempt,
                                error: error.clone(),
                            })
                            .map_err(journal_io)?;
                    }
                    failed_cells.push(format!(
                        "{}/{}/{}/{}: {error}",
                        e.exp.id(),
                        m.task,
                        m.model,
                        m.setting
                    ));
                }
            }
        }
    }
    let journal_hash = journal.content_hash().unwrap_or(0);

    let mut record_write_errors = Vec::new();
    for e in suite {
        let outputs: Vec<CellOutput> = e
            .metas
            .iter()
            .map(|m| state.done_output(m.cell).cloned().unwrap_or_else(CellOutput::empty))
            .collect();
        let records: Vec<ResultRecord> = e
            .metas
            .iter()
            .zip(&outputs)
            .filter(|(m, _)| m.emit_record)
            .filter_map(|(m, out)| {
                out.stats.map(RecordStats::zero_wallclock).map(|s| ResultRecord {
                    experiment: e.exp.id().into(),
                    task: m.task.clone(),
                    model: m.model.clone(),
                    setting: m.setting.clone(),
                    accuracy: s.accuracy * 100.0,
                    macro_f1: s.macro_f1 * 100.0,
                    train_secs: s.train_secs,
                    infer_secs: s.infer_secs,
                })
            })
            .collect();
        if !records.is_empty() {
            let path = root.join(format!("{}.json", e.exp.id()));
            match atomic_write(&path, records_json_pretty(&records).as_bytes()) {
                Ok(()) => log.info(
                    "distrib",
                    &format!("  [saved] {}", path.display()),
                    &[("path", path.display().to_string().into())],
                ),
                Err(err) => record_write_errors.push(format!("{}: {err}", path.display())),
            }
        }
        if catch_unwind(AssertUnwindSafe(|| e.exp.render(ctx, &outputs))).is_err() {
            log.warn(
                "distrib",
                &format!("  [render] {} panicked", e.exp.id()),
                &[("experiment", e.exp.id().into())],
            );
        }
    }

    let total: usize = suite.iter().map(|e| e.metas.len()).sum();
    let mut summary = RunSummary {
        cells_total: total,
        cells_done: done,
        cells_failed: total - done,
        cells_resumed: 0,
        failed_cells,
        record_write_errors,
        artifacts: crate::artifact::ArtifactStats {
            mem_hits: 0,
            disk_hits: 0,
            builds: artifact_builds,
        },
        manifest_path: None,
        metrics_path: None,
    };
    // Hit counters depend on which worker reached an artifact first, so
    // the merged manifest zeroes them; the *build* count is scheduling-
    // invariant (cross-process single-flight) and is the one the bench
    // asserts against a single-process run.
    let manifest = RunManifest {
        cells_total: summary.cells_total,
        cells_done: summary.cells_done,
        cells_failed: summary.cells_failed,
        cells_resumed: 0,
        failed_cells: summary.failed_cells.clone(),
        record_write_errors: summary.record_write_errors.clone(),
        artifact_mem_hits: 0,
        artifact_disk_hits: 0,
        artifact_builds,
        journal_hash,
    };
    match manifest.write_atomic(root) {
        Ok(path) => summary.manifest_path = Some(path),
        Err(e) => summary
            .record_write_errors
            .push(format!("{}: {e}", root.join(crate::engine::journal::MANIFEST_FILE).display())),
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::context::Preset;
    use crate::engine::registry::{CellSpec, RecordStats};
    use std::sync::Arc;

    /// A small deterministic grid: value derived from the cell seed, so
    /// merged outputs are checkable and identical however scheduled.
    struct Grid {
        id: &'static str,
        n: usize,
        panic_on: Option<usize>,
    }

    impl Experiment for Grid {
        fn id(&self) -> &'static str {
            self.id
        }
        fn description(&self) -> &'static str {
            "distrib test grid"
        }
        fn cells(&self, _ctx: &RunContext) -> Vec<CellSpec> {
            (0..self.n)
                .map(|i| {
                    let boom = self.panic_on == Some(i);
                    CellSpec {
                        task: format!("task{i}"),
                        model: "m".into(),
                        setting: "s".into(),
                        emit_record: true,
                        run: Arc::new(
                            move |_ctx: &RunContext, cfg: &crate::experiment::CellConfig| {
                                if boom {
                                    panic!("deterministic boom");
                                }
                                CellOutput::stats(RecordStats {
                                    accuracy: (cfg.seed % 97) as f64 / 97.0,
                                    macro_f1: (cfg.seed % 89) as f64 / 89.0,
                                    train_secs: 0.0,
                                    infer_secs: 0.0,
                                })
                            },
                        ),
                    }
                })
                .collect()
        }
        fn render(&self, _ctx: &RunContext, _outputs: &[CellOutput]) {}
    }

    fn registry(n: usize, panic_on: Option<usize>) -> Registry {
        let mut reg = Registry::new();
        reg.register(Box::new(Grid { id: "grid", n, panic_on }));
        reg
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("debunk-distrib-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ctx_with_cache(cache: &Path) -> RunContext {
        RunContext::from_preset(Preset::Fast, 42, None).with_cache_dir(cache.to_path_buf())
    }

    fn opts(dir: &Path) -> RunOptions {
        RunOptions { out_dir: Some(dir.to_path_buf()), ..Default::default() }
    }

    fn read(path: &Path) -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
    }

    #[test]
    fn claims_are_exclusive_and_dead_claims_sweep() {
        let dir = temp_dir("claims");
        assert!(try_claim(&dir, 7, 0), "first claim wins");
        assert!(!try_claim(&dir, 7, 1), "second claim on the same cell loses");
        assert!(try_claim(&dir, 8, 1), "a different cell is claimable");
        // Our own claims are live and must survive a sweep.
        assert_eq!(sweep_stale_claims(&dir), 0);
        // A claim from a dead PID (u32::MAX is above any pid_max) and a
        // torn claim record are both swept.
        std::fs::write(claim_path(&dir, 9), format!("{{\"cell\":\"9\",\"pid\":{}}}", u32::MAX))
            .unwrap();
        std::fs::write(claim_path(&dir, 10), "{\"cell\":\"a\",\"wor").unwrap();
        assert_eq!(sweep_stale_claims(&dir), 2);
        assert!(claim_path(&dir, 7).exists(), "live claim kept");
        assert!(!claim_path(&dir, 9).exists(), "dead claim swept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_merge_is_byte_identical_to_single_process_run() {
        let reg = registry(6, None);

        // Reference: a plain single-process run.
        let ref_dir = temp_dir("merge-ref");
        let ref_cache = ref_dir.join("cache");
        let summary = reg.run("grid", &ctx_with_cache(&ref_cache), &opts(&ref_dir)).unwrap();
        assert!(summary.ok());

        for workers in [1usize, 2, 4] {
            let dir = temp_dir(&format!("merge-w{workers}"));
            let cache = dir.join("cache");
            let mut builds = 0;
            for index in 0..workers {
                // Fresh context per worker = fresh process, conceptually.
                let ctx = ctx_with_cache(&cache);
                let summary = run_worker(&reg, "grid", &ctx, &opts(&dir), index).unwrap();
                assert!(summary.ok());
                builds += summary.artifacts.builds;
            }
            let ctx = ctx_with_cache(&cache);
            let merged = merge_workers(&reg, "grid", &ctx, &opts(&dir), builds).unwrap();
            assert!(merged.ok());
            assert_eq!(merged.cells_done, 6);
            assert_eq!(
                read(&dir.join(JOURNAL_FILE)),
                read(&ref_dir.join(JOURNAL_FILE)),
                "merged journal at {workers} worker(s) != single-process journal"
            );
            assert_eq!(
                read(&dir.join("grid.json")),
                read(&ref_dir.join("grid.json")),
                "merged records at {workers} worker(s) != single-process records"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    #[test]
    fn concurrent_workers_split_cells_without_overlap() {
        let reg = registry(8, None);
        let dir = temp_dir("race");
        let cache = dir.join("cache");
        let summaries: Vec<RunSummary> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|index| {
                    let reg = &reg;
                    let dir = &dir;
                    let cache = &cache;
                    scope.spawn(move || {
                        run_worker(reg, "grid", &ctx_with_cache(cache), &opts(dir), index).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let scheduled: usize = summaries.iter().map(|s| s.cells_total).sum();
        assert_eq!(scheduled, 8, "claims must partition the grid exactly once");
        let merged = merge_workers(&reg, "grid", &ctx_with_cache(&cache), &opts(&dir), 0).unwrap();
        assert_eq!(merged.cells_done, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_claim_from_dead_worker_is_reclaimed_after_sweep() {
        let reg = registry(4, None);
        let dir = temp_dir("takeover");
        let cache = dir.join("cache");
        let ctx = ctx_with_cache(&cache);
        // Simulate a SIGKILLed worker: its claim on the first cell is on
        // disk with a dead PID and no journal entry.
        let suite = enumerate(&reg, "grid", &ctx);
        let first = suite[0].metas[0].cell;
        std::fs::create_dir_all(dir.join(CLAIMS_DIR)).unwrap();
        std::fs::write(
            claim_path(&dir, first),
            format!("{{\"cell\":\"{first:016x}\",\"worker\":0,\"pid\":{}}}", u32::MAX),
        )
        .unwrap();
        // Wave 1: the orphaned claim blocks the cell.
        let s1 = run_worker(&reg, "grid", &ctx_with_cache(&cache), &opts(&dir), 0).unwrap();
        assert_eq!(s1.cells_total, 3, "claimed cell must not be re-run while claimed");
        // The coordinator's inter-wave sweep frees it; wave 2 picks it up.
        assert_eq!(sweep_stale_claims(&dir), 1);
        let s2 = run_worker(&reg, "grid", &ctx_with_cache(&cache), &opts(&dir), 1).unwrap();
        assert_eq!(s2.cells_total, 1, "wave 2 runs exactly the orphaned cell");
        let merged = merge_workers(&reg, "grid", &ctx_with_cache(&cache), &opts(&dir), 0).unwrap();
        assert!(merged.ok());
        assert_eq!(merged.cells_done, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_cells_merge_identically_at_any_worker_count() {
        let reg = registry(3, Some(1));
        let mut journals = Vec::new();
        for workers in [1usize, 2] {
            let dir = temp_dir(&format!("fail-w{workers}"));
            let cache = dir.join("cache");
            for index in 0..workers {
                let summary =
                    run_worker(&reg, "grid", &ctx_with_cache(&cache), &opts(&dir), index).unwrap();
                assert!(!summary.ok() || summary.cells_total == 0);
            }
            let merged =
                merge_workers(&reg, "grid", &ctx_with_cache(&cache), &opts(&dir), 0).unwrap();
            assert_eq!(merged.cells_done, 2);
            assert_eq!(merged.cells_failed, 1);
            assert_eq!(merged.failed_cells.len(), 1);
            assert!(merged.failed_cells[0].contains("deterministic boom"));
            journals.push(read(&dir.join(JOURNAL_FILE)));
            std::fs::remove_dir_all(&dir).ok();
        }
        assert_eq!(journals[0], journals[1], "failure normalisation is worker-count invariant");
    }

    #[test]
    fn resume_folds_a_single_process_root_journal() {
        let reg = registry(5, None);
        let dir = temp_dir("resume-root");
        let cache = dir.join("cache");
        // A prior single-process run left a root journal.
        let summary = reg.run("grid", &ctx_with_cache(&cache), &opts(&dir)).unwrap();
        assert!(summary.ok());
        let reference = read(&dir.join(JOURNAL_FILE));
        // A resumed worker replays it all and executes nothing new.
        let ropts = RunOptions { resume: true, ..opts(&dir) };
        let s = run_worker(&reg, "grid", &ctx_with_cache(&cache), &ropts, 0).unwrap();
        assert_eq!(s.cells_total, 0, "every cell replays from the root journal");
        let merged = merge_workers(&reg, "grid", &ctx_with_cache(&cache), &ropts, 0).unwrap();
        assert_eq!(merged.cells_done, 5);
        assert_eq!(read(&dir.join(JOURNAL_FILE)), reference, "merged bytes unchanged on resume");
        std::fs::remove_dir_all(&dir).ok();
    }
}
