//! Out-of-core prepare: the generate → clean → tokenize → featurize →
//! split chain for datasets that must never be resident in RAM at once.
//!
//! The in-RAM chain ([`crate::pipeline::TaskCache`]) materialises the
//! whole trace, cleans it in place, and derives whole-dataset matrices.
//! This module produces **byte-identical artifact files** while holding
//! only O(row-group) state:
//!
//! - generation streams through an on-disk flow-sharded trace
//!   ([`ShardDir`]) whose k-way merge replays the serial trace exactly;
//! - cleaning mirrors `clean_trace` record-by-record through
//!   [`StreamingCleaner`] (the batch cleaner delegates to the same
//!   code, so the tallies cannot drift);
//! - the cleaned dataset, feature matrix and token matrix are written
//!   group-by-group with [`ArtifactCache::group_writer`], using the
//!   same [`ROW_GROUP_ROWS`] chunking as the in-RAM `to_groups`
//!   codecs — one format, two writers;
//! - splits are computed on a [`FlowClassView`] (6 bytes per record)
//!   that the in-RAM split entry points also delegate to.
//!
//! Warm calls validate the existing artifact's v2 frame (trailer,
//! header, footer checksums — three bounded reads) without decoding the
//! body, so a warm million-flow prepare touches kilobytes. Builds are
//! single-flight per (cache dir, dataset key): concurrent callers block
//! on one streaming build and then take the warm path.

use crate::artifact::{artifact_key, ArtifactCache, RowGroupFile, ROW_GROUP_ROWS};
use crate::experiment::SplitPolicy;
use crate::pipeline::{
    dataset_meta_group, DatasetArtifact, FeatureMatrix, TokenMatrix, TokenVariant,
};
use dataset::clean::StreamingCleaner;
use dataset::record::{records_from_bytes, records_to_bytes, PacketRecord};
use dataset::split::{per_flow_split_on, per_packet_split_on, FlowClassView, Split};
use encoders::model::EncoderModel;
use encoders::tokenize::token_rows_to_bytes;
use parking_lot::Mutex;
use shallow::features::{extract_features, features_to_bytes, FeatureConfig};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use traffic_synth::stream::ShardDir;
use traffic_synth::{DatasetKind, DatasetSpec};

/// Which derived products to ensure beyond the cleaned dataset.
#[derive(Default)]
pub struct OutOfCoreOptions<'m> {
    /// Shallow feature matrix to ensure.
    pub features: Option<FeatureConfig>,
    /// Token matrix to ensure (tokenisation depends only on the model
    /// kind and ablation, never on weights — same key as the in-RAM
    /// path).
    pub tokens: Option<(&'m EncoderModel, TokenVariant)>,
    /// Splits to ensure.
    pub splits: Vec<SplitRequest>,
}

/// One split artifact to ensure, mirroring
/// [`crate::pipeline::PreparedTask::split`]'s parameters and key.
#[derive(Debug, Clone, Copy)]
pub struct SplitRequest {
    /// Per-flow (correct) or per-packet (leaky) assignment.
    pub policy: SplitPolicy,
    /// Train fraction (keyed by its exact bit pattern).
    pub train_frac: f64,
    /// Per-flow cap (per-flow policy only; ignored per-packet).
    pub max_flow_packets: usize,
    /// Split RNG seed.
    pub seed: u64,
}

/// What one out-of-core prepare call did (per stage: built fresh, or
/// validated warm without decoding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutOfCoreReport {
    /// The shard directory was (re)generated rather than reused.
    pub rebuilt_shards: bool,
    /// Records in the shard directory (labelled + spurious).
    pub shard_records: u64,
    /// Cleaned records in the dataset artifact.
    pub kept_records: u64,
    /// The dataset artifact was streamed fresh.
    pub dataset_built: bool,
    /// The feature matrix was streamed fresh.
    pub features_built: bool,
    /// The token matrix was streamed fresh.
    pub tokens_built: bool,
    /// Number of split artifacts computed fresh.
    pub splits_built: usize,
}

/// Per-(cache dir, dataset key) build locks: one streaming build in
/// flight, concurrent callers block and then validate warm.
fn stream_lock(token: &str) -> Arc<Mutex<()>> {
    static LOCKS: Mutex<BTreeMap<String, Arc<Mutex<()>>>> = Mutex::new(BTreeMap::new());
    LOCKS.lock().entry(token.to_string()).or_default().clone()
}

/// Ensure the prepare-chain artifacts for `(kind, seed, scale)` exist in
/// `cache`'s disk tier, generating and preparing out of core via an
/// `n_shards`-way shard directory under `shard_root`. Artifact keys and
/// bytes are identical to the in-RAM [`crate::pipeline::TaskCache`]
/// path; peak memory is bounded by the row-group size, not the dataset.
pub fn prepare_out_of_core(
    cache: &ArtifactCache,
    shard_root: &Path,
    kind: DatasetKind,
    seed: u64,
    scale: f64,
    n_shards: usize,
    opts: &OutOfCoreOptions,
) -> Result<OutOfCoreReport, String> {
    let spec = DatasetSpec::new(kind, seed).scaled(scale);
    // Exactly TaskCache::get's dataset key — same content address, so
    // the two paths serve each other's files.
    let dataset_key =
        [kind.name().to_string(), format!("{seed:016x}"), ((scale * 1000.0) as u64).to_string()];
    let parts: Vec<&str> = dataset_key.iter().map(String::as_str).collect();
    let ds_key = artifact_key::<DatasetArtifact>(&parts);
    let ds_path = cache
        .artifact_path::<DatasetArtifact>(&parts)
        .ok_or("out-of-core prepare needs a disk tier (--cache-dir)")?;

    let lock = stream_lock(&format!("{}|{ds_key}", ds_path.display()));
    let _guard = lock.lock();

    let mut report = OutOfCoreReport::default();

    // Phase 0: generation — ensure the on-disk sharded trace.
    let (shards, rebuilt) = ShardDir::ensure(shard_root, &spec, n_shards)?;
    report.rebuilt_shards = rebuilt;
    report.shard_records = shards.n_records();

    // Phase A: the cleaned dataset artifact.
    if ds_path.exists() && RowGroupFile::open(&ds_path, &ds_key).is_ok() {
        cache.note_disk_hit();
    } else {
        stream_dataset_artifact(cache, &shards, &parts)?;
        report.dataset_built = true;
    }
    let mut ds_file = RowGroupFile::open(&ds_path, &ds_key)?;
    report.kept_records = ds_file.total_rows();
    // The trailing group is the metadata (class table + clean report);
    // everything before it is record chunks.
    let record_groups =
        ds_file.n_groups().checked_sub(1).ok_or("dataset artifact has no groups")?;

    // Phase B: shallow feature matrix, group-aligned with the records.
    if let Some(cfg) = opts.features {
        let ip = if cfg.with_ip { "ip" } else { "no-ip" };
        let mut fparts = parts.clone();
        fparts.push(ip);
        report.features_built = ensure_derived::<FeatureMatrix>(cache, &fparts, || {
            let mut w = cache.group_writer::<FeatureMatrix>(&fparts)?;
            for gi in 0..record_groups {
                let records = records_from_bytes(&ds_file.read_group(gi)?)?;
                let rows: Vec<_> = records.iter().map(|r| extract_features(r, cfg)).collect();
                w.push_group(rows.len() as u64, &features_to_bytes(&rows))?;
            }
            w.finish()?;
            Ok(())
        })?;
    }

    // Phase C: token matrix.
    if let Some((encoder, variant)) = opts.tokens {
        let mut tparts = parts.clone();
        tparts.extend([encoder.kind.name(), encoder.ablation.cache_tag(), variant.tag()]);
        report.tokens_built = ensure_derived::<TokenMatrix>(cache, &tparts, || {
            let mut w = cache.group_writer::<TokenMatrix>(&tparts)?;
            for gi in 0..record_groups {
                let records = records_from_bytes(&ds_file.read_group(gi)?)?;
                let rows: Vec<Vec<u32>> = records
                    .iter()
                    .map(|rec| match variant {
                        TokenVariant::Repeated => encoder.tokenize_packet_repeated(rec),
                        TokenVariant::Padded => encoder.tokenize_packet_padded(rec),
                    })
                    .collect();
                w.push_group(rows.len() as u64, &token_rows_to_bytes(&rows))?;
            }
            w.finish()?;
            Ok(())
        })?;
    }

    // Phase D: splits, on the 6-byte-per-record view.
    let mut view: Option<FlowClassView> = None;
    for req in &opts.splits {
        let frac = format!("{:016x}", req.train_frac.to_bits());
        let seed_hex = format!("{:016x}", req.seed);
        let mfp = req.max_flow_packets.to_string();
        let mut sparts = parts.clone();
        match req.policy {
            SplitPolicy::PerFlow => {
                sparts.extend(["per-flow", frac.as_str(), mfp.as_str(), seed_hex.as_str()])
            }
            SplitPolicy::PerPacket => {
                sparts.extend(["per-packet", frac.as_str(), seed_hex.as_str()])
            }
        }
        let built = ensure_derived::<Split>(cache, &sparts, || {
            if view.is_none() {
                let mut v = FlowClassView::default();
                for gi in 0..record_groups {
                    for rec in records_from_bytes(&ds_file.read_group(gi)?)? {
                        v.push(rec.class, rec.flow_id);
                    }
                }
                view = Some(v);
            }
            let v = view.as_ref().expect("view just built");
            let split = match req.policy {
                SplitPolicy::PerFlow => {
                    per_flow_split_on(v, req.train_frac, req.max_flow_packets, req.seed)
                }
                SplitPolicy::PerPacket => per_packet_split_on(v, req.train_frac, req.seed),
            };
            cache.store::<Split>(&sparts, split);
            Ok(())
        })?;
        report.splits_built += usize::from(built);
    }

    Ok(report)
}

/// Warm-or-build for one derived artifact: a valid v2 frame on disk is
/// a hit (no body decode); anything else runs `build`. Returns whether
/// `build` ran.
fn ensure_derived<A: crate::artifact::Artifact>(
    cache: &ArtifactCache,
    parts: &[&str],
    build: impl FnOnce() -> Result<(), String>,
) -> Result<bool, String> {
    let key = artifact_key::<A>(parts);
    let path = cache.artifact_path::<A>(parts).ok_or("derived artifact needs a disk tier")?;
    if path.exists() && RowGroupFile::open(&path, &key).is_ok() {
        cache.note_disk_hit();
        return Ok(false);
    }
    build()?;
    Ok(true)
}

/// Stream the merged shard trace through the clean mirror into a
/// grouped dataset artifact: record chunks of [`ROW_GROUP_ROWS`], then
/// the metadata group (class table + clean report) last — the exact
/// byte layout of `DatasetArtifact::to_groups`.
fn stream_dataset_artifact(
    cache: &ArtifactCache,
    shards: &ShardDir,
    parts: &[&str],
) -> Result<(), String> {
    let mut writer = cache.group_writer::<DatasetArtifact>(parts)?;
    let mut cleaner = StreamingCleaner::new();
    let mut chunk: Vec<PacketRecord> = Vec::with_capacity(ROW_GROUP_ROWS);
    for rec in shards.merged()? {
        if !cleaner.accept(&rec.frame) {
            continue;
        }
        if let Some(pr) = PacketRecord::from_trace_record(&rec) {
            chunk.push(pr);
            if chunk.len() == ROW_GROUP_ROWS {
                writer.push_group(chunk.len() as u64, &records_to_bytes(&chunk))?;
                chunk.clear();
            }
        }
    }
    if !chunk.is_empty() {
        writer.push_group(chunk.len() as u64, &records_to_bytes(&chunk))?;
    }
    writer.push_group(0, &dataset_meta_group(shards.classes(), &cleaner.finish()))?;
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TaskCache;
    use dataset::task::Task;
    use encoders::model::{EncoderModel, ModelKind};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn artifact_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("art-"))
            .map(|p| {
                (p.file_name().unwrap().to_str().unwrap().to_string(), std::fs::read(&p).unwrap())
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn out_of_core_artifacts_are_byte_identical_to_in_ram() {
        let (seed, scale) = (5, 0.15);
        let enc = EncoderModel::new(ModelKind::EtBert, 1);

        // In-RAM reference: full prepare + derived products on disk.
        let ram_dir = temp_dir("debunk-ooc-ram");
        let cache = TaskCache::with_artifacts(Arc::new(ArtifactCache::new(Some(ram_dir.clone()))));
        let prep = cache.get(Task::UstcBinary, seed, scale);
        prep.features(FeatureConfig::default());
        prep.tokens(&enc, TokenVariant::Repeated);
        prep.split(SplitPolicy::PerFlow, 7.0 / 8.0, 1000, 9);
        prep.split(SplitPolicy::PerPacket, 7.0 / 8.0, 0, 9);

        // Out-of-core: same key space, different disk tier, sharded gen.
        let ooc_dir = temp_dir("debunk-ooc-stream");
        let shard_dir = temp_dir("debunk-ooc-shards");
        let ooc = ArtifactCache::new(Some(ooc_dir.clone()));
        let opts = OutOfCoreOptions {
            features: Some(FeatureConfig::default()),
            tokens: Some((&enc, TokenVariant::Repeated)),
            splits: vec![
                SplitRequest {
                    policy: SplitPolicy::PerFlow,
                    train_frac: 7.0 / 8.0,
                    max_flow_packets: 1000,
                    seed: 9,
                },
                SplitRequest {
                    policy: SplitPolicy::PerPacket,
                    train_frac: 7.0 / 8.0,
                    max_flow_packets: 0,
                    seed: 9,
                },
            ],
        };
        let report =
            prepare_out_of_core(&ooc, &shard_dir, DatasetKind::UstcTfc, seed, scale, 3, &opts)
                .unwrap();
        assert!(report.dataset_built && report.features_built && report.tokens_built);
        assert_eq!(report.splits_built, 2);
        assert_eq!(report.kept_records as usize, prep.data.records.len());

        let ram_files = artifact_files(&ram_dir);
        let ooc_files = artifact_files(&ooc_dir);
        assert_eq!(
            ram_files.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            ooc_files.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            "same content addresses"
        );
        assert_eq!(ram_files.len(), 5, "prepared + features + tokens + two splits");
        for ((name, ram), (_, ooc)) in ram_files.iter().zip(&ooc_files) {
            assert_eq!(ram, ooc, "{name} differs between in-RAM and out-of-core writers");
        }

        std::fs::remove_dir_all(&ram_dir).ok();
        std::fs::remove_dir_all(&ooc_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    #[test]
    fn warm_calls_validate_without_rebuilding() {
        let ooc_dir = temp_dir("debunk-ooc-warm");
        let shard_dir = temp_dir("debunk-ooc-warm-shards");
        let cache = ArtifactCache::new(Some(ooc_dir.clone()));
        let opts = OutOfCoreOptions {
            features: Some(FeatureConfig::default()),
            ..OutOfCoreOptions::default()
        };
        let cold = prepare_out_of_core(&cache, &shard_dir, DatasetKind::IscxVpn, 3, 0.1, 2, &opts)
            .unwrap();
        assert!(cold.rebuilt_shards && cold.dataset_built && cold.features_built);
        let builds_after_cold = cache.stats().builds;

        let warm = prepare_out_of_core(&cache, &shard_dir, DatasetKind::IscxVpn, 3, 0.1, 2, &opts)
            .unwrap();
        assert!(!warm.rebuilt_shards && !warm.dataset_built && !warm.features_built);
        assert_eq!(warm.kept_records, cold.kept_records);
        assert_eq!(cache.stats().builds, builds_after_cold, "warm call builds nothing");
        assert!(cache.stats().disk_hits >= 2, "dataset + features validated as disk hits");

        std::fs::remove_dir_all(&ooc_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    #[test]
    fn concurrent_out_of_core_builds_are_single_flight() {
        let ooc_dir = temp_dir("debunk-ooc-flight");
        let shard_dir = temp_dir("debunk-ooc-flight-shards");
        let cache = ArtifactCache::new(Some(ooc_dir.clone()));
        let reports: Vec<OutOfCoreReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        prepare_out_of_core(
                            &cache,
                            &shard_dir,
                            DatasetKind::UstcTfc,
                            7,
                            0.1,
                            2,
                            &OutOfCoreOptions::default(),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            reports.iter().filter(|r| r.dataset_built).count(),
            1,
            "exactly one thread streamed the dataset"
        );
        assert!(reports.iter().all(|r| r.kept_records == reports[0].kept_records));
        std::fs::remove_dir_all(&ooc_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    #[test]
    fn missing_disk_tier_is_an_error() {
        let cache = ArtifactCache::new(None);
        let err = prepare_out_of_core(
            &cache,
            Path::new("/nonexistent"),
            DatasetKind::UstcTfc,
            1,
            0.1,
            1,
            &OutOfCoreOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("disk tier"), "{err}");
    }
}
