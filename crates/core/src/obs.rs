//! Structured, deterministic-safe observability: leveled events, an
//! append-only trace sink and aggregated run metrics.
//!
//! The determinism contract (PR 1–4) zeroes every wall-clock field in
//! records, the journal and cell artifacts, which left the repo blind to
//! where runs actually spend time. This module restores measurement
//! *out of band*: real timings, attempt/retry/backoff counters,
//! artifact-cache hit rates, kernel-thread budget decisions and
//! per-stage pipeline durations flow into two files under `--out-dir`
//! that are strictly separate from the deterministic outputs:
//!
//! - `trace.jsonl` — append-only leveled events, one JSON object per
//!   line (same single-`write`+flush discipline as the run journal);
//! - `metrics.json` — aggregated totals, written atomically at session
//!   finish.
//!
//! Records, `journal.jsonl` and `run-manifest.json` remain byte-identical
//! whether tracing is on or off, at any `--jobs`, cold or warm cache —
//! no value read from the clock ever reaches them (asserted by
//! `tests/obs_trace.rs`).
//!
//! Event sinks are handles ([`ObsSink`]), installed per run session on
//! the [`RunContext`](crate::engine::RunContext) and the
//! [`ArtifactCache`](crate::artifact::ArtifactCache); components without
//! a session (front-end banners, standalone cache use) fall back to the
//! process-global stderr sink ([`global`]/[`set_global`]).

use crate::engine::journal::{atomic_write, escape_json, format_f64, parse_json, Json};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Trace file name under `--out-dir`.
pub const TRACE_FILE: &str = "trace.jsonl";
/// Metrics file name under `--out-dir`.
pub const METRICS_FILE: &str = "metrics.json";

/// Event severity. `Debug` events go to the trace file only; `Info` and
/// above also reach stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume progress detail (cache saves, stage timings).
    Debug,
    /// Normal progress (cell results, resume notices).
    Info,
    /// Something was ignored or degraded but the run continues.
    Warn,
    /// A write was lost or a step failed; surfaced in the exit path too.
    Error,
}

impl Level {
    /// Lower-case name as written in event lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// How events render on stderr (`--log-format`). The trace file is
/// always JSON regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable message text (the historical `eprintln!` look).
    Text,
    /// One JSON object per line, identical to the trace-file schema.
    Json,
}

impl LogFormat {
    /// Parse a `--log-format` value.
    pub fn parse(name: &str) -> Option<LogFormat> {
        match name {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }

    /// Name as accepted by `--log-format`.
    pub fn name(self) -> &'static str {
        match self {
            LogFormat::Text => "text",
            LogFormat::Json => "json",
        }
    }
}

/// A structured field value attached to an event.
#[derive(Debug, Clone)]
pub enum Value {
    /// String field.
    Str(String),
    /// Integer counter (kept well under 2^53; hashes travel as hex
    /// strings).
    U64(u64),
    /// Seconds or other measurements.
    F64(f64),
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", escape_json(s)),
            Value::U64(n) => n.to_string(),
            Value::F64(v) => format_f64(*v),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::U64(n as u64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

/// How one cell concluded, for the per-experiment aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell's work function ran to completion.
    Executed,
    /// Replayed from the run journal (`--resume`).
    ReplayedJournal,
    /// Replayed from the content-addressed artifact cache.
    ReplayedCache,
    /// Exhausted its attempts.
    Failed,
}

#[derive(Debug, Default, Clone)]
struct StageAgg {
    count: u64,
    secs: f64,
}

#[derive(Debug, Default, Clone)]
struct ExpAgg {
    cells: u64,
    executed: u64,
    replayed: u64,
    failed: u64,
    attempts: u64,
    retries: u64,
    backoff_ms: u64,
    /// Real time of the whole experiment (cells + render), one span.
    wall_secs: f64,
    /// Sum of per-cell wall clocks (exceeds `wall_secs` under `--jobs`).
    cell_secs: f64,
    train_secs: f64,
    infer_secs: f64,
}

#[derive(Debug, Default, Clone, Copy)]
struct KernelBudget {
    jobs: u64,
    cell_jobs: u64,
    kernel_threads: u64,
}

#[derive(Debug, Default, Clone)]
struct ServingAgg {
    packets: u64,
    non_ip: u64,
    flows_opened: u64,
    evicted_closed: u64,
    evicted_idle: u64,
    flushed: u64,
    batches: u64,
    verdicts: u64,
    /// Hot-reloads applied (bundle swapped at an epoch boundary).
    reloads_applied: u64,
    /// Reload candidates refused (corrupt or policy-incompatible).
    reloads_refused: u64,
    /// Packet sequence numbers where each applied reload took effect —
    /// the exact boundaries a planned replay needs to reproduce the
    /// verdict stream byte-for-byte.
    boundaries: Vec<u64>,
    /// Per-shard serving totals, keyed by worker index.
    shards: BTreeMap<usize, ShardAgg>,
}

#[derive(Debug, Default, Clone, Copy)]
struct ShardAgg {
    flows: u64,
    verdicts: u64,
    busy_secs: f64,
}

/// Why the serving flow table retired a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionReason {
    /// TCP teardown observed (both FINs or RST).
    Closed,
    /// No packet within the idle timeout.
    Idle,
    /// End-of-stream flush.
    Flush,
}

impl EvictionReason {
    /// Lower-case name as written in trace events.
    pub fn name(self) -> &'static str {
        match self {
            EvictionReason::Closed => "closed",
            EvictionReason::Idle => "idle",
            EvictionReason::Flush => "flush",
        }
    }
}

#[derive(Default)]
struct Agg {
    stages: BTreeMap<String, StageAgg>,
    experiments: BTreeMap<String, ExpAgg>,
    attempts: u64,
    retries: u64,
    backoff_ms: u64,
    kernel: Option<KernelBudget>,
    serving: ServingAgg,
}

/// A structured event/metrics sink. Cheap to share (`Arc`); every method
/// takes `&self` and is safe to call from worker threads.
pub struct ObsSink {
    format: LogFormat,
    /// `trace.jsonl` writer; each event is one `write` + flush so lines
    /// never interleave (same discipline as the journal).
    trace: Option<Mutex<File>>,
    /// `--out-dir`, when this sink writes files.
    dir: Option<PathBuf>,
    start: Instant,
    agg: Mutex<Agg>,
    event_counts: [AtomicUsize; 4],
}

impl ObsSink {
    /// A stderr-only sink: events render per `format`, nothing is
    /// written to disk and `write_metrics` is a no-op.
    pub fn stderr(format: LogFormat) -> ObsSink {
        ObsSink {
            format,
            trace: None,
            dir: None,
            start: Instant::now(),
            agg: Mutex::new(Agg::default()),
            event_counts: Default::default(),
        }
    }

    /// A tracing sink under `dir`: opens (truncating) `dir/trace.jsonl`
    /// and arms `write_metrics` to land `dir/metrics.json`.
    pub fn with_dir(dir: &Path, format: LogFormat) -> io::Result<ObsSink> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(dir.join(TRACE_FILE))?;
        let mut sink = ObsSink::stderr(format);
        sink.trace = Some(Mutex::new(file));
        sink.dir = Some(dir.to_path_buf());
        Ok(sink)
    }

    /// The sink's stderr format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// True when this sink records a trace file (i.e. `--trace` is on).
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Emit one event. `Debug` events reach the trace file only; `Info`
    /// and above also go to stderr — as the plain `msg` in text mode, as
    /// the full JSON object in json mode.
    pub fn event(&self, level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
        self.event_counts[level.index()].fetch_add(1, Ordering::Relaxed);
        let json = (self.trace.is_some() || self.format == LogFormat::Json)
            .then(|| self.event_json(level, target, msg, fields));
        if level >= Level::Info {
            match self.format {
                LogFormat::Text => eprintln!("{msg}"),
                LogFormat::Json => eprintln!("{}", json.as_deref().unwrap_or(msg)),
            }
        }
        if let (Some(trace), Some(json)) = (&self.trace, &json) {
            let mut line = json.clone();
            line.push('\n');
            let mut file = trace.lock().unwrap_or_else(|e| e.into_inner());
            // Trace writes are best-effort observability: a full disk
            // must not fail the run the way a lost record would.
            let _ = file.write_all(line.as_bytes()).and_then(|()| file.flush());
        }
    }

    fn event_json(
        &self,
        level: Level,
        target: &str,
        msg: &str,
        fields: &[(&str, Value)],
    ) -> String {
        let mut s = format!(
            "{{\"t\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            format_f64(self.start.elapsed().as_secs_f64()),
            level.name(),
            escape_json(target),
            escape_json(msg),
        );
        if !fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", escape_json(k), v.to_json()));
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// `Debug` event shorthand.
    pub fn debug(&self, target: &str, msg: &str, fields: &[(&str, Value)]) {
        self.event(Level::Debug, target, msg, fields);
    }

    /// `Info` event shorthand.
    pub fn info(&self, target: &str, msg: &str, fields: &[(&str, Value)]) {
        self.event(Level::Info, target, msg, fields);
    }

    /// `Warn` event shorthand.
    pub fn warn(&self, target: &str, msg: &str, fields: &[(&str, Value)]) {
        self.event(Level::Warn, target, msg, fields);
    }

    /// `Error` event shorthand.
    pub fn error(&self, target: &str, msg: &str, fields: &[(&str, Value)]) {
        self.event(Level::Error, target, msg, fields);
    }

    fn agg(&self) -> std::sync::MutexGuard<'_, Agg> {
        self.agg.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `secs` to a named pipeline stage (trace, clean, tokenize,
    /// featurize, split, pretrain, train, infer).
    pub fn add_stage(&self, stage: &str, secs: f64) {
        let mut agg = self.agg();
        let entry = agg.stages.entry(stage.to_string()).or_default();
        entry.count += 1;
        entry.secs += secs;
    }

    /// Run `f`, recording its wall-clock under `stage` and emitting a
    /// `Debug` stage event.
    pub fn time_stage<T>(&self, stage: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        self.add_stage(stage, secs);
        self.debug(
            "pipeline",
            &format!("  [stage] {stage}: {secs:.3}s"),
            &[("stage", stage.into()), ("secs", secs.into())],
        );
        out
    }

    /// Record the runner's thread-budget split for one experiment.
    pub fn record_kernel_budget(&self, jobs: usize, cell_jobs: usize, kernel_threads: usize) {
        self.agg().kernel = Some(KernelBudget {
            jobs: jobs as u64,
            cell_jobs: cell_jobs as u64,
            kernel_threads: kernel_threads as u64,
        });
    }

    /// Record one concluded cell. `attempts` counts this session's
    /// attempts (0 for replays); `train_secs`/`infer_secs` are the real
    /// timings *before* the runner zeroes them for serialisation.
    #[allow(clippy::too_many_arguments)]
    pub fn record_cell(
        &self,
        experiment: &str,
        outcome: CellOutcome,
        attempts: u32,
        backoff_ms: u64,
        wall_secs: f64,
        train_secs: f64,
        infer_secs: f64,
    ) {
        let retries = u64::from(attempts.saturating_sub(1));
        let mut agg = self.agg();
        agg.attempts += u64::from(attempts);
        agg.retries += retries;
        agg.backoff_ms += backoff_ms;
        let exp = agg.experiments.entry(experiment.to_string()).or_default();
        exp.cells += 1;
        match outcome {
            CellOutcome::Executed => exp.executed += 1,
            CellOutcome::ReplayedJournal | CellOutcome::ReplayedCache => exp.replayed += 1,
            CellOutcome::Failed => exp.failed += 1,
        }
        exp.attempts += u64::from(attempts);
        exp.retries += retries;
        exp.backoff_ms += backoff_ms;
        exp.cell_secs += wall_secs;
        exp.train_secs += train_secs;
        exp.infer_secs += infer_secs;
    }

    /// Record the whole-experiment wall-clock span (cells + render).
    pub fn record_experiment_wall(&self, experiment: &str, wall_secs: f64) {
        self.agg().experiments.entry(experiment.to_string()).or_default().wall_secs += wall_secs;
    }

    /// Record serving ingest progress: `packets` frames examined, of
    /// which `non_ip` carried no flow key (ARP, malformed, ...).
    pub fn record_serving_packets(&self, packets: u64, non_ip: u64) {
        let mut agg = self.agg();
        agg.serving.packets += packets;
        agg.serving.non_ip += non_ip;
    }

    /// Record a flow entering the serving flow table.
    pub fn record_serving_flow_opened(&self) {
        self.agg().serving.flows_opened += 1;
    }

    /// Record a flow leaving the serving flow table.
    pub fn record_serving_eviction(&self, reason: EvictionReason) {
        let mut agg = self.agg();
        match reason {
            EvictionReason::Closed => agg.serving.evicted_closed += 1,
            EvictionReason::Idle => agg.serving.evicted_idle += 1,
            EvictionReason::Flush => agg.serving.flushed += 1,
        }
    }

    /// Record one classification batch producing `verdicts` verdicts.
    pub fn record_serving_batch(&self, verdicts: usize) {
        let mut agg = self.agg();
        agg.serving.batches += 1;
        agg.serving.verdicts += verdicts as u64;
    }

    /// Record a model hot-reload applied at packet sequence `boundary`.
    pub fn record_serving_reload(&self, boundary: u64) {
        let mut agg = self.agg();
        agg.serving.reloads_applied += 1;
        agg.serving.boundaries.push(boundary);
    }

    /// Record a reload candidate refused (corrupt or incompatible);
    /// the previous bundle keeps serving.
    pub fn record_serving_reload_refused(&self) {
        self.agg().serving.reloads_refused += 1;
    }

    /// Record one shard worker's end-of-run totals.
    pub fn record_serving_shard(&self, shard: usize, flows: u64, verdicts: u64, busy_secs: f64) {
        let mut agg = self.agg();
        let sh = agg.serving.shards.entry(shard).or_default();
        sh.flows += flows;
        sh.verdicts += verdicts;
        sh.busy_secs += busy_secs;
    }

    /// Render the serving counters (plus any recorded stages) as
    /// deterministic-structure JSON. Strictly out of band: nothing in
    /// here ever reaches the verdict stream.
    pub fn serving_metrics_json(&self, total_secs: f64) -> String {
        let agg = self.agg();
        let sv = &agg.serving;
        let counts = &self.event_counts;
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"debunk-serving-metrics-v2\",\n");
        s.push_str(&format!("  \"total_secs\": {},\n", format_f64(total_secs)));
        s.push_str(&format!(
            "  \"packets\": {{\"seen\": {}, \"non_ip\": {}}},\n",
            sv.packets, sv.non_ip
        ));
        s.push_str(&format!(
            "  \"flows\": {{\"opened\": {}, \"evicted_closed\": {}, \"evicted_idle\": {}, \
             \"flushed\": {}}},\n",
            sv.flows_opened, sv.evicted_closed, sv.evicted_idle, sv.flushed
        ));
        s.push_str(&format!(
            "  \"batches\": {{\"count\": {}, \"verdicts\": {}}},\n",
            sv.batches, sv.verdicts
        ));
        let boundaries: Vec<String> = sv.boundaries.iter().map(|b| b.to_string()).collect();
        s.push_str(&format!(
            "  \"reloads\": {{\"applied\": {}, \"refused\": {}, \"boundaries\": [{}]}},\n",
            sv.reloads_applied,
            sv.reloads_refused,
            boundaries.join(", ")
        ));
        s.push_str("  \"shards\": {");
        for (i, (idx, sh)) in sv.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let fps = if sh.busy_secs > 0.0 { sh.flows as f64 / sh.busy_secs } else { 0.0 };
            s.push_str(&format!(
                "\n    \"{}\": {{\"flows\": {}, \"verdicts\": {}, \"busy_secs\": {}, \
                 \"flows_per_sec\": {}}}",
                idx,
                sh.flows,
                sh.verdicts,
                format_f64(sh.busy_secs),
                format_f64(fps)
            ));
        }
        s.push_str(if sv.shards.is_empty() { "},\n" } else { "\n  },\n" });
        let kernel_stats = nn::kernel::kernel_stats();
        s.push_str(&format!(
            "  \"simd\": {{\"lane\": \"{}\", \"dispatches\": {}}},\n",
            nn::simd::active_lane().name(),
            kernel_stats.simd_dispatches,
        ));
        s.push_str(&format!(
            "  \"events\": {{\"debug\": {}, \"info\": {}, \"warn\": {}, \"error\": {}}},\n",
            counts[0].load(Ordering::Relaxed),
            counts[1].load(Ordering::Relaxed),
            counts[2].load(Ordering::Relaxed),
            counts[3].load(Ordering::Relaxed),
        ));
        s.push_str("  \"stages\": {");
        for (i, (name, st)) in agg.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"secs\": {}}}",
                escape_json(name),
                st.count,
                format_f64(st.secs)
            ));
        }
        s.push_str(if agg.stages.is_empty() { "}\n" } else { "\n  }\n" });
        s.push('}');
        s
    }

    /// Write the serving metrics atomically as `metrics.json` under this
    /// sink's directory. `Ok(None)` for a stderr-only sink.
    pub fn write_serving_metrics(&self, total_secs: f64) -> io::Result<Option<PathBuf>> {
        let Some(dir) = &self.dir else { return Ok(None) };
        let path = dir.join(METRICS_FILE);
        let mut body = self.serving_metrics_json(total_secs);
        body.push('\n');
        atomic_write(&path, body.as_bytes())?;
        Ok(Some(path))
    }

    /// Render the aggregated metrics as deterministic-structure JSON.
    /// Artifact-cache and cell counters come from the session's
    /// [`RunSummary`](crate::engine::RunSummary), so `metrics.json`
    /// reconciles with `run-manifest.json` by construction.
    pub fn metrics_json(
        &self,
        summary: &crate::engine::runner::RunSummary,
        total_secs: f64,
    ) -> String {
        let agg = self.agg();
        let kernel_stats = nn::kernel::kernel_stats();
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(&format!("  \"total_secs\": {},\n", format_f64(total_secs)));
        s.push_str(&format!(
            "  \"cells\": {{\"total\": {}, \"done\": {}, \"failed\": {}, \"resumed\": {}}},\n",
            summary.cells_total, summary.cells_done, summary.cells_failed, summary.cells_resumed
        ));
        s.push_str(&format!("  \"attempts\": {},\n", agg.attempts));
        s.push_str(&format!("  \"retries\": {},\n", agg.retries));
        s.push_str(&format!("  \"backoff_ms\": {},\n", agg.backoff_ms));
        s.push_str(&format!(
            "  \"artifacts\": {{\"builds\": {}, \"mem_hits\": {}, \"disk_hits\": {}}},\n",
            summary.artifacts.builds, summary.artifacts.mem_hits, summary.artifacts.disk_hits
        ));
        let counts = &self.event_counts;
        s.push_str(&format!(
            "  \"events\": {{\"debug\": {}, \"info\": {}, \"warn\": {}, \"error\": {}}},\n",
            counts[0].load(Ordering::Relaxed),
            counts[1].load(Ordering::Relaxed),
            counts[2].load(Ordering::Relaxed),
            counts[3].load(Ordering::Relaxed),
        ));
        match &agg.kernel {
            Some(k) => s.push_str(&format!(
                "  \"kernel\": {{\"jobs\": {}, \"cell_jobs\": {}, \"kernel_threads\": {}, \
                 \"parallel_dispatches\": {}, \"serial_dispatches\": {}}},\n",
                k.jobs,
                k.cell_jobs,
                k.kernel_threads,
                kernel_stats.parallel_dispatches,
                kernel_stats.serial_dispatches,
            )),
            None => s.push_str("  \"kernel\": null,\n"),
        }
        s.push_str(&format!(
            "  \"simd\": {{\"lane\": \"{}\", \"dispatches\": {}}},\n",
            nn::simd::active_lane().name(),
            kernel_stats.simd_dispatches,
        ));
        s.push_str("  \"stages\": {");
        for (i, (name, st)) in agg.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"secs\": {}}}",
                escape_json(name),
                st.count,
                format_f64(st.secs)
            ));
        }
        s.push_str(if agg.stages.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str("  \"experiments\": {");
        for (i, (name, e)) in agg.experiments.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"cells\": {}, \"executed\": {}, \"replayed\": {}, \
                 \"failed\": {}, \"attempts\": {}, \"retries\": {}, \"backoff_ms\": {}, \
                 \"wall_secs\": {}, \"cell_secs\": {}, \"train_secs\": {}, \"infer_secs\": {}}}",
                escape_json(name),
                e.cells,
                e.executed,
                e.replayed,
                e.failed,
                e.attempts,
                e.retries,
                e.backoff_ms,
                format_f64(e.wall_secs),
                format_f64(e.cell_secs),
                format_f64(e.train_secs),
                format_f64(e.infer_secs),
            ));
        }
        s.push_str(if agg.experiments.is_empty() { "}\n" } else { "\n  }\n" });
        s.push('}');
        s
    }

    /// Write `metrics.json` atomically under this sink's directory.
    /// Returns `Ok(None)` for a stderr-only sink (nothing to write).
    pub fn write_metrics(
        &self,
        summary: &crate::engine::runner::RunSummary,
        total_secs: f64,
    ) -> io::Result<Option<PathBuf>> {
        let Some(dir) = &self.dir else { return Ok(None) };
        let path = dir.join(METRICS_FILE);
        let mut body = self.metrics_json(summary, total_secs);
        body.push('\n');
        atomic_write(&path, body.as_bytes())?;
        Ok(Some(path))
    }
}

static GLOBAL: OnceLock<RwLock<Arc<ObsSink>>> = OnceLock::new();

fn global_cell() -> &'static RwLock<Arc<ObsSink>> {
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(ObsSink::stderr(LogFormat::Text))))
}

/// The process-global sink: stderr/text until [`set_global`] replaces
/// it. Components without a session handle (front-end banners, caches
/// constructed outside a run) log here.
pub fn global() -> Arc<ObsSink> {
    global_cell().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Install `sink` as the process-global sink (e.g. `repro` after
/// parsing `--log-format`).
pub fn set_global(sink: Arc<ObsSink>) {
    *global_cell().write().unwrap_or_else(|e| e.into_inner()) = sink;
}

// ---------------------------------------------------------------------------
// Trace report
// ---------------------------------------------------------------------------

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key)
        .and_then(|v| match v {
            Json::Num(n) => Some(*n as u64),
            _ => None,
        })
        .unwrap_or(0)
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| match v {
            Json::Num(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0.0)
}

/// Render a `metrics.json` document as a Markdown per-experiment
/// time/cache breakdown (the `results_md --trace-report` view).
pub fn trace_report(metrics: &str) -> Result<String, String> {
    let j = parse_json(metrics)?;
    let cells = j.get("cells").ok_or("missing 'cells'")?;
    let artifacts = j.get("artifacts").ok_or("missing 'artifacts'")?;
    let mut out = String::from("# Trace report\n\n");
    out.push_str(&format!(
        "- total wall-clock: {:.2}s\n- cells: {} total, {} done, {} failed, {} resumed\n\
         - attempts: {} ({} retries, {}ms backoff)\n",
        get_f64(&j, "total_secs"),
        get_u64(cells, "total"),
        get_u64(cells, "done"),
        get_u64(cells, "failed"),
        get_u64(cells, "resumed"),
        get_u64(&j, "attempts"),
        get_u64(&j, "retries"),
        get_u64(&j, "backoff_ms"),
    ));
    let (builds, mem, disk) = (
        get_u64(artifacts, "builds"),
        get_u64(artifacts, "mem_hits"),
        get_u64(artifacts, "disk_hits"),
    );
    let requests = builds + mem + disk;
    let hit_rate = if requests > 0 { 100.0 * (mem + disk) as f64 / requests as f64 } else { 0.0 };
    out.push_str(&format!(
        "- artifact cache: {builds} built, {mem} memory hits, {disk} disk hits \
         ({hit_rate:.1}% hit rate)\n",
    ));
    if let Some(k) = j.get("kernel") {
        if *k != Json::Null {
            out.push_str(&format!(
                "- kernel budget: jobs={} cell_jobs={} kernel_threads={} \
                 ({} parallel / {} serial dispatches)\n",
                get_u64(k, "jobs"),
                get_u64(k, "cell_jobs"),
                get_u64(k, "kernel_threads"),
                get_u64(k, "parallel_dispatches"),
                get_u64(k, "serial_dispatches"),
            ));
        }
    }
    if let Some(Json::Obj(exps)) = j.get("experiments") {
        if !exps.is_empty() {
            out.push_str(
                "\n| experiment | cells | executed | replayed | failed | retries | wall s \
                 | cell s | train s | infer s |\n\
                 |---|---|---|---|---|---|---|---|---|---|\n",
            );
            for (name, e) in exps {
                out.push_str(&format!(
                    "| {name} | {} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
                    get_u64(e, "cells"),
                    get_u64(e, "executed"),
                    get_u64(e, "replayed"),
                    get_u64(e, "failed"),
                    get_u64(e, "retries"),
                    get_f64(e, "wall_secs"),
                    get_f64(e, "cell_secs"),
                    get_f64(e, "train_secs"),
                    get_f64(e, "infer_secs"),
                ));
            }
        }
    }
    if let Some(Json::Obj(stages)) = j.get("stages") {
        if !stages.is_empty() {
            out.push_str("\n| stage | count | total s |\n|---|---|---|\n");
            for (name, st) in stages {
                out.push_str(&format!(
                    "| {name} | {} | {:.3} |\n",
                    get_u64(st, "count"),
                    get_f64(st, "secs"),
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Peak-RSS measurement (out-of-core budget guard + bench_json rows)
// ---------------------------------------------------------------------------

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. Shared
/// by the `#[ignore]`d peak-RSS regression test and `bench_json
/// --pipeline`, so both report the same measurement.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Reset the kernel's peak-RSS watermark (`VmHWM`) so a subsequent
/// [`peak_rss_bytes`] reflects only allocations made after this call.
/// Best-effort: writing `5` to `/proc/self/clear_refs` needs a
/// sufficiently new kernel; returns whether the reset took.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

/// Run `f` with the peak-RSS watermark reset first, returning its
/// result plus the high-water mark (bytes) the run reached. When the
/// reset is unsupported the watermark covers the whole process life —
/// an overestimate, never an underestimate, so budget guards built on
/// this stay sound.
pub fn measure_peak_rss<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    reset_peak_rss();
    let out = f();
    (out, peak_rss_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::runner::RunSummary;

    #[test]
    fn log_format_round_trips() {
        for f in [LogFormat::Text, LogFormat::Json] {
            assert_eq!(LogFormat::parse(f.name()), Some(f));
        }
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn event_json_is_valid_and_carries_fields() {
        let sink = ObsSink::stderr(LogFormat::Text);
        let line = sink.event_json(
            Level::Warn,
            "artifact",
            "ignoring \"x\"",
            &[("path", "a/b".into()), ("n", 3u64.into()), ("secs", 0.25.into())],
        );
        let j = parse_json(&line).expect("event line parses");
        assert_eq!(j.get("level"), Some(&Json::Str("warn".into())));
        assert_eq!(j.get("target"), Some(&Json::Str("artifact".into())));
        let fields = j.get("fields").expect("fields present");
        assert_eq!(fields.get("n"), Some(&Json::Num(3.0)));
        assert_eq!(fields.get("secs"), Some(&Json::Num(0.25)));
    }

    #[test]
    fn stages_and_cells_aggregate_into_metrics() {
        let sink = ObsSink::stderr(LogFormat::Text);
        sink.add_stage("tokenize", 0.5);
        sink.add_stage("tokenize", 0.25);
        sink.record_kernel_budget(4, 2, 2);
        sink.record_cell("table8", CellOutcome::Executed, 2, 15, 1.5, 1.0, 0.25);
        sink.record_cell("table8", CellOutcome::ReplayedCache, 0, 0, 0.01, 0.0, 0.0);
        sink.record_cell("table8", CellOutcome::Failed, 3, 45, 0.5, 0.0, 0.0);
        sink.record_experiment_wall("table8", 2.5);
        let summary =
            RunSummary { cells_total: 3, cells_done: 2, cells_failed: 1, ..Default::default() };
        let json = sink.metrics_json(&summary, 3.0);
        let j = parse_json(&json).expect("metrics parse");
        assert_eq!(get_u64(&j, "attempts"), 5);
        assert_eq!(get_u64(&j, "retries"), 3);
        assert_eq!(get_u64(&j, "backoff_ms"), 60);
        let exp = j.get("experiments").unwrap().get("table8").expect("experiment entry");
        assert_eq!(get_u64(exp, "cells"), 3);
        assert_eq!(get_u64(exp, "executed"), 1);
        assert_eq!(get_u64(exp, "replayed"), 1);
        assert_eq!(get_u64(exp, "failed"), 1);
        assert_eq!(get_f64(exp, "wall_secs"), 2.5);
        let st = j.get("stages").unwrap().get("tokenize").expect("stage entry");
        assert_eq!(get_u64(st, "count"), 2);
        assert_eq!(get_f64(st, "secs"), 0.75);
        let simd = j.get("simd").expect("simd section");
        assert_eq!(
            simd.get("lane"),
            Some(&Json::Str(nn::simd::active_lane().name().to_string())),
            "active SIMD lane is reported"
        );
        let report = trace_report(&json).expect("report renders");
        assert!(report.contains("| table8 | 3 | 1 | 1 | 1 |"), "report: {report}");
        assert!(report.contains("| tokenize | 2 |"));
    }

    #[test]
    fn serving_counters_aggregate_into_metrics() {
        let sink = ObsSink::stderr(LogFormat::Text);
        sink.record_serving_packets(90, 3);
        sink.record_serving_packets(10, 1);
        sink.record_serving_flow_opened();
        sink.record_serving_flow_opened();
        sink.record_serving_eviction(EvictionReason::Closed);
        sink.record_serving_eviction(EvictionReason::Flush);
        sink.record_serving_batch(2);
        sink.record_serving_reload(120);
        sink.record_serving_reload_refused();
        sink.record_serving_shard(0, 2, 2, 0.5);
        sink.add_stage("serve:classify", 0.125);
        let json = sink.serving_metrics_json(1.5);
        let j = parse_json(&json).expect("serving metrics parse");
        assert!(json.contains("\"debunk-serving-metrics-v2\""));
        let rl = j.get("reloads").expect("reloads section");
        assert_eq!(get_u64(rl, "applied"), 1);
        assert_eq!(get_u64(rl, "refused"), 1);
        assert!(json.contains("\"boundaries\": [120]"), "{json}");
        let sh = j.get("shards").and_then(|s| s.get("0")).expect("shard 0 section");
        assert_eq!(get_u64(sh, "flows"), 2);
        assert_eq!(get_f64(sh, "busy_secs"), 0.5);
        let pk = j.get("packets").expect("packets section");
        assert_eq!(get_u64(pk, "seen"), 100);
        assert_eq!(get_u64(pk, "non_ip"), 4);
        let fl = j.get("flows").expect("flows section");
        assert_eq!(get_u64(fl, "opened"), 2);
        assert_eq!(get_u64(fl, "evicted_closed"), 1);
        assert_eq!(get_u64(fl, "flushed"), 1);
        let b = j.get("batches").expect("batches section");
        assert_eq!(get_u64(b, "count"), 1);
        assert_eq!(get_u64(b, "verdicts"), 2);
        let st = j.get("stages").unwrap().get("serve:classify").expect("stage entry");
        assert_eq!(get_f64(st, "secs"), 0.125);
        let simd = j.get("simd").expect("simd section");
        assert_eq!(simd.get("lane"), Some(&Json::Str(nn::simd::active_lane().name().to_string())));
    }

    #[test]
    fn trace_report_rejects_garbage() {
        assert!(trace_report("{not json").is_err());
        assert!(trace_report("{\"schema\": 1}").is_err(), "missing sections must error");
    }

    #[test]
    fn with_dir_writes_parseable_trace_lines_and_metrics() {
        let dir = std::env::temp_dir().join("debunk-obs-sink-test");
        std::fs::remove_dir_all(&dir).ok();
        let sink = ObsSink::with_dir(&dir, LogFormat::Text).expect("sink opens");
        assert!(sink.tracing());
        sink.debug("t", "debug line", &[("k", "v".into())]);
        sink.info("t", "info line", &[]);
        let path = sink
            .write_metrics(&RunSummary::default(), 1.0)
            .expect("metrics write")
            .expect("dir configured");
        assert_eq!(path.file_name().unwrap(), METRICS_FILE);
        let trace = std::fs::read_to_string(dir.join(TRACE_FILE)).unwrap();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2, "both events traced: {trace}");
        for line in lines {
            parse_json(line).expect("every trace line parses");
        }
        parse_json(&std::fs::read_to_string(&path).unwrap()).expect("metrics parse");
        std::fs::remove_dir_all(&dir).ok();
    }
}
