//! Dataset preparation for one task: generate → clean → parse, with
//! memoisation so multiple experiments share one prepared dataset.

use dataset::clean::{clean_trace, CleanReport};
use dataset::record::Prepared;
use dataset::task::Task;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use traffic_synth::DatasetSpec;

/// A task together with its prepared (cleaned, parsed) dataset.
#[derive(Clone)]
pub struct PreparedTask {
    /// The downstream task.
    pub task: Task,
    /// Cleaned dataset.
    pub data: Arc<Prepared>,
    /// What cleaning removed (Table 13 inputs).
    pub clean_report: Arc<CleanReport>,
    /// Seed used for generation.
    pub seed: u64,
}

impl PreparedTask {
    /// Generate, clean and parse the dataset backing `task`.
    /// `scale` multiplies the default flow budget.
    pub fn build(task: Task, seed: u64, scale: f64) -> PreparedTask {
        let spec = DatasetSpec::new(task.dataset(), seed).scaled(scale);
        let mut trace = spec.generate();
        let report = clean_trace(&mut trace);
        let data = Prepared::from_trace(&trace);
        PreparedTask { task, data: Arc::new(data), clean_report: Arc::new(report), seed }
    }

    /// Per-packet label vector for a set of indices under this task.
    pub fn labels(&self, indices: &[usize]) -> Vec<u16> {
        self.task.labels(&self.data, indices)
    }
}

/// Process-wide cache: the three datasets are expensive to generate and
/// shared by many tables. Keyed by (dataset kind, seed, scale-in-milli).
#[derive(Default)]
pub struct TaskCache {
    cache: Mutex<HashMap<(Task, u64, u64), PreparedTask>>,
}

impl TaskCache {
    /// New empty cache.
    pub fn new() -> TaskCache {
        TaskCache::default()
    }

    /// Get or build the prepared dataset for a task.
    pub fn get(&self, task: Task, seed: u64, scale: f64) -> PreparedTask {
        let key = (task, seed, (scale * 1000.0) as u64);
        if let Some(hit) = self.cache.lock().get(&key) {
            return hit.clone();
        }
        let built = PreparedTask::build(task, seed, scale);
        self.cache.lock().insert(key, built.clone());
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_clean_data() {
        let p = PreparedTask::build(Task::UstcBinary, 3, 0.3);
        assert!(!p.data.records.is_empty());
        assert!(p.clean_report.removed_fraction() > 0.0, "USTC has spurious traffic");
        let labels = p.labels(&[0, 1, 2]);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn cache_returns_same_arc() {
        let cache = TaskCache::new();
        let a = cache.get(Task::VpnBinary, 1, 0.2);
        let b = cache.get(Task::VpnBinary, 1, 0.2);
        assert!(Arc::ptr_eq(&a.data, &b.data), "second get must hit the cache");
        // Different tasks on the same dataset still rebuild (simple key),
        // but different seeds definitely must differ.
        let c = cache.get(Task::VpnBinary, 2, 0.2);
        assert!(!Arc::ptr_eq(&a.data, &c.data));
    }
}
