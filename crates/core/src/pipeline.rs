//! Dataset preparation for one task: generate → clean → parse, plus the
//! derived per-dataset products (token matrices, feature matrices, split
//! index sets), all served by the content-addressed
//! [`ArtifactCache`](crate::artifact::ArtifactCache).
//!
//! The cache is keyed by *dataset*, not task: `Task::VpnApp` and
//! `Task::VpnService` are different label functions over the same
//! ISCX-VPN trace, so they share one `Arc<Prepared>`. Builds are
//! single-flight — concurrent misses under `--jobs N` block on one
//! build instead of duplicating it — and row-level work inside a build
//! is partitioned across the kernel-thread budget with the bit-identical
//! pattern from `nn::kernel` (each row a pure function of its record),
//! so records stay byte-identical at any thread count.

use crate::artifact::{Artifact, ArtifactCache, RowGroup, ROW_GROUP_ROWS};
use crate::experiment::SplitPolicy;
use dataset::clean::{clean_trace, CleanReport};
use dataset::codec::{ByteReader, ByteWriter};
use dataset::record::{read_classes, read_records, records_to_bytes, write_classes, Prepared};
use dataset::split::{per_flow_split, per_packet_split, Split};
use dataset::task::Task;
use encoders::model::EncoderModel;
use encoders::tokenize::{token_rows_from_bytes, token_rows_to_bytes};
use shallow::features::{
    extract_features, features_from_bytes, features_to_bytes, FeatureConfig, N_FEATURES,
};
use std::sync::Arc;
use traffic_synth::DatasetSpec;

/// The product of the generate → clean → parse chain for one
/// (dataset kind, seed, scale): cleaned records plus the cleaning
/// report, cached as a single artifact.
pub struct DatasetArtifact {
    /// Cleaned, parsed dataset.
    pub data: Arc<Prepared>,
    /// What cleaning removed (Table 13 inputs).
    pub clean: Arc<CleanReport>,
}

impl Artifact for DatasetArtifact {
    const STAGE: &'static str = "prepared";

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&self.data.to_bytes());
        w.bytes(&self.clean.to_bytes());
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<DatasetArtifact, String> {
        let mut r = ByteReader::new(bytes);
        let data = Prepared::from_bytes(r.bytes()?)?;
        let clean = CleanReport::from_bytes(r.bytes()?)?;
        r.finish()?;
        Ok(DatasetArtifact { data: Arc::new(data), clean: Arc::new(clean) })
    }

    /// v2 grouping: record chunks first, then one metadata group
    /// (class table + clean report). The metadata goes **last** because
    /// the streaming out-of-core writer only knows the clean report
    /// after the final record chunk has been tallied.
    fn to_groups(&self) -> Vec<RowGroup> {
        let mut groups = dataset_record_groups(&self.data.records);
        groups
            .push(RowGroup { rows: 0, bytes: dataset_meta_group(&self.data.classes, &self.clean) });
        groups
    }

    fn from_groups(groups: Vec<Vec<u8>>) -> Result<DatasetArtifact, String> {
        let (meta, chunks) =
            groups.split_last().ok_or("prepared artifact needs a metadata group")?;
        let mut records = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            let mut r = ByteReader::new(chunk);
            records.extend(read_records(&mut r).map_err(|e| format!("record group {i}: {e}"))?);
            r.finish().map_err(|e| format!("record group {i}: {e}"))?;
        }
        let mut r = ByteReader::new(meta);
        let classes = read_classes(&mut r)?;
        let clean = CleanReport::from_bytes(r.bytes()?)?;
        r.finish()?;
        Ok(DatasetArtifact {
            data: Arc::new(Prepared { records, classes }),
            clean: Arc::new(clean),
        })
    }
}

/// Chunk cleaned records into self-contained row groups of
/// [`ROW_GROUP_ROWS`] records each.
pub(crate) fn dataset_record_groups(records: &[dataset::record::PacketRecord]) -> Vec<RowGroup> {
    records
        .chunks(ROW_GROUP_ROWS)
        .map(|chunk| RowGroup { rows: chunk.len() as u64, bytes: records_to_bytes(chunk) })
        .collect()
}

/// Encode the trailing metadata group of a prepared-dataset artifact.
pub(crate) fn dataset_meta_group(
    classes: &[traffic_synth::ClassMeta],
    clean: &CleanReport,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_classes(&mut w, classes);
    w.bytes(&clean.to_bytes());
    w.into_bytes()
}

/// Whole-dataset token matrix: one token row per record for a fixed
/// (model kind, input ablation, variant).
pub struct TokenMatrix(pub Vec<Vec<u32>>);

impl std::ops::Deref for TokenMatrix {
    type Target = [Vec<u32>];
    fn deref(&self) -> &[Vec<u32>] {
        &self.0
    }
}

impl Artifact for TokenMatrix {
    const STAGE: &'static str = "tokens";

    fn to_bytes(&self) -> Vec<u8> {
        token_rows_to_bytes(&self.0)
    }

    fn from_bytes(bytes: &[u8]) -> Result<TokenMatrix, String> {
        token_rows_from_bytes(bytes).map(TokenMatrix)
    }

    fn to_groups(&self) -> Vec<RowGroup> {
        self.0
            .chunks(ROW_GROUP_ROWS)
            .map(|c| RowGroup { rows: c.len() as u64, bytes: token_rows_to_bytes(c) })
            .collect()
    }

    fn from_groups(groups: Vec<Vec<u8>>) -> Result<TokenMatrix, String> {
        let mut rows = Vec::new();
        for (i, g) in groups.iter().enumerate() {
            rows.extend(token_rows_from_bytes(g).map_err(|e| format!("token group {i}: {e}"))?);
        }
        Ok(TokenMatrix(rows))
    }
}

/// Whole-dataset shallow feature matrix (Table 12 vectors).
pub struct FeatureMatrix(pub Vec<[f32; N_FEATURES]>);

impl std::ops::Deref for FeatureMatrix {
    type Target = [[f32; N_FEATURES]];
    fn deref(&self) -> &[[f32; N_FEATURES]] {
        &self.0
    }
}

impl Artifact for FeatureMatrix {
    const STAGE: &'static str = "features";

    fn to_bytes(&self) -> Vec<u8> {
        features_to_bytes(&self.0)
    }

    fn from_bytes(bytes: &[u8]) -> Result<FeatureMatrix, String> {
        features_from_bytes(bytes).map(FeatureMatrix)
    }

    fn to_groups(&self) -> Vec<RowGroup> {
        self.0
            .chunks(ROW_GROUP_ROWS)
            .map(|c| RowGroup { rows: c.len() as u64, bytes: features_to_bytes(c) })
            .collect()
    }

    fn from_groups(groups: Vec<Vec<u8>>) -> Result<FeatureMatrix, String> {
        let mut rows = Vec::new();
        for (i, g) in groups.iter().enumerate() {
            rows.extend(features_from_bytes(g).map_err(|e| format!("feature group {i}: {e}"))?);
        }
        Ok(FeatureMatrix(rows))
    }
}

impl Artifact for Split {
    const STAGE: &'static str = "split";

    fn to_bytes(&self) -> Vec<u8> {
        Split::to_bytes(self)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Split, String> {
        Split::from_bytes(bytes)
    }
}

/// Which per-record tokenisation a [`TokenMatrix`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenVariant {
    /// [`EncoderModel::tokenize_packet_repeated`] rows (training/eval).
    Repeated,
    /// [`EncoderModel::tokenize_packet_padded`] rows (padding probe).
    Padded,
}

impl TokenVariant {
    /// Cache-key tag (part of the token artifact's content address).
    pub fn tag(self) -> &'static str {
        match self {
            TokenVariant::Repeated => "repeated",
            TokenVariant::Padded => "padded",
        }
    }
}

/// Build one output row per record index, partitioning rows across the
/// `nn::kernel_threads` budget. `f` must be a pure function of its
/// index, so the result is identical to the serial loop for any thread
/// count — the same contract as the PR 2 kernels.
fn par_rows<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = nn::kernel_threads().clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(ci * chunk + j));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("every row filled")).collect()
}

/// A task together with its prepared (cleaned, parsed) dataset and a
/// handle to the artifact cache serving its derived products.
#[derive(Clone)]
pub struct PreparedTask {
    /// The downstream task.
    pub task: Task,
    /// Cleaned dataset.
    pub data: Arc<Prepared>,
    /// What cleaning removed (Table 13 inputs).
    pub clean_report: Arc<CleanReport>,
    /// Seed used for generation.
    pub seed: u64,
    artifacts: Arc<ArtifactCache>,
    dataset_key: [String; 3],
}

impl PreparedTask {
    /// Generate, clean and parse the dataset backing `task`.
    /// `scale` multiplies the default flow budget. Always builds fresh
    /// (private memory-only cache) — shared callers go through
    /// [`TaskCache`].
    pub fn build(task: Task, seed: u64, scale: f64) -> PreparedTask {
        TaskCache::new().get(task, seed, scale)
    }

    /// Wrap an externally prepared dataset (e.g. fault-injected traffic
    /// that never went through the canonical prepare chain). Derived
    /// artifacts use a private memory-only cache, so they can neither
    /// alias nor pollute the canonical dataset's artifacts.
    pub fn from_parts(
        task: Task,
        data: Arc<Prepared>,
        clean_report: Arc<CleanReport>,
        seed: u64,
    ) -> PreparedTask {
        let dataset_key =
            [task.dataset().name().to_string(), format!("{seed:016x}"), "external".to_string()];
        PreparedTask {
            task,
            data,
            clean_report,
            seed,
            artifacts: Arc::new(ArtifactCache::new(None)),
            dataset_key,
        }
    }

    /// Per-packet label vector for a set of indices under this task.
    pub fn labels(&self, indices: &[usize]) -> Vec<u16> {
        self.task.labels(&self.data, indices)
    }

    fn derived_parts<'a>(&'a self, extra: &[&'a str]) -> Vec<&'a str> {
        let mut parts: Vec<&str> = self.dataset_key.iter().map(String::as_str).collect();
        parts.extend_from_slice(extra);
        parts
    }

    /// Whole-dataset shallow feature matrix for `cfg`, cached.
    pub fn features(&self, cfg: FeatureConfig) -> Arc<FeatureMatrix> {
        let ip = if cfg.with_ip { "ip" } else { "no-ip" };
        let data = self.data.clone();
        let obs = self.artifacts.obs();
        self.artifacts.get_or_build(&self.derived_parts(&[ip]), || {
            obs.time_stage("featurize", || {
                FeatureMatrix(par_rows(data.records.len(), |i| {
                    extract_features(&data.records[i], cfg)
                }))
            })
        })
    }

    /// Whole-dataset token matrix for `encoder`, cached. Tokenisation
    /// depends only on the model *kind* (its hash salt and byte view)
    /// and the input ablation — never on weights — so the key is
    /// (dataset, kind, ablation, variant).
    pub fn tokens(&self, encoder: &EncoderModel, variant: TokenVariant) -> Arc<TokenMatrix> {
        let parts = [encoder.kind.name(), encoder.ablation.cache_tag(), variant.tag()];
        let data = self.data.clone();
        let obs = self.artifacts.obs();
        self.artifacts.get_or_build(&self.derived_parts(&parts), || {
            obs.time_stage("tokenize", || {
                TokenMatrix(par_rows(data.records.len(), |i| {
                    let rec = &data.records[i];
                    match variant {
                        TokenVariant::Repeated => encoder.tokenize_packet_repeated(rec),
                        TokenVariant::Padded => encoder.tokenize_packet_padded(rec),
                    }
                }))
            })
        })
    }

    /// Train/test split for this dataset under `policy`, cached.
    pub fn split(
        &self,
        policy: SplitPolicy,
        train_frac: f64,
        max_flow_packets: usize,
        seed: u64,
    ) -> Arc<Split> {
        let frac = format!("{:016x}", train_frac.to_bits());
        let seed_hex = format!("{seed:016x}");
        let data = self.data.clone();
        let obs = self.artifacts.obs();
        match policy {
            SplitPolicy::PerFlow => {
                let mfp = max_flow_packets.to_string();
                let parts = ["per-flow", frac.as_str(), mfp.as_str(), seed_hex.as_str()];
                self.artifacts.get_or_build(&self.derived_parts(&parts), || {
                    obs.time_stage("split", || {
                        per_flow_split(&data, train_frac, max_flow_packets, seed)
                    })
                })
            }
            SplitPolicy::PerPacket => {
                let parts = ["per-packet", frac.as_str(), seed_hex.as_str()];
                self.artifacts.get_or_build(&self.derived_parts(&parts), || {
                    obs.time_stage("split", || per_packet_split(&data, train_frac, seed))
                })
            }
        }
    }
}

/// Process-wide cache over the prepare chain. Thin handle around an
/// [`ArtifactCache`]: keyed by (dataset kind, seed, scale-in-milli) —
/// *not* by `Task`, so tasks sharing a dataset share one build — with
/// single-flight misses and an optional disk tier.
#[derive(Default)]
pub struct TaskCache {
    artifacts: Arc<ArtifactCache>,
}

impl TaskCache {
    /// New memory-only cache.
    pub fn new() -> TaskCache {
        TaskCache::default()
    }

    /// Cache backed by a shared artifact store (possibly with a disk
    /// tier under `--cache-dir`).
    pub fn with_artifacts(artifacts: Arc<ArtifactCache>) -> TaskCache {
        TaskCache { artifacts }
    }

    /// The backing artifact store.
    pub fn artifacts(&self) -> &Arc<ArtifactCache> {
        &self.artifacts
    }

    /// Get or build the prepared dataset for a task. Concurrent misses
    /// for the same dataset block on a single build.
    pub fn get(&self, task: Task, seed: u64, scale: f64) -> PreparedTask {
        let kind = task.dataset();
        let dataset_key = [
            kind.name().to_string(),
            format!("{seed:016x}"),
            ((scale * 1000.0) as u64).to_string(),
        ];
        let parts: Vec<&str> = dataset_key.iter().map(String::as_str).collect();
        let obs = self.artifacts.obs();
        let art = self.artifacts.get_or_build::<DatasetArtifact>(&parts, || {
            let spec = DatasetSpec::new(kind, seed).scaled(scale);
            let mut trace = obs.time_stage("trace", || spec.generate());
            obs.time_stage("clean", || {
                let report = clean_trace(&mut trace);
                DatasetArtifact {
                    data: Arc::new(Prepared::from_trace(&trace)),
                    clean: Arc::new(report),
                }
            })
        });
        PreparedTask {
            task,
            data: art.data.clone(),
            clean_report: art.clean.clone(),
            seed,
            artifacts: self.artifacts.clone(),
            dataset_key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn build_produces_clean_data() {
        let p = PreparedTask::build(Task::UstcBinary, 3, 0.3);
        assert!(!p.data.records.is_empty());
        assert!(p.clean_report.removed_fraction() > 0.0, "USTC has spurious traffic");
        let labels = p.labels(&[0, 1, 2]);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn cache_returns_same_arc() {
        let cache = TaskCache::new();
        let a = cache.get(Task::VpnBinary, 1, 0.2);
        let b = cache.get(Task::VpnBinary, 1, 0.2);
        assert!(Arc::ptr_eq(&a.data, &b.data), "second get must hit the cache");
        let c = cache.get(Task::VpnBinary, 2, 0.2);
        assert!(!Arc::ptr_eq(&a.data, &c.data), "different seeds must differ");
    }

    #[test]
    fn tasks_sharing_a_dataset_share_one_prepared_arc() {
        // VpnApp / VpnService / VpnBinary are different label functions
        // over the same ISCX-VPN trace: one build, one Arc.
        let cache = TaskCache::new();
        let app = cache.get(Task::VpnApp, 1, 0.2);
        let service = cache.get(Task::VpnService, 1, 0.2);
        let binary = cache.get(Task::VpnBinary, 1, 0.2);
        assert!(Arc::ptr_eq(&app.data, &service.data));
        assert!(Arc::ptr_eq(&app.data, &binary.data));
        assert_eq!(cache.artifacts().stats().builds, 1, "one dataset build for three tasks");
        assert_eq!(app.task, Task::VpnApp);
        assert_eq!(service.task, Task::VpnService);
    }

    #[test]
    fn concurrent_misses_are_single_flight() {
        // Regression for the old check-then-build race: parallel cells
        // asking for the same dataset must share exactly one build.
        let cache = TaskCache::new();
        let built: Vec<PreparedTask> = {
            let mut out = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> =
                    (0..8).map(|_| s.spawn(|| cache.get(Task::UstcBinary, 5, 0.15))).collect();
                out.extend(handles.into_iter().map(|h| h.join().expect("no panic")));
            });
            out
        };
        let first = &built[0];
        assert!(built.iter().all(|p| Arc::ptr_eq(&p.data, &first.data)));
        let stats = cache.artifacts().stats();
        assert_eq!(stats.builds, 1, "concurrent misses duplicated the build");
        assert_eq!(stats.mem_hits, 7);
    }

    #[test]
    fn derived_artifacts_are_cached_and_thread_count_invariant() {
        use encoders::model::{EncoderModel, ModelKind};
        let prep = PreparedTask::build(Task::UstcBinary, 5, 0.15);
        let enc = EncoderModel::new(ModelKind::EtBert, 1);

        nn::set_kernel_threads(1);
        let serial_tokens = prep.tokens(&enc, TokenVariant::Repeated);
        let serial_feats = prep.features(FeatureConfig::default());
        let serial_split = prep.split(SplitPolicy::PerFlow, 7.0 / 8.0, 1000, 9);

        // Same key → same Arc, builder not re-run.
        assert!(Arc::ptr_eq(&serial_tokens, &prep.tokens(&enc, TokenVariant::Repeated)));
        assert!(Arc::ptr_eq(&serial_feats, &prep.features(FeatureConfig::default())));
        assert!(Arc::ptr_eq(&serial_split, &prep.split(SplitPolicy::PerFlow, 7.0 / 8.0, 1000, 9)));

        // A fresh dataset handle built at a different thread budget must
        // produce identical rows (par_rows is bit-identical to serial).
        nn::set_kernel_threads(4);
        let prep4 = PreparedTask::build(Task::UstcBinary, 5, 0.15);
        let par_tokens = prep4.tokens(&enc, TokenVariant::Repeated);
        let par_feats = prep4.features(FeatureConfig::default());
        assert_eq!(par_tokens.0, serial_tokens.0);
        assert_eq!(par_feats.0.len(), serial_feats.0.len(),);
        for (a, b) in serial_feats.0.iter().zip(par_feats.0.iter()) {
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        nn::set_kernel_threads(1);

        // Keys separate variants and configs. Variant content only
        // differs for flow embedders (packet-level models tokenise
        // Repeated and Padded identically by design), so check content
        // with YaTC and key separation with both.
        let yatc = EncoderModel::new(ModelKind::YaTc, 1);
        let repeated = prep.tokens(&yatc, TokenVariant::Repeated);
        let padded = prep.tokens(&yatc, TokenVariant::Padded);
        assert!(!Arc::ptr_eq(&repeated, &padded));
        assert_ne!(padded.0, repeated.0);
        assert!(!Arc::ptr_eq(&prep.tokens(&enc, TokenVariant::Padded), &serial_tokens));
        let no_ip = prep.features(FeatureConfig { with_ip: false });
        assert!(!Arc::ptr_eq(&no_ip, &serial_feats));
    }

    #[test]
    fn from_parts_does_not_alias_canonical_artifacts() {
        let canonical = PreparedTask::build(Task::UstcBinary, 5, 0.15);
        let mut mutated = (*canonical.data).clone();
        mutated.records.truncate(mutated.records.len() / 2);
        let external = PreparedTask::from_parts(
            Task::UstcBinary,
            Arc::new(mutated),
            canonical.clean_report.clone(),
            5,
        );
        let a = canonical.features(FeatureConfig::default());
        let b = external.features(FeatureConfig::default());
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.0.len(), external.data.records.len());
    }

    #[test]
    fn par_rows_matches_serial_for_every_thread_count() {
        let n = 103;
        let expect: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        let before = nn::kernel_threads();
        for threads in [1, 2, 3, 8, 64] {
            nn::set_kernel_threads(threads);
            assert_eq!(par_rows(n, |i| i * 3 + 1), expect, "threads={threads}");
        }
        nn::set_kernel_threads(before);
        let counter = AtomicUsize::new(0);
        nn::set_kernel_threads(4);
        par_rows(10, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        nn::set_kernel_threads(before);
        assert_eq!(counter.load(Ordering::SeqCst), 10, "each row computed exactly once");
    }

    #[test]
    fn dataset_artifact_codec_round_trips() {
        let p = PreparedTask::build(Task::UstcBinary, 3, 0.15);
        let art = DatasetArtifact { data: p.data.clone(), clean: p.clean_report.clone() };
        let bytes = art.to_bytes();
        let back = DatasetArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.data.records.len(), p.data.records.len());
        assert_eq!(back.clean.total_after, p.clean_report.total_after);
        assert_eq!(back.to_bytes(), bytes, "canonical re-encoding");
        assert!(DatasetArtifact::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
