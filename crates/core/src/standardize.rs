//! Per-dimension z-score standardisation for frozen-encoder features.
//!
//! Fitted on the training embeddings and applied to both partitions —
//! the classification head then sees unit-scale inputs regardless of
//! what the (frozen) encoder's output geometry looks like.

use nn::Tensor;

/// Fitted standardisation statistics.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fit on a training feature matrix.
    pub fn fit(x: &Tensor) -> Standardizer {
        let d = x.cols;
        let n = x.rows.max(1) as f32;
        let mut mean = vec![0.0f32; d];
        for r in 0..x.rows {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0f32; d];
        for r in 0..x.rows {
            for ((s, &v), m) in std.iter_mut().zip(x.row(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        Standardizer { mean, std }
    }

    /// Standardise a matrix in place.
    pub fn apply(&self, x: &mut Tensor) {
        for r in 0..x.rows {
            let row = x.row_mut(r);
            for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - *m) / *s;
            }
        }
    }

    /// Fit on `train` and standardise both matrices.
    pub fn fit_apply(train: &mut Tensor, test: &mut Tensor) -> Standardizer {
        let s = Standardizer::fit(train);
        s.apply(train);
        s.apply(test);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardised_train_has_zero_mean_unit_std() {
        let mut train = Tensor::from_rows(&[
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ]);
        let mut test = Tensor::from_rows(&[vec![2.5, 250.0]]);
        Standardizer::fit_apply(&mut train, &mut test);
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| train.get(r, c)).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| train.get(r, c).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
        // test row standardised with train statistics: midpoint -> 0
        assert!(test.get(0, 0).abs() < 1e-5);
        assert!(test.get(0, 1).abs() < 1e-5);
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let mut train = Tensor::from_rows(&[vec![5.0], vec![5.0]]);
        let mut test = Tensor::from_rows(&[vec![7.0]]);
        Standardizer::fit_apply(&mut train, &mut test);
        assert!(train.data.iter().all(|v| v.is_finite()));
        assert!(test.data.iter().all(|v| v.is_finite()));
    }
}
