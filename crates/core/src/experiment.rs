//! Packet-level experiment runner: one "cell" of Tables 3–7.
//!
//! A cell = (task, model, split policy, frozen?) trained under the
//! paper's protocol (§5): per-flow or per-packet split, balanced
//! training set, 3-fold cross-validation, frozen or unfrozen encoder,
//! accuracy + macro-F1 on the untouched test partition.

use crate::metrics::{accuracy, macro_f1};
use crate::pipeline::{PreparedTask, TokenMatrix, TokenVariant};
use dataset::record::{PacketRecord, Prepared};
use dataset::split::{balanced_undersample, kfold, subsample, Split};
use dataset::transform::{randomize_dataset_flow_ids, InputAblation};
use encoders::model::{EncoderModel, ModelKind};
use encoders::pcap_encoder::{pretrain_pcap_encoder, PcapEncoderVariant, PretrainBudget};
use encoders::pretrain::{mae_pretrain, pretrain_corpus, sbp_pretrain};
use nn::{Mlp, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Train/test split policy (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SplitPolicy {
    /// Whole flows assigned to one partition (correct).
    PerFlow,
    /// Packets shuffled freely (leaks implicit flow IDs).
    PerPacket,
}

/// Where to apply the implicit-flow-ID randomisation (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlowIdAblation {
    /// Leave SeqNo/AckNo/timestamps untouched.
    None,
    /// Randomise them in the test set only.
    TestOnly,
    /// Randomise them in both partitions.
    TrainAndTest,
}

/// Hyper-parameters for one cell.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct CellConfig {
    /// Hidden width of the 2-layer MLP head.
    pub head_hidden: usize,
    /// Epochs when the encoder is frozen (paper: 60 at lr 2e-3).
    pub frozen_epochs: usize,
    /// Epochs when the encoder is unfrozen (paper: 20 at lr 2e-5).
    pub unfrozen_epochs: usize,
    /// Head learning rate.
    pub lr: f32,
    /// Encoder learning rate for unfrozen training.
    pub lr_encoder: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// K for K-fold cross validation (paper: 3).
    pub kfolds: usize,
    /// Cap on balanced training samples (keeps single-core runs sane).
    pub max_train: usize,
    /// Cap on test samples (stratified).
    pub max_test: usize,
    /// Train fraction of the split.
    pub train_frac: f64,
    /// Long-flow packet cap (paper: 1000).
    pub max_flow_packets: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Implicit-flow-ID ablation (Table 6).
    pub flow_id_ablation: FlowIdAblation,
    /// Input ablation for Pcap-Encoder (Table 7).
    pub input_ablation: InputAblation,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            head_hidden: 128,
            frozen_epochs: 40,
            unfrozen_epochs: 15,
            lr: 0.01,
            lr_encoder: 0.02,
            batch: 64,
            kfolds: 3,
            max_train: 9600,
            max_test: 4800,
            train_frac: 7.0 / 8.0,
            max_flow_packets: 1000,
            seed: 42,
            flow_id_ablation: FlowIdAblation::None,
            input_ablation: InputAblation::Base,
        }
    }
}

/// Metrics for one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Mean test accuracy over folds.
    pub accuracy: f64,
    /// Mean test macro-F1 over folds.
    pub macro_f1: f64,
    /// Wall-clock training time (all folds).
    pub train_secs: f64,
    /// Wall-clock inference time (all folds).
    pub infer_secs: f64,
    /// Per-fold (accuracy, macro-F1).
    pub folds: Vec<(f64, f64)>,
}

/// Build an encoder for `kind`, optionally pre-trained with its paper
/// objective (MAE for all, +SBP for ET-BERT, AE+Q&A for Pcap-Encoder).
pub fn build_encoder(
    kind: ModelKind,
    pretrained: bool,
    budget: PretrainBudget,
    seed: u64,
) -> EncoderModel {
    if !pretrained {
        return EncoderModel::new(kind, seed);
    }
    match kind {
        ModelKind::PcapEncoder => {
            pretrain_pcap_encoder(PcapEncoderVariant::AutoencoderQa, budget, seed).model
        }
        // PacRep uses an off-the-shelf text encoder with no network
        // pretext task (Table 1: "None") — nothing to pre-train here.
        ModelKind::PacRep => EncoderModel::new(kind, seed),
        _ => {
            let mut m = EncoderModel::new(kind, seed);
            let corpus = pretrain_corpus(seed ^ 0x77, budget.corpus_flows);
            mae_pretrain(&mut m, &corpus, budget.ae_epochs, budget.lr, seed ^ 0x78);
            if kind == ModelKind::EtBert {
                sbp_pretrain(&mut m, &corpus, 256, budget.lr, seed ^ 0x79);
            }
            if kind == ModelKind::Ptu {
                // SSP (same-session prediction: sessions == flows in our
                // substrate) + HIP/FIP interval prediction.
                sbp_pretrain(&mut m, &corpus, 256, budget.lr, seed ^ 0x7a);
                encoders::pretrain::interval_pretrain(
                    &mut m,
                    &corpus,
                    budget.ae_epochs,
                    budget.lr,
                    seed ^ 0x7b,
                );
            }
            m
        }
    }
}

/// Materialise (possibly transformed) records for a cell. Returns an
/// owned `Prepared` when the ablation rewrites frames, otherwise the
/// original is used as-is through the returned reference.
fn ablated_data(
    prep: &PreparedTask,
    split: &Split,
    ablation: FlowIdAblation,
    seed: u64,
) -> Option<Prepared> {
    if ablation == FlowIdAblation::None {
        return None;
    }
    let mut data = (*prep.data).clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf10);
    match ablation {
        FlowIdAblation::TestOnly => {
            // randomise only records in the test partition
            let test_set: std::collections::HashSet<usize> = split.test.iter().copied().collect();
            for (i, r) in data.records.iter_mut().enumerate() {
                if test_set.contains(&i) {
                    let one = std::slice::from_mut(r);
                    randomize_dataset_flow_ids(one, &mut rng);
                }
            }
        }
        FlowIdAblation::TrainAndTest => {
            randomize_dataset_flow_ids(&mut data.records, &mut rng);
        }
        FlowIdAblation::None => unreachable!(),
    }
    Some(data)
}

/// Run one packet-level cell.
pub fn run_cell(
    prep: &PreparedTask,
    encoder: &EncoderModel,
    split_policy: SplitPolicy,
    frozen: bool,
    cfg: &CellConfig,
) -> CellResult {
    let task = prep.task;
    let split = prep.split(split_policy, cfg.train_frac, cfg.max_flow_packets, cfg.seed);
    let owned = ablated_data(prep, &split, cfg.flow_id_ablation, cfg.seed);
    let data: &Prepared = owned.as_ref().unwrap_or(&prep.data);

    let label_of = |r: &PacketRecord| task.label_of(data, r);
    // Balanced training set (undersample to minority), capped.
    let train_bal = balanced_undersample(data, &split.train, &label_of, cfg.seed ^ 0xb);
    let train_bal = subsample(&train_bal, cfg.max_train, cfg.seed ^ 0xc);
    let test_idx = dataset::split::stratified_sample(
        data,
        &split.test,
        (cfg.max_test as f64 / split.test.len().max(1) as f64).min(1.0),
        &label_of,
        cfg.seed ^ 0xd,
    );
    let n_classes = task.n_classes();
    let test_labels: Vec<u16> = test_idx.iter().map(|&i| label_of(&data.records[i])).collect();
    let test_recs: Vec<&PacketRecord> = test_idx.iter().map(|&i| &data.records[i]).collect();

    let mut encoder = encoder.clone();
    encoder.ablation = cfg.input_ablation;

    // Token rows depend only on the encoder's kind and input ablation —
    // never on its weights — so when the cell runs over the canonical
    // records (no flow-id ablation rewriting frames) the tokenisation is
    // shared across folds, cells, and models of the same kind through
    // the artifact cache.
    let cached_tokens = owned.is_none().then(|| prep.tokens(&encoder, TokenVariant::Repeated));
    let gather = |tok: &TokenMatrix, idx: &[usize]| -> Vec<Vec<u32>> {
        idx.iter().map(|&i| tok[i].clone()).collect()
    };

    let mut folds_out = Vec::new();
    let mut train_secs = 0.0;
    let mut infer_secs = 0.0;
    for (fold_i, (fold_train, _fold_val)) in
        kfold(&train_bal, cfg.kfolds, cfg.seed ^ 0xe).into_iter().enumerate()
    {
        let fold_seed = cfg.seed.wrapping_add(fold_i as u64);
        let train_labels: Vec<u16> =
            fold_train.iter().map(|&i| label_of(&data.records[i])).collect();
        let train_recs: Vec<&PacketRecord> = fold_train.iter().map(|&i| &data.records[i]).collect();

        let t0 = Instant::now();
        let (head, trained_encoder, standardizer) = if frozen {
            let mut x = match &cached_tokens {
                Some(tok) => encoder.encode_tokens(&gather(tok, &fold_train)),
                None => encoder.encode_packets(&train_recs),
            };
            let standardizer = crate::standardize::Standardizer::fit(&x);
            standardizer.apply(&mut x);
            let mut head = Mlp::new(&[encoder.dim(), cfg.head_hidden, n_classes], fold_seed);
            head.fit(&x, &train_labels, cfg.frozen_epochs, cfg.batch, cfg.lr, fold_seed ^ 0x1);
            (head, encoder.clone(), Some(standardizer))
        } else {
            let mut enc = encoder.clone();
            // wider encoders need proportionally smaller steps or the
            // representation churns faster than the head can track
            let lr_enc = cfg.lr_encoder * (64.0 / enc.dim() as f32).min(1.0);
            let mut head = Mlp::new(&[enc.dim(), cfg.head_hidden, n_classes], fold_seed);
            let mut rng = StdRng::seed_from_u64(fold_seed ^ 0x2);
            let mut order: Vec<usize> = (0..train_recs.len()).collect();
            let mut pooled = Tensor::default();
            let mut d_pooled = Tensor::default();
            for epoch in 0..cfg.unfrozen_epochs {
                order.shuffle(&mut rng);
                for chunk in order.chunks(cfg.batch) {
                    let recs: Vec<&PacketRecord> = chunk.iter().map(|&i| train_recs[i]).collect();
                    let labels: Vec<u16> = chunk.iter().map(|&i| train_labels[i]).collect();
                    let tokens = enc.tokenize_training_batch(&recs, epoch as u64);
                    enc.forward_tokens_into(&tokens, &mut pooled);
                    head.train_batch_into(&pooled, &labels, cfg.lr, &mut d_pooled);
                    enc.backward(&d_pooled, lr_enc);
                }
            }
            (head, enc, None)
        };
        train_secs += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut x_test = match &cached_tokens {
            Some(tok) => trained_encoder.encode_tokens(&gather(tok, &test_idx)),
            None => trained_encoder.encode_packets(&test_recs),
        };
        if let Some(s) = &standardizer {
            s.apply(&mut x_test);
        }
        let preds = head.predict(&x_test);
        infer_secs += t1.elapsed().as_secs_f64();
        folds_out.push((accuracy(&preds, &test_labels), macro_f1(&preds, &test_labels, n_classes)));
    }
    let k = folds_out.len().max(1) as f64;
    CellResult {
        accuracy: folds_out.iter().map(|(a, _)| a).sum::<f64>() / k,
        macro_f1: folds_out.iter().map(|(_, f)| f).sum::<f64>() / k,
        train_secs,
        infer_secs,
        folds: folds_out,
    }
}

/// Compute frozen or unfrozen embeddings of a sample of test packets —
/// input to the Fig. 4 purity analysis.
pub fn embeddings_for_purity(
    prep: &PreparedTask,
    encoder: &EncoderModel,
    n: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<u16>) {
    let split = prep.split(SplitPolicy::PerFlow, 7.0 / 8.0, 1000, seed);
    let label_of = |r: &PacketRecord| prep.task.label_of(&prep.data, r);
    let idx = subsample(&split.test, n, seed ^ 0x99);
    let labels: Vec<u16> = idx.iter().map(|&i| label_of(&prep.data.records[i])).collect();
    let tok = prep.tokens(encoder, TokenVariant::Repeated);
    let rows: Vec<Vec<u32>> = idx.iter().map(|&i| tok[i].clone()).collect();
    let emb: Tensor = encoder.encode_tokens(&rows);
    let rows = (0..emb.rows).map(|r| emb.row(r).to_vec()).collect();
    (rows, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::split::per_flow_split;
    use dataset::Task;

    fn tiny_cfg() -> CellConfig {
        CellConfig {
            frozen_epochs: 6,
            unfrozen_epochs: 3,
            kfolds: 2,
            max_train: 400,
            max_test: 400,
            ..Default::default()
        }
    }

    #[test]
    fn frozen_cell_runs_and_is_sane() {
        let prep = PreparedTask::build(Task::UstcBinary, 5, 0.15);
        let enc = EncoderModel::new(ModelKind::EtBert, 1);
        let cell = run_cell(&prep, &enc, SplitPolicy::PerFlow, true, &tiny_cfg());
        assert!(cell.accuracy >= 0.0 && cell.accuracy <= 1.0);
        assert_eq!(cell.folds.len(), 2);
        assert!(cell.train_secs > 0.0);
    }

    #[test]
    fn unfrozen_beats_frozen_on_per_packet_split() {
        // The headline phenomenon at miniature scale: per-packet split
        // + unfrozen encoder exploits implicit flow IDs.
        let prep = PreparedTask::build(Task::UstcApp, 6, 0.15);
        let enc = EncoderModel::new(ModelKind::EtBert, 2);
        let cfg = tiny_cfg();
        let frozen = run_cell(&prep, &enc, SplitPolicy::PerPacket, true, &cfg);
        let unfrozen = run_cell(&prep, &enc, SplitPolicy::PerPacket, false, &cfg);
        assert!(
            unfrozen.accuracy > frozen.accuracy,
            "unfrozen {:.3} !> frozen {:.3}",
            unfrozen.accuracy,
            frozen.accuracy
        );
    }

    #[test]
    fn flow_id_ablation_changes_data() {
        let prep = PreparedTask::build(Task::UstcBinary, 7, 0.1);
        let split = per_flow_split(&prep.data, 0.875, 1000, 1);
        let owned = ablated_data(&prep, &split, FlowIdAblation::TrainAndTest, 1).unwrap();
        // some TCP record must differ from the original
        let mut changed = false;
        for (a, b) in prep.data.records.iter().zip(&owned.records) {
            if a.frame != b.frame {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn cell_config_round_trips_json() {
        let cfg = CellConfig { max_train: 1234, ..Default::default() };
        let j = serde_json::to_string(&cfg).unwrap();
        let back: CellConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back.max_train, 1234);
        assert_eq!(back.flow_id_ablation, FlowIdAblation::None);
    }

    #[test]
    fn purity_embeddings_shape() {
        let prep = PreparedTask::build(Task::UstcBinary, 8, 0.1);
        let enc = EncoderModel::new(ModelKind::EtBert, 3);
        let (emb, labels) = embeddings_for_purity(&prep, &enc, 50, 9);
        assert_eq!(emb.len(), labels.len());
        assert!(!emb.is_empty());
        assert_eq!(emb[0].len(), enc.dim());
    }
}
