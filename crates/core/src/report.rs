//! Paper-style table rendering and machine-readable result records.

use serde::{Deserialize, Serialize};

/// One experiment-cell record, serialisable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultRecord {
    /// Experiment id, e.g. "table3".
    pub experiment: String,
    /// Task name, e.g. "TLS-120".
    pub task: String,
    /// Model name.
    pub model: String,
    /// Setting, e.g. "per-flow/frozen".
    pub setting: String,
    /// Accuracy in percent.
    pub accuracy: f64,
    /// Macro-F1 in percent.
    pub macro_f1: f64,
    /// Training seconds.
    pub train_secs: f64,
    /// Inference seconds.
    pub infer_secs: f64,
}

/// Serialise records as pretty JSON with a stable, hand-rolled layout
/// (2-space indent, declaration field order, shortest-float formatting)
/// byte-compatible with `serde_json::to_string_pretty`. Rolling it by
/// hand keeps the record/journal/manifest byte contract under the
/// engine's own control — golden snapshots and resume-replay equality
/// must not shift when a JSON dependency changes its formatter.
pub fn records_json_pretty(records: &[ResultRecord]) -> String {
    use crate::engine::journal::{escape_json, format_f64};
    if records.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"experiment\": \"{}\",\n", escape_json(&r.experiment)));
        out.push_str(&format!("    \"task\": \"{}\",\n", escape_json(&r.task)));
        out.push_str(&format!("    \"model\": \"{}\",\n", escape_json(&r.model)));
        out.push_str(&format!("    \"setting\": \"{}\",\n", escape_json(&r.setting)));
        out.push_str(&format!("    \"accuracy\": {},\n", format_f64(r.accuracy)));
        out.push_str(&format!("    \"macro_f1\": {},\n", format_f64(r.macro_f1)));
        out.push_str(&format!("    \"train_secs\": {},\n", format_f64(r.train_secs)));
        out.push_str(&format!("    \"infer_secs\": {}\n", format_f64(r.infer_secs)));
        out.push_str(if i + 1 < records.len() { "  },\n" } else { "  }\n" });
    }
    out.push(']');
    out
}

/// A rendered table: header plus rows of (label, values).
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl TableBuilder {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> TableBuilder {
        TableBuilder {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: &str, values: &[String]) -> &mut Self {
        self.rows.push((label.to_string(), values.to_vec()));
        self
    }

    /// Append a row of percentages formatted to one decimal.
    pub fn row_pct(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let v: Vec<String> = values.iter().map(|x| format!("{:.1}", x * 100.0)).collect();
        self.row(label, &v)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let label_w =
            self.rows.iter().map(|(l, _)| l.len()).chain(std::iter::once(5)).max().unwrap_or(5) + 2;
        let col_w: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(c, h)| {
                self.rows
                    .iter()
                    .filter_map(|(_, vals)| vals.get(c).map(String::len))
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(h.len())
                    + 2
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<label_w$}", "model"));
        for (h, w) in self.columns.iter().zip(&col_w) {
            out.push_str(&format!("{:>w$}", h, w = w));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{:<label_w$}", label));
            for (v, w) in vals.iter().zip(&col_w) {
                out.push_str(&format!("{:>w$}", v, w = w));
            }
            out.push('\n');
        }
        out
    }
}

/// Render a horizontal-bar chart in text (for Figs. 1, 4, 5, 6).
pub fn bar_chart(title: &str, items: &[(String, f64)], max_width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max).max(1e-12);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(4) + 2;
    let mut out = format!("== {title} ==\n");
    for (label, v) in items {
        let w = ((v / max) * max_width as f64).round().max(0.0) as usize;
        out.push_str(&format!("{:<label_w$} {:>8.3} {}\n", label, v, "█".repeat(w)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableBuilder::new("Table X", &["AC", "F1"]);
        t.row_pct("ET-BERT", &[0.847, 0.846]);
        t.row_pct("Pcap-Encoder", &[0.999, 0.999]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("84.7"));
        assert!(s.contains("99.9"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[2].len(), "columns aligned");
    }

    #[test]
    fn bar_chart_scales() {
        let s = bar_chart("speed", &[("RF".into(), 1.0), ("netFound".into(), 4.0)], 8);
        let rf_bars = s.lines().find(|l| l.starts_with("RF")).unwrap().matches('█').count();
        let nf_bars = s.lines().find(|l| l.starts_with("netFound")).unwrap().matches('█').count();
        assert_eq!(nf_bars, 8);
        assert_eq!(rf_bars, 2);
    }

    #[test]
    fn empty_table_and_chart_render_without_panic() {
        let t = TableBuilder::new("empty", &["A"]);
        let s = t.render();
        assert!(s.contains("empty"));
        let c = bar_chart("nothing", &[], 10);
        assert!(c.contains("nothing"));
    }

    #[test]
    fn chart_handles_zero_and_negative_values() {
        let s = bar_chart(
            "mixed",
            &[("zero".into(), 0.0), ("neg".into(), -1.0), ("pos".into(), 2.0)],
            10,
        );
        let pos_bars = s.lines().find(|l| l.starts_with("pos")).unwrap().matches('█').count();
        assert_eq!(pos_bars, 10);
        let zero_bars = s.lines().find(|l| l.starts_with("zero")).unwrap().matches('█').count();
        assert_eq!(zero_bars, 0);
    }

    #[test]
    fn record_round_trips_json() {
        let r = ResultRecord {
            experiment: "table3".into(),
            task: "TLS-120".into(),
            model: "YaTC".into(),
            setting: "per-flow/frozen".into(),
            accuracy: 15.5,
            macro_f1: 9.6,
            train_secs: 1.0,
            infer_secs: 0.2,
        };
        let j = serde_json::to_string(&r).unwrap();
        let back: ResultRecord = serde_json::from_str(&j).unwrap();
        assert_eq!(back.model, "YaTC");
        assert_eq!(back.macro_f1, 9.6);
    }
}
