//! # debunk-core
//!
//! Benchmark orchestration for the paper's evaluation protocol (§4–§6):
//! dataset preparation, the frozen/unfrozen training protocol on packet-
//! and flow-level tasks, metrics (accuracy + macro-F1), wall-clock
//! timing capture, and paper-style result tables.
//!
//! ```no_run
//! use debunk_core::experiment::{run_cell, CellConfig, SplitPolicy};
//! use debunk_core::pipeline::PreparedTask;
//! use dataset::Task;
//! use encoders::{EncoderModel, ModelKind};
//!
//! let prep = PreparedTask::build(Task::VpnApp, 1, 1.0);
//! let cfg = CellConfig::default();
//! let encoder = EncoderModel::new(ModelKind::EtBert, 1);
//! let cell = run_cell(&prep, &encoder, SplitPolicy::PerFlow, false, &cfg);
//! println!("F1 = {:.1}", cell.macro_f1 * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
pub mod experiment;
pub mod flow_experiment;
pub mod metrics;
pub mod obs;
pub mod outofcore;
pub mod pipeline;
pub mod report;
pub mod shallow_baselines;
pub mod standardize;

pub use artifact::{Artifact, ArtifactCache, ArtifactStats};
pub use engine::{default_registry, Experiment, Preset, Registry, RunContext, RunOptions};
pub use experiment::{run_cell, CellConfig, CellResult, SplitPolicy};
pub use metrics::{accuracy, confusion_matrix, macro_f1, micro_f1};
pub use obs::{LogFormat, ObsSink};
pub use pipeline::PreparedTask;
