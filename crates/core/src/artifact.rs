//! Content-addressed artifact cache for the data-preparation chain.
//!
//! Every expensive prepare-stage product — the generated/cleaned/parsed
//! dataset, whole-dataset token matrices, shallow feature matrices,
//! split index sets — is keyed by a *content address*: a stable
//! fingerprint of everything that determines its bytes (dataset kind,
//! seed, scale, tokenizer configuration, feature configuration, split
//! policy). Two tiers sit behind one lookup:
//!
//! - an in-memory tier of `Arc`s with *single-flight* builds: concurrent
//!   misses for the same key block on one build instead of duplicating
//!   it (the same `Mutex<HashMap<_, Arc<OnceLock<_>>>>` pattern as
//!   [`crate::engine::checkpoint::EncoderStore`]);
//! - an optional on-disk tier under `--cache-dir` (shared with encoder
//!   checkpoints), serving byte-identical artifacts across processes.
//!
//! Invalidation is *key change, never mutation*: an artifact file is
//! written once under its fingerprint and never rewritten — a different
//! configuration is a different key, so stale data cannot be served.
//! A corrupt, truncated or mismatched file is ignored with a warning and
//! the artifact is rebuilt; a wrong record can never be returned because
//! the envelope carries the full canonical key and a checksum over the
//! payload.

use crate::obs::ObsSink;
use encoders::checkpoint::stable_hash64;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A cacheable prepare-stage product: a stage name plus a byte codec.
/// `from_bytes(to_bytes(x))` must reproduce `x` exactly — loaded
/// artifacts substitute for built ones byte-for-byte downstream.
pub trait Artifact: Send + Sync + Sized + 'static {
    /// Stage name, part of the content address (e.g. `"prepared"`).
    const STAGE: &'static str;
    /// Serialise the payload for the disk tier.
    fn to_bytes(&self) -> Vec<u8>;
    /// Decode a payload; any inconsistency is an error, never a guess.
    fn from_bytes(bytes: &[u8]) -> Result<Self, String>;

    /// Split the payload into row groups for the v2 envelope. The
    /// default is one group holding `to_bytes()`; row-chunked artifacts
    /// override this so the disk tier can be written streamingly and
    /// warm readers can touch only the groups they need.
    fn to_groups(&self) -> Vec<RowGroup> {
        vec![RowGroup { rows: 0, bytes: self.to_bytes() }]
    }

    /// Rebuild from v2 row-group payloads; must invert [`to_groups`]
    /// (`Artifact::to_groups`). The default concatenates the groups and
    /// delegates to `from_bytes`, which inverts the default
    /// `to_groups` exactly.
    fn from_groups(groups: Vec<Vec<u8>>) -> Result<Self, String> {
        let mut buf = Vec::with_capacity(groups.iter().map(Vec::len).sum());
        for g in &groups {
            buf.extend_from_slice(g);
        }
        Self::from_bytes(&buf)
    }
}

/// Default number of logical rows per row group, shared by the grouped
/// artifact codecs and the chunked out-of-core prepare path.
pub const ROW_GROUP_ROWS: usize = 4096;

/// One row group of a v2 envelope: a self-contained byte chunk plus the
/// number of logical rows it encodes (0 when "rows" doesn't apply).
#[derive(Debug, Clone)]
pub struct RowGroup {
    /// Logical rows (records / token rows / feature rows) in the group.
    pub rows: u64,
    /// Self-contained encoded bytes of the group.
    pub bytes: Vec<u8>,
}

/// Counters describing how the cache served requests (mirrored into
/// `run-manifest.json` so warm runs are auditable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactStats {
    /// Requests served from the in-memory `Arc` tier.
    pub mem_hits: usize,
    /// Requests served by decoding an on-disk artifact.
    pub disk_hits: usize,
    /// Requests that ran the builder (cold misses).
    pub builds: usize,
}

/// One memory-tier slot: cloned out of the map lock, initialised (at
/// most once) outside it.
type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// Two-tier content-addressed cache with single-flight builds. The
/// default is a memory-only cache (no `--cache-dir`).
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    slots: Mutex<HashMap<u64, Slot>>,
    mem_hits: AtomicUsize,
    disk_hits: AtomicUsize,
    builds: AtomicUsize,
    /// Event sink for the cache's disk-tier chatter; swapped in by the
    /// runner when a traced session starts.
    obs: Mutex<Arc<ObsSink>>,
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache::new(None)
    }
}

impl ArtifactCache {
    /// New cache; `dir` enables the on-disk tier.
    pub fn new(dir: Option<PathBuf>) -> ArtifactCache {
        ArtifactCache {
            dir,
            slots: Mutex::new(HashMap::new()),
            mem_hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            builds: AtomicUsize::new(0),
            obs: Mutex::new(crate::obs::global()),
        }
    }

    /// The cache's event sink.
    pub fn obs(&self) -> Arc<ObsSink> {
        self.obs.lock().clone()
    }

    /// Install a session's event sink on this cache.
    pub fn set_obs(&self, sink: Arc<ObsSink>) {
        *self.obs.lock() = sink;
    }

    /// The configured disk-tier directory, if any.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Count a disk-tier hit established outside [`ArtifactCache::lookup`]
    /// — the out-of-core warm path validates an artifact's v2 frame
    /// (header/footer/trailer checksums) without decoding its body into
    /// memory, which is still a disk-tier serve for accounting purposes.
    pub(crate) fn note_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> ArtifactStats {
        ArtifactStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// Get the artifact addressed by `parts` (joined with `A::STAGE`
    /// into the canonical key), building it with `build` at most once
    /// per process. Concurrent callers for the same key block until the
    /// first build finishes; different keys proceed in parallel.
    pub fn get_or_build<A: Artifact>(&self, parts: &[&str], build: impl FnOnce() -> A) -> Arc<A> {
        let key = canonical_key(A::STAGE, parts);
        let fingerprint = stable_hash64(&[&key]);
        let slot = self.slots.lock().entry(fingerprint).or_default().clone();
        let mut invoked = false;
        let any = slot
            .get_or_init(|| {
                invoked = true;
                Arc::new(self.load_or_build(&key, fingerprint, build)) as Arc<dyn Any + Send + Sync>
            })
            .clone();
        if !invoked {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
        }
        // The fingerprint covers the canonical key, which starts with the
        // stage, and each stage has exactly one payload type — so a
        // downcast failure is only reachable through a 64-bit collision
        // between different keys.
        any.downcast::<A>().expect("artifact stage/type mismatch")
    }

    /// Look up the artifact addressed by `parts` without building —
    /// memory tier first, then disk (a disk hit is promoted into the
    /// memory tier). Used by stages whose build path cannot be a plain
    /// closure (cell execution owns journaling and retries).
    pub fn lookup<A: Artifact>(&self, parts: &[&str]) -> Option<Arc<A>> {
        let key = canonical_key(A::STAGE, parts);
        let fingerprint = stable_hash64(&[&key]);
        let slot = self.slots.lock().entry(fingerprint).or_default().clone();
        if let Some(any) = slot.get() {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(any.clone().downcast::<A>().expect("artifact stage/type mismatch"));
        }
        let dir = self.dir.as_ref()?;
        let path = dir.join(file_name(A::STAGE, fingerprint));
        if !path.exists() {
            return None;
        }
        match std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| decode_envelope::<A>(&bytes, &key))
        {
            Ok(value) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let any =
                    slot.get_or_init(|| Arc::new(value) as Arc<dyn Any + Send + Sync>).clone();
                Some(any.downcast::<A>().expect("artifact stage/type mismatch"))
            }
            Err(e) => {
                self.obs().warn(
                    "artifact",
                    &format!("  [artifact] ignoring {}: {e}", path.display()),
                    &[("path", path.display().to_string().into())],
                );
                None
            }
        }
    }

    /// Insert a freshly built artifact under `parts`, populating both
    /// tiers. Counts as a build. Returns the cached `Arc` (an earlier
    /// racing insert wins, preserving single-flight sharing).
    pub fn store<A: Artifact>(&self, parts: &[&str], value: A) -> Arc<A> {
        let key = canonical_key(A::STAGE, parts);
        let fingerprint = stable_hash64(&[&key]);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let slot = self.slots.lock().entry(fingerprint).or_default().clone();
        let any = slot.get_or_init(|| Arc::new(value) as Arc<dyn Any + Send + Sync>).clone();
        let arc = any.downcast::<A>().expect("artifact stage/type mismatch");
        self.save_to_disk(&key, fingerprint, arc.as_ref());
        arc
    }

    fn save_to_disk<A: Artifact>(&self, key: &str, fingerprint: u64, value: &A) {
        let Some(dir) = &self.dir else { return };
        let path = dir.join(file_name(A::STAGE, fingerprint));
        // Temp sibling + rename, like checkpoints and the manifest: a
        // crash mid-save never leaves a torn file at the final path, and
        // the loader would reject one anyway (checksum). The PID in the
        // temp name keeps concurrent processes (which write identical
        // bytes) from racing on one temp file.
        let tmp = path.with_extension(format!("bin.{}.tmp", std::process::id()));
        let saved = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&tmp, encode_envelope(value, key)))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match saved {
            Ok(()) => self.obs().debug(
                "artifact",
                &format!("  [artifact] saved {}", path.display()),
                &[("path", path.display().to_string().into())],
            ),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                self.obs().warn(
                    "artifact",
                    &format!("  [artifact] could not save {}: {e}", path.display()),
                    &[("path", path.display().to_string().into())],
                );
            }
        }
    }

    fn load_or_build<A: Artifact>(
        &self,
        key: &str,
        fingerprint: u64,
        build: impl FnOnce() -> A,
    ) -> A {
        let Some(dir) = self.dir.clone() else {
            self.builds.fetch_add(1, Ordering::Relaxed);
            return build();
        };
        let path = dir.join(file_name(A::STAGE, fingerprint));
        // Cross-process single-flight: the in-memory tier already
        // guarantees one build per process; the `.lock` sibling extends
        // that across processes sharing one --cache-dir. Exactly one
        // process acquires the lock and builds; everyone else waits for
        // the tmp+rename publication and serves it as a disk hit. A lock
        // whose holder died (SIGKILL mid-build) is stolen, so a crashed
        // builder never wedges its siblings.
        let mut waited = Duration::ZERO;
        let mut warned_corrupt = false;
        loop {
            match read_from_disk::<A>(&path, key) {
                Some(Ok(value)) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.obs().debug(
                        "artifact",
                        &format!("  [artifact] loaded {}", path.display()),
                        &[("path", path.display().to_string().into())],
                    );
                    return value;
                }
                Some(Err(e)) if !warned_corrupt => {
                    warned_corrupt = true;
                    self.obs().warn(
                        "artifact",
                        &format!("  [artifact] ignoring {}: {e}", path.display()),
                        &[("path", path.display().to_string().into())],
                    );
                }
                Some(Err(_)) | None => {}
            }
            if let Some(_guard) = PathLock::try_acquire(&path) {
                // Re-probe under the lock: the previous holder may have
                // published between our probe and the acquisition. A
                // corrupt file falls through to the rebuild (the rename
                // below replaces it) — refuse-or-rebuild, cross-process.
                if let Some(Ok(value)) = read_from_disk::<A>(&path, key) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return value;
                }
                self.builds.fetch_add(1, Ordering::Relaxed);
                let value = build();
                self.save_to_disk(key, fingerprint, &value);
                return value;
            }
            // Lock held elsewhere: steal it if the holder is dead,
            // otherwise wait for its publication.
            if !PathLock::steal_if_stale(&path) {
                std::thread::sleep(LOCK_POLL);
                waited += LOCK_POLL;
                if waited.as_millis() % 5000 < LOCK_POLL.as_millis() {
                    self.obs().info(
                        "artifact",
                        &format!(
                            "  [artifact] waiting {:.0?} for a sibling process to build {}",
                            waited,
                            path.display()
                        ),
                        &[("path", path.display().to_string().into())],
                    );
                }
            }
        }
    }
}

/// One disk probe: `None` when the file is absent, `Some(Err)` when it
/// exists but fails to read or decode (corrupt / torn / mis-keyed).
fn read_from_disk<A: Artifact>(path: &Path, key: &str) -> Option<Result<A, String>> {
    if !path.exists() {
        return None;
    }
    Some(
        std::fs::read(path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| decode_envelope::<A>(&bytes, key)),
    )
}

// ---------------------------------------------------------------------
// Cross-process build locks
// ---------------------------------------------------------------------

/// How often waiters re-probe a held lock / unpublished artifact.
const LOCK_POLL: Duration = Duration::from_millis(10);

/// Cross-process single-flight lock for one on-disk file: a sibling
/// `<file>.lock` created with `O_EXCL` (`create_new`) holding the
/// owner's PID. Released by `Drop` — including on panic unwind — so only
/// a killed process leaves a lock behind, and that lock is detectably
/// stale because its PID no longer exists.
pub(crate) struct PathLock {
    path: PathBuf,
}

impl PathLock {
    /// The lock path guarding `target` (`<target>.lock`).
    pub(crate) fn lock_path(target: &Path) -> PathBuf {
        let mut name = target.file_name().unwrap_or_default().to_os_string();
        name.push(".lock");
        target.with_file_name(name)
    }

    /// Try to take the lock guarding `target`; `None` means some other
    /// process (or another cache instance in this one) holds it.
    pub(crate) fn try_acquire(target: &Path) -> Option<PathLock> {
        let path = PathLock::lock_path(target);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                use std::io::Write as _;
                // Losing the PID write only costs stale-detection
                // precision (the age backstop still applies), never
                // correctness — the O_EXCL create is the lock.
                let _ = write!(f, "{}", std::process::id());
                let _ = f.flush();
                Some(PathLock { path })
            }
            Err(_) => None,
        }
    }

    /// Remove the lock guarding `target` if its holder crashed (recorded
    /// PID no longer alive, or PID unreadable and the file abandoned).
    /// Returns whether a stale lock was actually removed. Concurrent
    /// stealers race through a rename — exactly one wins; losers simply
    /// retry their wait loop.
    pub(crate) fn steal_if_stale(target: &Path) -> bool {
        let path = PathLock::lock_path(target);
        if !lock_is_stale(&path) {
            return false;
        }
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".stale.{}", std::process::id()));
        let grave = path.with_file_name(name);
        if std::fs::rename(&path, &grave).is_ok() {
            std::fs::remove_file(&grave).ok();
            true
        } else {
            false
        }
    }
}

impl Drop for PathLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

fn lock_is_stale(lock: &Path) -> bool {
    match std::fs::read_to_string(lock) {
        Ok(content) => match content.trim().parse::<u32>() {
            Ok(pid) => {
                if Path::new("/proc/self").exists() {
                    !Path::new(&format!("/proc/{pid}")).exists()
                } else {
                    // No procfs: fall back to an age backstop generous
                    // enough for any real build.
                    older_than(lock, Duration::from_secs(600))
                }
            }
            // PID not written yet (holder between create and write) or
            // damaged: stale only once clearly abandoned.
            Err(_) => older_than(lock, Duration::from_secs(10)),
        },
        // Already gone — nothing to steal.
        Err(_) => false,
    }
}

fn older_than(path: &Path, age: Duration) -> bool {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .map(|elapsed| elapsed > age)
        .unwrap_or(false)
}

/// Canonical key string: the stage plus every fingerprint part,
/// `|`-joined with escaping-free parts (callers pass hex/enum tags).
fn canonical_key(stage: &str, parts: &[&str]) -> String {
    let mut key = String::from(stage);
    for p in parts {
        key.push('|');
        key.push_str(p);
    }
    key
}

fn file_name(stage: &str, fingerprint: u64) -> String {
    format!("art-{stage}-{fingerprint:016x}.bin")
}

/// The canonical key string for an artifact addressed by `parts` —
/// what the envelope stores and [`RowGroupFile::open`] verifies.
/// Exposed for out-of-core readers that open artifact files directly.
pub fn artifact_key<A: Artifact>(parts: &[&str]) -> String {
    canonical_key(A::STAGE, parts)
}

const MAGIC: &[u8; 4] = b"DBAF";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
/// Fixed trailer size of a v2 envelope (see the byte diagram below).
const TRAILER_LEN: usize = 48;

// ---------------------------------------------------------------------
// DBAF envelopes
// ---------------------------------------------------------------------
//
// v1 (legacy, still decoded — all integers little-endian):
//
//   "DBAF" | u32 version=1 | u32 key_len | key | u64 payload_len
//   | payload | u64 fnv64(everything before this field)
//
// v2 (written by this version — row-group layout, DESIGN.md §6e):
//
//   header  := "DBAF" | u32 version=2 | u32 key_len | key
//   body    := group[0] | group[1] | ... | group[n-1]      (contiguous)
//   footer  := u32 n_groups
//            | n × { u64 offset | u64 len | u64 rows | u64 fnv64(group) }
//            | u64 total_rows
//   trailer := u64 header_len | u64 footer_off | u64 footer_len
//            | u64 fnv64(header) | u64 fnv64(footer)
//            | u64 fnv64(previous 40 trailer bytes)            (48 bytes)
//
// The fixed-size trailer at the end of the file lets a reader locate
// and verify the header and footer with three bounded reads, then fetch
// (and checksum) only the row groups it needs — the warm "mmap" path
// ([`RowGroupFile`]) never touches the rest of the body. Validation is
// strict: offsets must tile the body exactly (first group at
// `header_len`, each group ending where the next begins, the last at
// `footer_off`) and per-group rows must sum to `total_rows`, so
// truncated, bit-flipped, duplicated or reordered groups are refused —
// never mis-decoded.

/// Byte-offset directory entry for one row group of a v2 envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMeta {
    /// Absolute byte offset of the group in the file.
    pub offset: u64,
    /// Encoded byte length of the group.
    pub len: u64,
    /// Logical rows in the group.
    pub rows: u64,
    /// FNV-64 of the group bytes.
    pub fnv: u64,
}

fn header_bytes(key: &str) -> Vec<u8> {
    let mut h = Vec::with_capacity(12 + key.len());
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&VERSION_V2.to_le_bytes());
    h.extend_from_slice(&(key.len() as u32).to_le_bytes());
    h.extend_from_slice(key.as_bytes());
    h
}

fn footer_bytes(groups: &[GroupMeta], total_rows: u64) -> Vec<u8> {
    let mut f = Vec::with_capacity(4 + groups.len() * 32 + 8);
    f.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    for g in groups {
        f.extend_from_slice(&g.offset.to_le_bytes());
        f.extend_from_slice(&g.len.to_le_bytes());
        f.extend_from_slice(&g.rows.to_le_bytes());
        f.extend_from_slice(&g.fnv.to_le_bytes());
    }
    f.extend_from_slice(&total_rows.to_le_bytes());
    f
}

fn trailer_bytes(
    header_len: u64,
    footer_off: u64,
    footer_len: u64,
    header: &[u8],
    footer: &[u8],
) -> [u8; TRAILER_LEN] {
    let mut t = [0u8; TRAILER_LEN];
    t[0..8].copy_from_slice(&header_len.to_le_bytes());
    t[8..16].copy_from_slice(&footer_off.to_le_bytes());
    t[16..24].copy_from_slice(&footer_len.to_le_bytes());
    t[24..32].copy_from_slice(&fnv64(header).to_le_bytes());
    t[32..40].copy_from_slice(&fnv64(footer).to_le_bytes());
    let check = fnv64(&t[..40]);
    t[40..48].copy_from_slice(&check.to_le_bytes());
    t
}

/// Encode `groups` into a v2 envelope under `key`.
fn encode_groups(groups: &[RowGroup], key: &str) -> Vec<u8> {
    let header = header_bytes(key);
    let body_len: usize = groups.iter().map(|g| g.bytes.len()).sum();
    let mut out = Vec::with_capacity(header.len() + body_len + groups.len() * 32 + 64);
    out.extend_from_slice(&header);
    let mut metas = Vec::with_capacity(groups.len());
    let mut total_rows = 0u64;
    for g in groups {
        metas.push(GroupMeta {
            offset: out.len() as u64,
            len: g.bytes.len() as u64,
            rows: g.rows,
            fnv: fnv64(&g.bytes),
        });
        total_rows += g.rows;
        out.extend_from_slice(&g.bytes);
    }
    let footer_off = out.len() as u64;
    let footer = footer_bytes(&metas, total_rows);
    out.extend_from_slice(&footer);
    let trailer =
        trailer_bytes(header.len() as u64, footer_off, footer.len() as u64, &header, &footer);
    out.extend_from_slice(&trailer);
    out
}

fn encode_envelope<A: Artifact>(value: &A, key: &str) -> Vec<u8> {
    encode_groups(&value.to_groups(), key)
}

/// Validated frame of a v2 envelope: where every row group lives.
struct FrameV2 {
    groups: Vec<GroupMeta>,
}

/// Verify a v2 header slice (magic, version, key) — `header` must be
/// exactly the slice the trailer's `header_len` delimits.
fn check_header(header: &[u8], key: &str) -> Result<(), String> {
    let mut r = Reader { bytes: header, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = r.u32()?;
    if version != VERSION_V2 {
        return Err(format!("header version {version} inside a v2 frame"));
    }
    let key_len = r.u32()? as usize;
    let stored_key = r.take(key_len)?;
    if stored_key != key.as_bytes() {
        return Err(format!(
            "key mismatch: file is '{}', wanted '{key}'",
            String::from_utf8_lossy(stored_key)
        ));
    }
    if r.pos != header.len() {
        return Err("trailing bytes after header key".to_string());
    }
    Ok(())
}

/// Verify and parse a v2 footer slice against the frame geometry.
fn check_footer(footer: &[u8], header_len: u64, footer_off: u64) -> Result<Vec<GroupMeta>, String> {
    let mut r = Reader { bytes: footer, pos: 0 };
    let n_groups = r.u32()? as usize;
    if footer.len() != 4 + n_groups * 32 + 8 {
        return Err(format!("footer length {} does not fit {n_groups} groups", footer.len()));
    }
    let mut groups = Vec::with_capacity(n_groups);
    let mut expect = header_len;
    let mut sum_rows = 0u64;
    for i in 0..n_groups {
        let g = GroupMeta { offset: r.u64()?, len: r.u64()?, rows: r.u64()?, fnv: r.u64()? };
        // Groups must tile the body contiguously and in order — this is
        // what refuses duplicated, reordered or overlapping groups.
        if g.offset != expect {
            return Err(format!("group {i} at offset {} (expected {expect})", g.offset));
        }
        expect =
            g.offset.checked_add(g.len).ok_or_else(|| format!("group {i} length overflows"))?;
        sum_rows =
            sum_rows.checked_add(g.rows).ok_or_else(|| format!("group {i} row count overflows"))?;
        groups.push(g);
    }
    if expect != footer_off {
        return Err(format!("body ends at {expect}, footer starts at {footer_off}"));
    }
    let total_rows = r.u64()?;
    if sum_rows != total_rows {
        return Err(format!("group rows sum to {sum_rows}, footer claims {total_rows}"));
    }
    Ok(groups)
}

/// Parse + fully validate the frame of an in-memory v2 envelope.
fn parse_v2_frame(bytes: &[u8], key: &str) -> Result<FrameV2, String> {
    if bytes.len() < TRAILER_LEN {
        return Err("truncated: shorter than the v2 trailer".to_string());
    }
    let trailer: &[u8; TRAILER_LEN] =
        bytes[bytes.len() - TRAILER_LEN..].try_into().expect("48-byte tail");
    let (header_len, footer_off, footer_len, header_fnv, footer_fnv) = parse_trailer(trailer)?;
    let file_len = bytes.len() as u64;
    if footer_off.checked_add(footer_len).and_then(|e| e.checked_add(TRAILER_LEN as u64))
        != Some(file_len)
    {
        return Err("trailer geometry does not match file length".to_string());
    }
    if header_len > footer_off {
        return Err("header overlaps footer".to_string());
    }
    let header = &bytes[..header_len as usize];
    if fnv64(header) != header_fnv {
        return Err("header checksum mismatch".to_string());
    }
    check_header(header, key)?;
    let footer = &bytes[footer_off as usize..(footer_off + footer_len) as usize];
    if fnv64(footer) != footer_fnv {
        return Err("footer checksum mismatch".to_string());
    }
    let groups = check_footer(footer, header_len, footer_off)?;
    Ok(FrameV2 { groups })
}

/// Verify the self-checksummed trailer and return
/// `(header_len, footer_off, footer_len, header_fnv, footer_fnv)`.
fn parse_trailer(t: &[u8; TRAILER_LEN]) -> Result<(u64, u64, u64, u64, u64), String> {
    let stored = u64::from_le_bytes(t[40..48].try_into().expect("8 bytes"));
    if fnv64(&t[..40]) != stored {
        return Err("trailer checksum mismatch".to_string());
    }
    Ok((
        u64::from_le_bytes(t[0..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(t[8..16].try_into().expect("8 bytes")),
        u64::from_le_bytes(t[16..24].try_into().expect("8 bytes")),
        u64::from_le_bytes(t[24..32].try_into().expect("8 bytes")),
        u64::from_le_bytes(t[32..40].try_into().expect("8 bytes")),
    ))
}

fn decode_envelope_v2<A: Artifact>(bytes: &[u8], key: &str) -> Result<A, String> {
    let frame = parse_v2_frame(bytes, key)?;
    let mut groups = Vec::with_capacity(frame.groups.len());
    for (i, g) in frame.groups.iter().enumerate() {
        let s = &bytes[g.offset as usize..(g.offset + g.len) as usize];
        if fnv64(s) != g.fnv {
            return Err(format!("row group {i} checksum mismatch"));
        }
        groups.push(s.to_vec());
    }
    A::from_groups(groups)
}

/// Decode either envelope version; `key` must match exactly.
fn decode_envelope<A: Artifact>(bytes: &[u8], key: &str) -> Result<A, String> {
    if bytes.len() < 8 {
        return Err("truncated: shorter than the version field".to_string());
    }
    if &bytes[0..4] != MAGIC {
        return Err("bad magic".to_string());
    }
    match u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) {
        VERSION_V1 => decode_envelope_v1(bytes, key),
        VERSION_V2 => decode_envelope_v2(bytes, key),
        v => Err(format!("unsupported version {v}")),
    }
}

/// Decode the legacy v1 envelope (whole-file checksum, single payload).
/// Still supported so caches written before the v2 row-group layout
/// stay warm — the chosen compatibility policy, tested in
/// `tests/artifact_rowgroup.rs`.
fn decode_envelope_v1<A: Artifact>(bytes: &[u8], key: &str) -> Result<A, String> {
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv64(body) != stored {
        return Err("checksum mismatch".to_string());
    }
    let mut r = Reader { bytes: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = r.u32()?;
    if version != VERSION_V1 {
        return Err(format!("unsupported version {version}"));
    }
    let key_len = r.u32()? as usize;
    let stored_key = r.take(key_len)?;
    if stored_key != key.as_bytes() {
        return Err(format!(
            "key mismatch: file is '{}', wanted '{key}'",
            String::from_utf8_lossy(stored_key)
        ));
    }
    let payload_len = r.u64()? as usize;
    let payload = r.take(payload_len)?;
    if r.pos != body.len() {
        return Err("trailing bytes after payload".to_string());
    }
    A::from_bytes(payload)
}

/// Lazy reader over an on-disk v2 artifact: opens with three bounded
/// reads (trailer, header, footer — the file's "map"), then fetches and
/// checksums row groups individually on demand. This is the warm-path
/// working-set mechanism: a reader that needs only some groups never
/// touches the others' bytes (the positioned-read equivalent of an
/// `mmap` + page-fault walk, without unsafe code).
pub struct RowGroupFile {
    file: std::fs::File,
    path: PathBuf,
    groups: Vec<GroupMeta>,
    total_rows: u64,
}

impl RowGroupFile {
    /// Open `path` and validate its frame against `key`. Header, footer
    /// and trailer are fully verified here; group bodies are verified
    /// lazily by [`RowGroupFile::read_group`].
    pub fn open(path: &std::path::Path, key: &str) -> Result<RowGroupFile, String> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::File::open(path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let io = |e: std::io::Error| format!("cannot read {}: {e}", path.display());
        let file_len = file.metadata().map_err(io)?.len();
        if file_len < TRAILER_LEN as u64 {
            return Err("truncated: shorter than the v2 trailer".to_string());
        }
        let mut trailer = [0u8; TRAILER_LEN];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64))).map_err(io)?;
        file.read_exact(&mut trailer).map_err(io)?;
        let (header_len, footer_off, footer_len, header_fnv, footer_fnv) = parse_trailer(&trailer)?;
        if footer_off.checked_add(footer_len).and_then(|e| e.checked_add(TRAILER_LEN as u64))
            != Some(file_len)
        {
            return Err("trailer geometry does not match file length".to_string());
        }
        if header_len > footer_off {
            return Err("header overlaps footer".to_string());
        }
        if header_len > (1 << 20) || footer_len > (1 << 30) {
            return Err("implausible header/footer length".to_string());
        }
        let mut header = vec![0u8; header_len as usize];
        file.seek(SeekFrom::Start(0)).map_err(io)?;
        file.read_exact(&mut header).map_err(io)?;
        if fnv64(&header) != header_fnv {
            return Err("header checksum mismatch".to_string());
        }
        check_header(&header, key)?;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_off)).map_err(io)?;
        file.read_exact(&mut footer).map_err(io)?;
        if fnv64(&footer) != footer_fnv {
            return Err("footer checksum mismatch".to_string());
        }
        let groups = check_footer(&footer, header_len, footer_off)?;
        let total_rows = groups.iter().map(|g| g.rows).sum();
        Ok(RowGroupFile { file, path: path.to_path_buf(), groups, total_rows })
    }

    /// Number of row groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Directory entry of group `i`.
    pub fn group_meta(&self, i: usize) -> GroupMeta {
        self.groups[i]
    }

    /// Sum of logical rows across all groups.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Read and checksum-verify group `i` — the only call that touches
    /// body bytes.
    pub fn read_group(&mut self, i: usize) -> Result<Vec<u8>, String> {
        use std::io::{Read, Seek, SeekFrom};
        let g = self.groups[i];
        let io = |e: std::io::Error| format!("cannot read {}: {e}", self.path.display());
        let mut bytes = vec![0u8; g.len as usize];
        self.file.seek(SeekFrom::Start(g.offset)).map_err(io)?;
        self.file.read_exact(&mut bytes).map_err(io)?;
        if fnv64(&bytes) != g.fnv {
            return Err(format!("row group {i} checksum mismatch"));
        }
        Ok(bytes)
    }

    /// Read every group and rebuild the artifact (a fully verified
    /// decode through the lazy path).
    pub fn decode<A: Artifact>(&mut self) -> Result<A, String> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for i in 0..self.groups.len() {
            groups.push(self.read_group(i)?);
        }
        A::from_groups(groups)
    }
}

/// Streaming v2 writer: groups are appended one at a time (bounded
/// memory — the whole artifact never exists in RAM), then `finish`
/// seals footer + trailer and renames the temp sibling into place.
/// Obtained from [`ArtifactCache::group_writer`].
pub struct ArtifactGroupWriter<'a> {
    cache: &'a ArtifactCache,
    file: std::io::BufWriter<std::fs::File>,
    tmp: PathBuf,
    path: PathBuf,
    pos: u64,
    header: Vec<u8>,
    metas: Vec<GroupMeta>,
    total_rows: u64,
}

impl<'a> ArtifactGroupWriter<'a> {
    /// Append one row group.
    pub fn push_group(&mut self, rows: u64, bytes: &[u8]) -> Result<(), String> {
        use std::io::Write;
        self.metas.push(GroupMeta {
            offset: self.pos,
            len: bytes.len() as u64,
            rows,
            fnv: fnv64(bytes),
        });
        self.total_rows += rows;
        self.file
            .write_all(bytes)
            .map_err(|e| format!("cannot write {}: {e}", self.tmp.display()))?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Seal the envelope (footer + trailer), fsync-free rename into the
    /// final path, and count the build. The artifact becomes visible to
    /// `lookup`/`load_or_build` atomically — a crash mid-stream leaves
    /// only a `.tmp` sibling the loader never reads.
    pub fn finish(mut self) -> Result<PathBuf, String> {
        use std::io::Write;
        let footer_off = self.pos;
        let footer = footer_bytes(&self.metas, self.total_rows);
        let trailer = trailer_bytes(
            self.header.len() as u64,
            footer_off,
            footer.len() as u64,
            &self.header,
            &footer,
        );
        let sealed = self
            .file
            .write_all(&footer)
            .and_then(|()| self.file.write_all(&trailer))
            .and_then(|()| self.file.flush());
        if let Err(e) = sealed {
            std::fs::remove_file(&self.tmp).ok();
            return Err(format!("cannot seal {}: {e}", self.tmp.display()));
        }
        drop(self.file);
        if let Err(e) = std::fs::rename(&self.tmp, &self.path) {
            std::fs::remove_file(&self.tmp).ok();
            return Err(format!("cannot rename {}: {e}", self.path.display()));
        }
        self.cache.builds.fetch_add(1, Ordering::Relaxed);
        self.cache.obs().debug(
            "artifact",
            &format!("  [artifact] streamed {}", self.path.display()),
            &[("path", self.path.display().to_string().into())],
        );
        Ok(self.path)
    }
}

impl ArtifactCache {
    /// The on-disk path the artifact addressed by `parts` would live
    /// at, if a disk tier is configured (the file may not exist yet).
    pub fn artifact_path<A: Artifact>(&self, parts: &[&str]) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let key = canonical_key(A::STAGE, parts);
        Some(dir.join(file_name(A::STAGE, stable_hash64(&[&key]))))
    }

    /// Begin streaming the v2 artifact addressed by `parts` into the
    /// disk tier, group by group. Errors when the cache has no disk
    /// tier — streaming writes exist precisely to avoid materialising
    /// the artifact in memory, so there is nothing useful to do without
    /// a disk.
    pub fn group_writer<A: Artifact>(
        &self,
        parts: &[&str],
    ) -> Result<ArtifactGroupWriter<'_>, String> {
        use std::io::Write;
        let dir = self.dir.as_ref().ok_or("group_writer needs a disk tier (--cache-dir)")?;
        let key = canonical_key(A::STAGE, parts);
        let path = dir.join(file_name(A::STAGE, stable_hash64(&[&key])));
        let tmp = path.with_extension("bin.tmp");
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        let mut file = std::io::BufWriter::with_capacity(1 << 16, file);
        let header = header_bytes(&key);
        file.write_all(&header).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        let pos = header.len() as u64;
        Ok(ArtifactGroupWriter {
            cache: self,
            file,
            tmp,
            path,
            pos,
            header,
            metas: Vec::new(),
            total_rows: 0,
        })
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("truncated at offset {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Debug)]
    struct Blob(Vec<u8>);

    impl Artifact for Blob {
        const STAGE: &'static str = "test-blob";
        fn to_bytes(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn from_bytes(bytes: &[u8]) -> Result<Blob, String> {
            Ok(Blob(bytes.to_vec()))
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn memory_tier_is_single_flight_under_concurrency() {
        let cache = ArtifactCache::new(None);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_build::<Blob>(&["k"], || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: every thread reaches the
                        // slot before the first build finishes.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Blob(vec![7])
                    });
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "concurrent misses share one build");
        let stats = cache.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.mem_hits, 7);
    }

    /// Two cache instances over one directory are two processes,
    /// conceptually: no shared memory tier, coordination only through
    /// the `.lock` sibling. A concurrent cold miss must build exactly
    /// once across both.
    #[test]
    fn disk_tier_is_single_flight_across_cache_instances() {
        let dir = temp_dir("debunk-artifact-xproc-flight");
        let a = ArtifactCache::new(Some(dir.clone()));
        let b = ArtifactCache::new(Some(dir.clone()));
        let builds = AtomicUsize::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::SeqCst);
            // Widen the race window so the loser reaches the lock while
            // the winner is still building.
            std::thread::sleep(Duration::from_millis(50));
            Blob(vec![11])
        };
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(a.get_or_build::<Blob>(&["k"], build).0, vec![11]));
            s.spawn(|| assert_eq!(b.get_or_build::<Blob>(&["k"], build).0, vec![11]));
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "one build across both instances");
        assert_eq!(a.stats().builds + b.stats().builds, 1);
        assert_eq!(a.stats().disk_hits + b.stats().disk_hits, 1, "the loser got a disk hit");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".lock") || n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "locks and temp files cleaned up: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A lock left behind by a SIGKILLed builder (its PID no longer
    /// exists) must be stolen, not waited on forever.
    #[test]
    fn stale_build_lock_from_a_dead_pid_is_taken_over() {
        let dir = temp_dir("debunk-artifact-stale-lock");
        std::fs::create_dir_all(&dir).unwrap();
        let key = canonical_key(Blob::STAGE, &["k"]);
        let path = dir.join(file_name(Blob::STAGE, stable_hash64(&[key.as_str()])));
        // u32::MAX is far above any kernel pid_max, so this holder can
        // never be alive.
        std::fs::write(PathLock::lock_path(&path), u32::MAX.to_string()).unwrap();

        let cache = ArtifactCache::new(Some(dir.clone()));
        let value = cache.get_or_build::<Blob>(&["k"], || Blob(vec![3]));
        assert_eq!(value.0, vec![3], "takeover let the build proceed");
        assert_eq!(cache.stats().builds, 1);
        assert!(!PathLock::lock_path(&path).exists(), "stolen lock removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A live holder's lock is NOT stolen: stale detection keys on PID
    /// liveness, and our own PID is alive by definition.
    #[test]
    fn live_lock_is_not_stolen() {
        let dir = temp_dir("debunk-artifact-live-lock");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("art-test-blob-0000000000000000.bin");
        let guard = PathLock::try_acquire(&target).expect("uncontended acquire");
        assert!(PathLock::try_acquire(&target).is_none(), "second acquire blocked");
        assert!(!PathLock::steal_if_stale(&target), "live lock must not be stolen");
        drop(guard);
        assert!(PathLock::try_acquire(&target).is_some(), "released lock reacquirable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_key_shares_one_arc_and_different_keys_differ() {
        let cache = ArtifactCache::new(None);
        let a = cache.get_or_build::<Blob>(&["x", "1"], || Blob(vec![1]));
        let b = cache.get_or_build::<Blob>(&["x", "1"], || Blob(vec![2]));
        assert!(Arc::ptr_eq(&a, &b), "same key, same Arc");
        assert_eq!(b.0, vec![1], "second builder never ran");
        let c = cache.get_or_build::<Blob>(&["x", "2"], || Blob(vec![3]));
        assert_eq!(c.0, vec![3], "different key builds");
    }

    #[test]
    fn disk_tier_round_trips_across_cache_instances() {
        let dir = temp_dir("debunk-artifact-roundtrip");
        let first = ArtifactCache::new(Some(dir.clone()));
        first.get_or_build::<Blob>(&["k"], || Blob(vec![1, 2, 3]));
        assert_eq!(first.stats().builds, 1);

        let second = ArtifactCache::new(Some(dir.clone()));
        let loaded =
            second.get_or_build::<Blob>(&["k"], || panic!("must load from disk, not rebuild"));
        assert_eq!(loaded.0, vec![1, 2, 3]);
        assert_eq!(second.stats(), ArtifactStats { mem_hits: 0, disk_hits: 1, builds: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_truncated_files_rebuild_with_a_warning_never_wrong_bytes() {
        let dir = temp_dir("debunk-artifact-corrupt");
        ArtifactCache::new(Some(dir.clone())).get_or_build::<Blob>(&["k"], || Blob(vec![9; 64]));
        let path = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let good = std::fs::read(&path).unwrap();

        // Every single-byte corruption and every truncation must be
        // detected and fall back to the builder, not decode wrongly.
        for variant in 0..3 {
            let mut bad = good.clone();
            match variant {
                0 => bad[good.len() / 2] ^= 0xff,  // flip payload byte
                1 => bad.truncate(good.len() / 2), // truncate
                _ => bad.clear(),                  // empty file
            }
            std::fs::write(&path, &bad).unwrap();
            let cache = ArtifactCache::new(Some(dir.clone()));
            let rebuilt = cache.get_or_build::<Blob>(&["k"], || Blob(vec![9; 64]));
            assert_eq!(rebuilt.0, vec![9; 64], "variant {variant} must rebuild");
            assert_eq!(cache.stats().builds, 1, "variant {variant} fell back to the builder");
        }

        // A file stored under a colliding name but a different canonical
        // key is rejected by the key check.
        std::fs::write(&path, &good).unwrap();
        let cache = ArtifactCache::new(Some(dir.clone()));
        cache.get_or_build::<Blob>(&["k"], || panic!("intact file must load"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_store_round_trips_both_tiers() {
        let dir = temp_dir("debunk-artifact-lookup");
        let cache = ArtifactCache::new(Some(dir.clone()));
        assert!(cache.lookup::<Blob>(&["k"]).is_none(), "cold lookup misses");
        let stored = cache.store(&["k"], Blob(vec![4, 2]));
        let mem = cache.lookup::<Blob>(&["k"]).expect("memory tier hit");
        assert!(Arc::ptr_eq(&stored, &mem));
        assert_eq!(cache.stats(), ArtifactStats { mem_hits: 1, disk_hits: 0, builds: 1 });

        let second = ArtifactCache::new(Some(dir.clone()));
        let disk = second.lookup::<Blob>(&["k"]).expect("disk tier hit");
        assert_eq!(disk.0, vec![4, 2]);
        assert_eq!(second.stats(), ArtifactStats { mem_hits: 0, disk_hits: 1, builds: 0 });
        // A promoted disk hit is served from memory afterwards.
        second.lookup::<Blob>(&["k"]).unwrap();
        assert_eq!(second.stats().mem_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_rejects_wrong_key() {
        let blob = Blob(vec![5]);
        let bytes = encode_envelope(&blob, "test-blob|a");
        assert!(decode_envelope::<Blob>(&bytes, "test-blob|b").unwrap_err().contains("key"));
        assert_eq!(decode_envelope::<Blob>(&bytes, "test-blob|a").unwrap().0, vec![5]);
    }

    /// A row-chunked artifact: each chunk is one group, groups carry
    /// their element counts as rows.
    #[derive(Debug, PartialEq)]
    struct Chunks(Vec<Vec<u8>>);

    impl Artifact for Chunks {
        const STAGE: &'static str = "test-chunks";
        fn to_bytes(&self) -> Vec<u8> {
            let mut out = Vec::new();
            for c in &self.0 {
                out.extend_from_slice(&(c.len() as u32).to_le_bytes());
                out.extend_from_slice(c);
            }
            out
        }
        fn from_bytes(_bytes: &[u8]) -> Result<Chunks, String> {
            Err("chunked artifact has no v1 payload".to_string())
        }
        fn to_groups(&self) -> Vec<RowGroup> {
            self.0
                .iter()
                .map(|c| {
                    let mut b = (c.len() as u32).to_le_bytes().to_vec();
                    b.extend_from_slice(c);
                    RowGroup { rows: c.len() as u64, bytes: b }
                })
                .collect()
        }
        fn from_groups(groups: Vec<Vec<u8>>) -> Result<Chunks, String> {
            let mut chunks = Vec::with_capacity(groups.len());
            for g in groups {
                if g.len() < 4 {
                    return Err("group shorter than its length prefix".to_string());
                }
                let n = u32::from_le_bytes(g[0..4].try_into().expect("4 bytes")) as usize;
                if g.len() != 4 + n {
                    return Err("group length prefix mismatch".to_string());
                }
                chunks.push(g[4..].to_vec());
            }
            Ok(Chunks(chunks))
        }
    }

    #[test]
    fn grouped_envelope_round_trips_preserving_group_boundaries() {
        let value = Chunks(vec![vec![1, 2, 3], vec![], vec![9; 100]]);
        let bytes = encode_envelope(&value, "test-chunks|k");
        let back = decode_envelope::<Chunks>(&bytes, "test-chunks|k").unwrap();
        assert_eq!(back, value);
        let frame = parse_v2_frame(&bytes, "test-chunks|k").unwrap();
        assert_eq!(frame.groups.len(), 3);
        assert_eq!(frame.groups.iter().map(|g| g.rows).sum::<u64>(), 103);
    }

    #[test]
    fn stream_writer_is_byte_identical_to_in_memory_encode() {
        let dir = temp_dir("debunk-artifact-stream");
        let cache = ArtifactCache::new(Some(dir.clone()));
        let value = Chunks(vec![vec![5; 10], vec![6; 20], vec![7; 30]]);

        let mut w = cache.group_writer::<Chunks>(&["k"]).unwrap();
        for g in value.to_groups() {
            w.push_group(g.rows, &g.bytes).unwrap();
        }
        let path = w.finish().unwrap();
        assert_eq!(cache.stats().builds, 1, "a sealed stream counts as a build");

        let streamed = std::fs::read(&path).unwrap();
        let key = canonical_key(Chunks::STAGE, &["k"]);
        assert_eq!(streamed, encode_envelope(&value, &key), "one format, two writers");

        // And the cache serves it as a plain disk hit.
        let loaded = cache.lookup::<Chunks>(&["k"]).expect("disk hit");
        assert_eq!(*loaded, value);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn row_group_file_reads_single_groups_lazily() {
        let dir = temp_dir("debunk-artifact-rgf");
        std::fs::create_dir_all(&dir).unwrap();
        let value = Chunks(vec![vec![1; 8], vec![2; 16]]);
        let key = canonical_key(Chunks::STAGE, &["k"]);
        let path = dir.join("grouped.bin");
        std::fs::write(&path, encode_envelope(&value, &key)).unwrap();

        let mut f = RowGroupFile::open(&path, &key).unwrap();
        assert_eq!(f.n_groups(), 2);
        assert_eq!(f.total_rows(), 24);
        assert_eq!(f.read_group(1).unwrap()[4..], [2; 16]);
        assert_eq!(f.decode::<Chunks>().unwrap(), value);
        assert!(RowGroupFile::open(&path, "test-chunks|other").is_err(), "wrong key refused");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_envelopes_stay_readable() {
        // Hand-rolled v1 bytes per the legacy layout — a cache written
        // before the v2 row-group upgrade must keep serving.
        let key = "test-blob|k";
        let payload = vec![3u8, 1, 4, 1, 5];
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&(key.len() as u32).to_le_bytes());
        v1.extend_from_slice(key.as_bytes());
        v1.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v1.extend_from_slice(&payload);
        let checksum = fnv64(&v1);
        v1.extend_from_slice(&checksum.to_le_bytes());

        assert_eq!(decode_envelope::<Blob>(&v1, key).unwrap().0, payload);

        // Planted as a disk artifact, it serves as a hit — and a rewrite
        // through store() upgrades the file to v2.
        let dir = temp_dir("debunk-artifact-v1compat");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(file_name(Blob::STAGE, stable_hash64(&[key])));
        std::fs::write(&path, &v1).unwrap();
        let cache = ArtifactCache::new(Some(dir.clone()));
        let hit = cache.lookup::<Blob>(&["k"]).expect("v1 disk hit");
        assert_eq!(hit.0, payload);
        assert_eq!(cache.stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
