//! Content-addressed artifact cache for the data-preparation chain.
//!
//! Every expensive prepare-stage product — the generated/cleaned/parsed
//! dataset, whole-dataset token matrices, shallow feature matrices,
//! split index sets — is keyed by a *content address*: a stable
//! fingerprint of everything that determines its bytes (dataset kind,
//! seed, scale, tokenizer configuration, feature configuration, split
//! policy). Two tiers sit behind one lookup:
//!
//! - an in-memory tier of `Arc`s with *single-flight* builds: concurrent
//!   misses for the same key block on one build instead of duplicating
//!   it (the same `Mutex<HashMap<_, Arc<OnceLock<_>>>>` pattern as
//!   [`crate::engine::checkpoint::EncoderStore`]);
//! - an optional on-disk tier under `--cache-dir` (shared with encoder
//!   checkpoints), serving byte-identical artifacts across processes.
//!
//! Invalidation is *key change, never mutation*: an artifact file is
//! written once under its fingerprint and never rewritten — a different
//! configuration is a different key, so stale data cannot be served.
//! A corrupt, truncated or mismatched file is ignored with a warning and
//! the artifact is rebuilt; a wrong record can never be returned because
//! the envelope carries the full canonical key and a checksum over the
//! payload.

use crate::obs::ObsSink;
use encoders::checkpoint::stable_hash64;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A cacheable prepare-stage product: a stage name plus a byte codec.
/// `from_bytes(to_bytes(x))` must reproduce `x` exactly — loaded
/// artifacts substitute for built ones byte-for-byte downstream.
pub trait Artifact: Send + Sync + Sized + 'static {
    /// Stage name, part of the content address (e.g. `"prepared"`).
    const STAGE: &'static str;
    /// Serialise the payload for the disk tier.
    fn to_bytes(&self) -> Vec<u8>;
    /// Decode a payload; any inconsistency is an error, never a guess.
    fn from_bytes(bytes: &[u8]) -> Result<Self, String>;
}

/// Counters describing how the cache served requests (mirrored into
/// `run-manifest.json` so warm runs are auditable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactStats {
    /// Requests served from the in-memory `Arc` tier.
    pub mem_hits: usize,
    /// Requests served by decoding an on-disk artifact.
    pub disk_hits: usize,
    /// Requests that ran the builder (cold misses).
    pub builds: usize,
}

/// One memory-tier slot: cloned out of the map lock, initialised (at
/// most once) outside it.
type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// Two-tier content-addressed cache with single-flight builds. The
/// default is a memory-only cache (no `--cache-dir`).
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    slots: Mutex<HashMap<u64, Slot>>,
    mem_hits: AtomicUsize,
    disk_hits: AtomicUsize,
    builds: AtomicUsize,
    /// Event sink for the cache's disk-tier chatter; swapped in by the
    /// runner when a traced session starts.
    obs: Mutex<Arc<ObsSink>>,
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache::new(None)
    }
}

impl ArtifactCache {
    /// New cache; `dir` enables the on-disk tier.
    pub fn new(dir: Option<PathBuf>) -> ArtifactCache {
        ArtifactCache {
            dir,
            slots: Mutex::new(HashMap::new()),
            mem_hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            builds: AtomicUsize::new(0),
            obs: Mutex::new(crate::obs::global()),
        }
    }

    /// The cache's event sink.
    pub fn obs(&self) -> Arc<ObsSink> {
        self.obs.lock().clone()
    }

    /// Install a session's event sink on this cache.
    pub fn set_obs(&self, sink: Arc<ObsSink>) {
        *self.obs.lock() = sink;
    }

    /// The configured disk-tier directory, if any.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> ArtifactStats {
        ArtifactStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// Get the artifact addressed by `parts` (joined with `A::STAGE`
    /// into the canonical key), building it with `build` at most once
    /// per process. Concurrent callers for the same key block until the
    /// first build finishes; different keys proceed in parallel.
    pub fn get_or_build<A: Artifact>(&self, parts: &[&str], build: impl FnOnce() -> A) -> Arc<A> {
        let key = canonical_key(A::STAGE, parts);
        let fingerprint = stable_hash64(&[&key]);
        let slot = self.slots.lock().entry(fingerprint).or_default().clone();
        let mut invoked = false;
        let any = slot
            .get_or_init(|| {
                invoked = true;
                Arc::new(self.load_or_build(&key, fingerprint, build)) as Arc<dyn Any + Send + Sync>
            })
            .clone();
        if !invoked {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
        }
        // The fingerprint covers the canonical key, which starts with the
        // stage, and each stage has exactly one payload type — so a
        // downcast failure is only reachable through a 64-bit collision
        // between different keys.
        any.downcast::<A>().expect("artifact stage/type mismatch")
    }

    /// Look up the artifact addressed by `parts` without building —
    /// memory tier first, then disk (a disk hit is promoted into the
    /// memory tier). Used by stages whose build path cannot be a plain
    /// closure (cell execution owns journaling and retries).
    pub fn lookup<A: Artifact>(&self, parts: &[&str]) -> Option<Arc<A>> {
        let key = canonical_key(A::STAGE, parts);
        let fingerprint = stable_hash64(&[&key]);
        let slot = self.slots.lock().entry(fingerprint).or_default().clone();
        if let Some(any) = slot.get() {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(any.clone().downcast::<A>().expect("artifact stage/type mismatch"));
        }
        let dir = self.dir.as_ref()?;
        let path = dir.join(file_name(A::STAGE, fingerprint));
        if !path.exists() {
            return None;
        }
        match std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| decode_envelope::<A>(&bytes, &key))
        {
            Ok(value) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let any =
                    slot.get_or_init(|| Arc::new(value) as Arc<dyn Any + Send + Sync>).clone();
                Some(any.downcast::<A>().expect("artifact stage/type mismatch"))
            }
            Err(e) => {
                self.obs().warn(
                    "artifact",
                    &format!("  [artifact] ignoring {}: {e}", path.display()),
                    &[("path", path.display().to_string().into())],
                );
                None
            }
        }
    }

    /// Insert a freshly built artifact under `parts`, populating both
    /// tiers. Counts as a build. Returns the cached `Arc` (an earlier
    /// racing insert wins, preserving single-flight sharing).
    pub fn store<A: Artifact>(&self, parts: &[&str], value: A) -> Arc<A> {
        let key = canonical_key(A::STAGE, parts);
        let fingerprint = stable_hash64(&[&key]);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let slot = self.slots.lock().entry(fingerprint).or_default().clone();
        let any = slot.get_or_init(|| Arc::new(value) as Arc<dyn Any + Send + Sync>).clone();
        let arc = any.downcast::<A>().expect("artifact stage/type mismatch");
        self.save_to_disk(&key, fingerprint, arc.as_ref());
        arc
    }

    fn save_to_disk<A: Artifact>(&self, key: &str, fingerprint: u64, value: &A) {
        let Some(dir) = &self.dir else { return };
        let path = dir.join(file_name(A::STAGE, fingerprint));
        // Temp sibling + rename, like checkpoints and the manifest: a
        // crash mid-save never leaves a torn file at the final path, and
        // the loader would reject one anyway (checksum).
        let tmp = path.with_extension("bin.tmp");
        let saved = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&tmp, encode_envelope(value, key)))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match saved {
            Ok(()) => self.obs().debug(
                "artifact",
                &format!("  [artifact] saved {}", path.display()),
                &[("path", path.display().to_string().into())],
            ),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                self.obs().warn(
                    "artifact",
                    &format!("  [artifact] could not save {}: {e}", path.display()),
                    &[("path", path.display().to_string().into())],
                );
            }
        }
    }

    fn load_or_build<A: Artifact>(
        &self,
        key: &str,
        fingerprint: u64,
        build: impl FnOnce() -> A,
    ) -> A {
        if let Some(dir) = &self.dir {
            let path = dir.join(file_name(A::STAGE, fingerprint));
            if path.exists() {
                match std::fs::read(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|bytes| decode_envelope::<A>(&bytes, key))
                {
                    Ok(value) => {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        self.obs().debug(
                            "artifact",
                            &format!("  [artifact] loaded {}", path.display()),
                            &[("path", path.display().to_string().into())],
                        );
                        return value;
                    }
                    Err(e) => self.obs().warn(
                        "artifact",
                        &format!("  [artifact] ignoring {}: {e}", path.display()),
                        &[("path", path.display().to_string().into())],
                    ),
                }
            }
        }
        self.builds.fetch_add(1, Ordering::Relaxed);
        let value = build();
        self.save_to_disk(key, fingerprint, &value);
        value
    }
}

/// Canonical key string: the stage plus every fingerprint part,
/// `|`-joined with escaping-free parts (callers pass hex/enum tags).
fn canonical_key(stage: &str, parts: &[&str]) -> String {
    let mut key = String::from(stage);
    for p in parts {
        key.push('|');
        key.push_str(p);
    }
    key
}

fn file_name(stage: &str, fingerprint: u64) -> String {
    format!("art-{stage}-{fingerprint:016x}.bin")
}

const MAGIC: &[u8; 4] = b"DBAF";
const VERSION: u32 = 1;

/// Envelope layout (all integers little-endian):
/// `DBAF` · version u32 · key (u32 len + bytes) · payload (u64 len +
/// bytes) · FNV-64 checksum of everything before the checksum field.
fn encode_envelope<A: Artifact>(value: &A, key: &str) -> Vec<u8> {
    let payload = value.to_bytes();
    let mut out = Vec::with_capacity(payload.len() + key.len() + 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn decode_envelope<A: Artifact>(bytes: &[u8], key: &str) -> Result<A, String> {
    if bytes.len() < 8 {
        return Err("truncated: shorter than the checksum".to_string());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv64(body) != stored {
        return Err("checksum mismatch".to_string());
    }
    let mut r = Reader { bytes: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let key_len = r.u32()? as usize;
    let stored_key = r.take(key_len)?;
    if stored_key != key.as_bytes() {
        return Err(format!(
            "key mismatch: file is '{}', wanted '{key}'",
            String::from_utf8_lossy(stored_key)
        ));
    }
    let payload_len = r.u64()? as usize;
    let payload = r.take(payload_len)?;
    if r.pos != body.len() {
        return Err("trailing bytes after payload".to_string());
    }
    A::from_bytes(payload)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("truncated at offset {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Debug)]
    struct Blob(Vec<u8>);

    impl Artifact for Blob {
        const STAGE: &'static str = "test-blob";
        fn to_bytes(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn from_bytes(bytes: &[u8]) -> Result<Blob, String> {
            Ok(Blob(bytes.to_vec()))
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn memory_tier_is_single_flight_under_concurrency() {
        let cache = ArtifactCache::new(None);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_build::<Blob>(&["k"], || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: every thread reaches the
                        // slot before the first build finishes.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Blob(vec![7])
                    });
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "concurrent misses share one build");
        let stats = cache.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.mem_hits, 7);
    }

    #[test]
    fn same_key_shares_one_arc_and_different_keys_differ() {
        let cache = ArtifactCache::new(None);
        let a = cache.get_or_build::<Blob>(&["x", "1"], || Blob(vec![1]));
        let b = cache.get_or_build::<Blob>(&["x", "1"], || Blob(vec![2]));
        assert!(Arc::ptr_eq(&a, &b), "same key, same Arc");
        assert_eq!(b.0, vec![1], "second builder never ran");
        let c = cache.get_or_build::<Blob>(&["x", "2"], || Blob(vec![3]));
        assert_eq!(c.0, vec![3], "different key builds");
    }

    #[test]
    fn disk_tier_round_trips_across_cache_instances() {
        let dir = temp_dir("debunk-artifact-roundtrip");
        let first = ArtifactCache::new(Some(dir.clone()));
        first.get_or_build::<Blob>(&["k"], || Blob(vec![1, 2, 3]));
        assert_eq!(first.stats().builds, 1);

        let second = ArtifactCache::new(Some(dir.clone()));
        let loaded =
            second.get_or_build::<Blob>(&["k"], || panic!("must load from disk, not rebuild"));
        assert_eq!(loaded.0, vec![1, 2, 3]);
        assert_eq!(second.stats(), ArtifactStats { mem_hits: 0, disk_hits: 1, builds: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_truncated_files_rebuild_with_a_warning_never_wrong_bytes() {
        let dir = temp_dir("debunk-artifact-corrupt");
        ArtifactCache::new(Some(dir.clone())).get_or_build::<Blob>(&["k"], || Blob(vec![9; 64]));
        let path = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let good = std::fs::read(&path).unwrap();

        // Every single-byte corruption and every truncation must be
        // detected and fall back to the builder, not decode wrongly.
        for variant in 0..3 {
            let mut bad = good.clone();
            match variant {
                0 => bad[good.len() / 2] ^= 0xff,  // flip payload byte
                1 => bad.truncate(good.len() / 2), // truncate
                _ => bad.clear(),                  // empty file
            }
            std::fs::write(&path, &bad).unwrap();
            let cache = ArtifactCache::new(Some(dir.clone()));
            let rebuilt = cache.get_or_build::<Blob>(&["k"], || Blob(vec![9; 64]));
            assert_eq!(rebuilt.0, vec![9; 64], "variant {variant} must rebuild");
            assert_eq!(cache.stats().builds, 1, "variant {variant} fell back to the builder");
        }

        // A file stored under a colliding name but a different canonical
        // key is rejected by the key check.
        std::fs::write(&path, &good).unwrap();
        let cache = ArtifactCache::new(Some(dir.clone()));
        cache.get_or_build::<Blob>(&["k"], || panic!("intact file must load"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_store_round_trips_both_tiers() {
        let dir = temp_dir("debunk-artifact-lookup");
        let cache = ArtifactCache::new(Some(dir.clone()));
        assert!(cache.lookup::<Blob>(&["k"]).is_none(), "cold lookup misses");
        let stored = cache.store(&["k"], Blob(vec![4, 2]));
        let mem = cache.lookup::<Blob>(&["k"]).expect("memory tier hit");
        assert!(Arc::ptr_eq(&stored, &mem));
        assert_eq!(cache.stats(), ArtifactStats { mem_hits: 1, disk_hits: 0, builds: 1 });

        let second = ArtifactCache::new(Some(dir.clone()));
        let disk = second.lookup::<Blob>(&["k"]).expect("disk tier hit");
        assert_eq!(disk.0, vec![4, 2]);
        assert_eq!(second.stats(), ArtifactStats { mem_hits: 0, disk_hits: 1, builds: 0 });
        // A promoted disk hit is served from memory afterwards.
        second.lookup::<Blob>(&["k"]).unwrap();
        assert_eq!(second.stats().mem_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_rejects_wrong_key() {
        let blob = Blob(vec![5]);
        let bytes = encode_envelope(&blob, "test-blob|a");
        assert!(decode_envelope::<Blob>(&bytes, "test-blob|b").unwrap_err().contains("key"));
        assert_eq!(decode_envelope::<Blob>(&bytes, "test-blob|a").unwrap().0, vec![5]);
    }
}
