//! Classification metrics (§4.2 "Performance metrics").

/// Fraction of exact matches.
pub fn accuracy(pred: &[u16], truth: &[u16]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / pred.len() as f64
}

/// Confusion matrix `m[truth][pred]`.
pub fn confusion_matrix(pred: &[u16], truth: &[u16], n_classes: usize) -> Vec<Vec<u32>> {
    let mut m = vec![vec![0u32; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        m[usize::from(t)][usize::from(p)] += 1;
    }
    m
}

fn per_class_prf(m: &[Vec<u32>]) -> Vec<(f64, f64, f64, u32)> {
    let n = m.len();
    (0..n)
        .map(|c| {
            let tp = f64::from(m[c][c]);
            let support: u32 = m[c].iter().sum();
            let fn_: f64 = f64::from(support) - tp;
            let fp: f64 = (0..n).filter(|&r| r != c).map(|r| f64::from(m[r][c])).sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            (precision, recall, f1, support)
        })
        .collect()
}

/// Macro-averaged F1: the unweighted mean of per-class F1 over classes
/// that appear in the ground truth (the paper's preferred metric).
pub fn macro_f1(pred: &[u16], truth: &[u16], n_classes: usize) -> f64 {
    let m = confusion_matrix(pred, truth, n_classes);
    let prf = per_class_prf(&m);
    let present: Vec<&(f64, f64, f64, u32)> = prf.iter().filter(|(_, _, _, s)| *s > 0).collect();
    if present.is_empty() {
        return 0.0;
    }
    present.iter().map(|(_, _, f1, _)| f1).sum::<f64>() / present.len() as f64
}

/// Micro-averaged F1 — equals accuracy for single-label classification;
/// included because the paper calls out its misleading use (§4.2).
pub fn micro_f1(pred: &[u16], truth: &[u16]) -> f64 {
    accuracy(pred, truth)
}

/// Per-class precision/recall/F1 report (sklearn-style), rendered as a
/// text table. `names` may be shorter than `n_classes` (falls back to
/// the class index).
pub fn classification_report(
    pred: &[u16],
    truth: &[u16],
    n_classes: usize,
    names: &[&str],
) -> String {
    let m = confusion_matrix(pred, truth, n_classes);
    let prf = per_class_prf(&m);
    let mut out = format!(
        "{:<20} {:>9} {:>9} {:>9} {:>9}\n",
        "class", "precision", "recall", "f1", "support"
    );
    for (c, (p, r, f1, support)) in prf.iter().enumerate() {
        if *support == 0 {
            continue;
        }
        let name = names.get(c).copied().unwrap_or("");
        let label = if name.is_empty() { format!("{c}") } else { name.to_string() };
        out.push_str(&format!("{:<20} {:>9.3} {:>9.3} {:>9.3} {:>9}\n", label, p, r, f1, support));
    }
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>9.3} {:>9}\n",
        "macro avg",
        "",
        "",
        macro_f1(pred, truth, n_classes),
        truth.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [0u16, 1, 2, 1];
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
        assert_eq!(micro_f1(&y, &y), 1.0);
    }

    #[test]
    fn macro_f1_penalises_minority_failure() {
        // 9 of class 0 right, 1 of class 1 wrong: accuracy 0.9 but
        // macro F1 much lower because class 1 has F1 = 0.
        let truth = [0u16, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = [0u16; 10];
        assert!((accuracy(&pred, &truth) - 0.9).abs() < 1e-9);
        let f1 = macro_f1(&pred, &truth, 2);
        assert!(f1 < 0.5, "macro F1 {f1}");
    }

    #[test]
    fn absent_classes_ignored() {
        // n_classes = 5 but only classes 0/1 appear: macro over present.
        let truth = [0u16, 1, 0, 1];
        let pred = [0u16, 1, 0, 1];
        assert_eq!(macro_f1(&pred, &truth, 5), 1.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        let truth = [0u16, 1, 1];
        let pred = [1u16, 1, 0];
        let m = confusion_matrix(&pred, &truth, 2);
        assert_eq!(m[0][1], 1, "truth 0 predicted 1");
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn known_f1_value() {
        // class 0: tp=1 fp=1 fn=1 -> P=R=0.5 -> F1=0.5
        // class 1: tp=1 fp=1 fn=1 -> F1=0.5 ; macro = 0.5
        let truth = [0u16, 0, 1, 1];
        let pred = [0u16, 1, 1, 0];
        assert!((macro_f1(&pred, &truth, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn report_renders_per_class_rows() {
        let truth = [0u16, 0, 1, 1, 1];
        let pred = [0u16, 1, 1, 1, 0];
        let r = classification_report(&pred, &truth, 3, &["benign", "malware"]);
        assert!(r.contains("benign"));
        assert!(r.contains("malware"));
        assert!(r.contains("macro avg"));
        // class 2 has no support -> no row
        assert!(!r.lines().any(|l| l.trim_start().starts_with("2 ")));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(macro_f1(&[], &[], 3), 0.0);
    }
}
