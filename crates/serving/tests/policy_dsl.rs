//! Property tests for the flow-matching policy DSL: generated rules
//! must round-trip through `Display` → `parse`, matching must honour
//! first-match order, and arbitrary text must never panic the parser.

use net_packet::frame::FlowKey;
use proptest::prelude::*;
use serving::policy::Policy;

const TARGETS: [&str; 5] = ["encoder", "forest", "gbdt", "knn", "drop"];

/// Render one generated rule as DSL text. The tuple mirrors the
/// grammar: address (wildcard or CIDR), optional protocol selector,
/// optional port clause, target index.
#[allow(clippy::type_complexity)]
fn rule_text(
    (addr, prefix, addr_any): &([u8; 4], u8, bool),
    (proto_sel, proto_num): &(u8, u8),
    (port_a, port_b, port_kind): &(u16, u16, u8),
    target_idx: usize,
) -> String {
    let mut pattern = if *addr_any {
        "*".to_string()
    } else if *prefix == 32 {
        format!("{}.{}.{}.{}", addr[0], addr[1], addr[2], addr[3])
    } else {
        format!("{}.{}.{}.{}/{}", addr[0], addr[1], addr[2], addr[3], prefix)
    };
    // proto_sel: 0 = omit (and therefore no ports), 1 = "*", 2 = tcp,
    // 3 = udp, 4 = numeric
    if *proto_sel > 0 {
        pattern.push(':');
        pattern.push_str(&match proto_sel {
            1 => "*".to_string(),
            2 => "tcp".to_string(),
            3 => "udp".to_string(),
            _ => proto_num.to_string(),
        });
        // port_kind: 0 = omit, 1 = "*", 2 = single, 3 = range
        if *port_kind > 0 {
            pattern.push(':');
            pattern.push_str(&match port_kind {
                1 => "*".to_string(),
                2 => port_a.to_string(),
                _ => {
                    let (lo, hi) = (port_a.min(port_b), port_a.max(port_b));
                    format!("{lo}-{hi}")
                }
            });
        }
    }
    format!("{pattern} -> {}", TARGETS[target_idx % TARGETS.len()])
}

type RuleTuple = (([u8; 4], u8, bool), (u8, u8), (u16, u16, u8), usize);

fn policy_text(rules: &[RuleTuple], with_default: bool) -> String {
    let mut text = String::new();
    for (addr, proto, ports, tgt) in rules {
        text.push_str(&rule_text(addr, proto, ports, *tgt));
        text.push('\n');
    }
    if with_default {
        text.push_str("default -> forest\n");
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_policies_round_trip_through_display(
        rules in proptest::collection::vec(
            (
                (any::<[u8; 4]>(), 0u8..=32, any::<bool>()),
                (0u8..=4, any::<u8>()),
                (any::<u16>(), any::<u16>(), 0u8..=3),
            ),
            0..8,
        ),
        tgts in proptest::collection::vec(0usize..TARGETS.len(), 8),
        with_default in any::<bool>(),
    ) {
        let rules: Vec<RuleTuple> = rules
            .into_iter()
            .zip(&tgts)
            .map(|((a, p, q), t)| (a, p, q, *t))
            .collect();
        let text = policy_text(&rules, with_default);
        let p = Policy::parse(&text).expect("generated policy parses");
        prop_assert_eq!(p.rules.len(), rules.len() + usize::from(with_default));
        let q = Policy::parse(&p.to_string()).expect("rendered policy parses");
        // One rule per line in both documents, so line numbers align
        // and full structural equality must hold.
        prop_assert_eq!(&p, &q);
        prop_assert_eq!(p.to_string(), q.to_string());
    }

    #[test]
    fn match_flow_returns_the_first_matching_rule(
        rules in proptest::collection::vec(
            (
                (any::<[u8; 4]>(), 0u8..=32, any::<bool>()),
                (0u8..=4, any::<u8>()),
                (any::<u16>(), any::<u16>(), 0u8..=3),
            ),
            1..8,
        ),
        tgts in proptest::collection::vec(0usize..TARGETS.len(), 8),
        lo_ip in any::<u32>(),
        hi_ip in any::<u32>(),
        lo_port in any::<u16>(),
        hi_port in any::<u16>(),
        protocol in any::<u8>(),
    ) {
        let rules: Vec<RuleTuple> = rules
            .into_iter()
            .zip(&tgts)
            .map(|((a, p, q), t)| (a, p, q, *t))
            .collect();
        let p = Policy::parse(&policy_text(&rules, false)).unwrap();
        let key = FlowKey {
            lo_ip: u128::from(lo_ip.min(hi_ip)),
            hi_ip: u128::from(lo_ip.max(hi_ip)),
            lo_port,
            hi_port,
            protocol,
        };
        match p.match_flow(&key) {
            Some(hit) => {
                prop_assert!(hit.matches(&key));
                for earlier in p.rules.iter().take_while(|r| r.line < hit.line) {
                    prop_assert!(!earlier.matches(&key), "{earlier} shadows {hit}");
                }
            }
            None => {
                for r in &p.rules {
                    prop_assert!(!r.matches(&key), "{r} matches but match_flow said None");
                }
            }
        }
    }

    #[test]
    fn single_port_is_the_degenerate_range(
        port in any::<u16>(),
        proto in 0u8..=4,
        pnum in any::<u8>(),
    ) {
        let proto_txt = match proto {
            0 | 1 => "*".to_string(),
            2 => "tcp".to_string(),
            3 => "udp".to_string(),
            _ => pnum.to_string(),
        };
        let single = Policy::parse(&format!("*:{proto_txt}:{port} -> knn\n")).unwrap();
        let range = Policy::parse(&format!("*:{proto_txt}:{port}-{port} -> knn\n")).unwrap();
        prop_assert_eq!(single, range);
    }

    #[test]
    fn slash_zero_matches_every_v4_address(
        net in any::<[u8; 4]>(),
        lo_ip in any::<u32>(),
        hi_ip in any::<u32>(),
        lo_port in any::<u16>(),
        hi_port in any::<u16>(),
        protocol in any::<u8>(),
    ) {
        // A /0 block is the whole v4 internet — the net address is
        // irrelevant and every v4 key matches.
        let p = Policy::parse(&format!(
            "{}.{}.{}.{}/0 -> knn\n", net[0], net[1], net[2], net[3]
        )).unwrap();
        let key = FlowKey {
            lo_ip: u128::from(lo_ip.min(hi_ip)),
            hi_ip: u128::from(lo_ip.max(hi_ip)),
            lo_port,
            hi_port,
            protocol,
        };
        prop_assert!(p.match_flow(&key).is_some());
    }

    #[test]
    fn slash_32_matches_exactly_one_address(
        addr in any::<[u8; 4]>(),
        other in any::<u32>(),
        port in any::<u16>(),
        protocol in any::<u8>(),
    ) {
        let ip = u32::from_be_bytes(addr);
        let text = format!(
            "{}.{}.{}.{}/32 -> forest\n", addr[0], addr[1], addr[2], addr[3]
        );
        let p = Policy::parse(&text).unwrap();
        let exact = FlowKey {
            lo_ip: u128::from(ip),
            hi_ip: u128::from(ip),
            lo_port: port,
            hi_port: port,
            protocol,
        };
        prop_assert!(p.match_flow(&exact).is_some(), "/32 must match its own address");
        // A /32 rendered back through Display drops the suffix but must
        // stay the same rule.
        let q = Policy::parse(&p.to_string()).unwrap();
        prop_assert_eq!(&p, &q);
        if other != ip {
            let miss = FlowKey {
                lo_ip: u128::from(other),
                hi_ip: u128::from(other),
                lo_port: port,
                hi_port: port,
                protocol,
            };
            prop_assert!(
                p.match_flow(&miss).is_none(),
                "/32 must not match any other address"
            );
        }
    }

    #[test]
    fn inverted_port_ranges_are_rejected_not_reordered(
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let text = format!("*:tcp:{lo}-{hi} -> knn\n");
        let parsed = Policy::parse(&text);
        if lo > hi {
            let err = parsed.expect_err("inverted range must not parse");
            prop_assert_eq!(err.line, 1);
            prop_assert!(err.msg.contains("empty port range"), "got: {}", err.msg);
        } else {
            prop_assert!(parsed.is_ok(), "ordered range {}-{} must parse", lo, hi);
        }
    }

    #[test]
    fn any_rule_after_default_is_unreachable_and_rejected(
        rules in proptest::collection::vec(
            (
                (any::<[u8; 4]>(), 0u8..=32, any::<bool>()),
                (0u8..=4, any::<u8>()),
                (any::<u16>(), any::<u16>(), 0u8..=3),
            ),
            1..4,
        ),
        tgts in proptest::collection::vec(0usize..TARGETS.len(), 4),
    ) {
        let rules: Vec<RuleTuple> = rules
            .into_iter()
            .zip(&tgts)
            .map(|((a, p, q), t)| (a, p, q, *t))
            .collect();
        // default first, then otherwise-valid rules: the parser must
        // reject the document (first-match makes them unreachable) and
        // point at the first shadowed line.
        let text = format!("default -> forest\n{}", policy_text(&rules, false));
        let err = Policy::parse(&text).expect_err("rules after default must be rejected");
        prop_assert_eq!(err.line, 2);
        prop_assert!(err.msg.contains("unreachable"), "got: {}", err.msg);
    }

    #[test]
    fn arbitrary_text_never_panics_the_parser(
        text in "[a-z0-9:./*#> _-]{0,120}",
    ) {
        // Any outcome is fine; reaching this line means no panic.
        let _ = Policy::parse(&text);
    }

    #[test]
    fn wildcard_policy_matches_every_key(
        lo_ip in any::<u64>(),
        hi_ip in any::<u64>(),
        lo_port in any::<u16>(),
        hi_port in any::<u16>(),
        protocol in any::<u8>(),
    ) {
        let p = Policy::parse("* -> encoder\n").unwrap();
        let key = FlowKey {
            lo_ip: u128::from(lo_ip),
            hi_ip: u128::from(hi_ip),
            lo_port,
            hi_port,
            protocol,
        };
        prop_assert!(p.match_flow(&key).is_some());
        prop_assert!(Policy::route_all("encoder").match_flow(&key).is_some());
    }
}

#[test]
fn overlapping_rules_resolve_by_order_not_specificity() {
    // A broad early rule beats a more specific later one — the DSL is
    // first-match, not longest-prefix.
    let p = Policy::parse(
        "10.0.0.0/8 -> forest\n\
         10.1.2.3:tcp:443 -> encoder\n\
         default -> drop\n",
    )
    .unwrap();
    let ip = u128::from(u32::from_be_bytes([10, 1, 2, 3]));
    let key = FlowKey { lo_ip: ip, hi_ip: ip + 1, lo_port: 443, hi_port: 9000, protocol: 6 };
    assert_eq!(p.match_flow(&key).unwrap().target, "forest");
}
