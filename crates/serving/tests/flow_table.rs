//! Property tests for the flow table under hostile timestamps: capture
//! files carry clock skew, reordering and outright backwards time, and
//! the table's determinism contract has to survive all of it. Frames
//! are real synthesised traffic; timestamps are adversarial.

use proptest::prelude::*;
use serving::flow::Ingest;
use serving::source::SynthSpec;
use serving::FlowTable;
use std::sync::OnceLock;

/// A pool of real frames to draw from — flow-key variety without
/// hand-assembling Ethernet bytes in the generator.
fn frame_pool() -> &'static Vec<(f64, Vec<u8>)> {
    static POOL: OnceLock<Vec<(f64, Vec<u8>)>> = OnceLock::new();
    POOL.get_or_init(|| {
        SynthSpec::parse("ustc:5:1")
            .unwrap()
            .replay()
            .into_iter()
            .map(|p| (p.ts, p.frame))
            .collect()
    })
}

/// Replay `events` (frame index + timestamp override) through a table,
/// polling after every push, and return the full eviction stream as
/// `(id, reason)` plus the number of flows opened. `seq_offset` shifts
/// every sequence number, exercising ids far past `u32::MAX`.
fn run(events: &[(usize, f64)], seq_offset: u64) -> (Vec<(u64, u8)>, u64) {
    let pool = frame_pool();
    let mut table = FlowTable::new(5.0).unwrap();
    let mut stream: Vec<(u64, u8)> = Vec::new();
    let mut opened = 0u64;
    for (i, &(idx, ts)) in events.iter().enumerate() {
        let frame = &pool[idx % pool.len()].1;
        if let Ingest::Tracked { opened: true } = table.push(seq_offset + i as u64, ts, frame) {
            opened += 1;
        }
        for (flow, reason) in table.poll(ts) {
            assert_eq!(
                flow.records.iter().map(|r| r.flow_id).max().unwrap_or(flow.id),
                flow.id,
                "every stored record must carry the flow's id"
            );
            stream.push((flow.id, reason as u8));
        }
    }
    for (flow, reason) in table.flush() {
        stream.push((flow.id, reason as u8));
    }
    assert!(table.is_empty(), "flush must leave nothing tracked");
    (stream, opened)
}

/// Event stream strategy: frame indices from the pool, timestamps
/// drawn independently from a window that guarantees reordering,
/// duplicates and idle gaps relative to the 5s timeout.
fn events() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..512, -20.0f64..40.0), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn out_of_order_timestamps_never_break_the_eviction_contract(evs in events()) {
        let (stream, opened) = run(&evs, 0);
        // Conservation: every opened flow retires exactly once.
        prop_assert_eq!(stream.len() as u64, opened);
        let mut ids: Vec<u64> = stream.iter().map(|&(id, _)| id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "a flow id must never be evicted twice");
    }

    #[test]
    fn adversarial_replays_are_deterministic(evs in events()) {
        let (a, oa) = run(&evs, 0);
        let (b, ob) = run(&evs, 0);
        prop_assert_eq!(a, b, "identical replay must evict identically");
        prop_assert_eq!(oa, ob);
    }

    #[test]
    fn flow_ids_are_a_pure_shift_of_sequence_numbers(evs in events()) {
        // Ids are the opener's sequence number and nothing else:
        // offsetting every seq by a constant (pushing ids far past
        // u32::MAX) shifts the stream's ids and changes nothing else.
        let offset = u64::from(u32::MAX) + 17;
        let (base, _) = run(&evs, 0);
        let (wide, _) = run(&evs, offset);
        prop_assert_eq!(base.len(), wide.len());
        for (&(id0, r0), &(id1, r1)) in base.iter().zip(&wide) {
            prop_assert_eq!(id0 + offset, id1);
            prop_assert!(id1 > u64::from(u32::MAX));
            prop_assert_eq!(r0, r1);
        }
    }

    #[test]
    fn poll_batches_come_out_in_id_order(evs in events()) {
        let pool = frame_pool();
        let mut table = FlowTable::new(5.0).unwrap();
        for (i, &(idx, ts)) in evs.iter().enumerate() {
            table.push(i as u64, ts, &pool[idx % pool.len()].1);
            let batch = table.poll(ts);
            for w in batch.windows(2) {
                prop_assert!(w[0].0.id < w[1].0.id, "poll batch must be id-sorted");
            }
        }
        let last = table.flush();
        for w in last.windows(2) {
            prop_assert!(w[0].0.id < w[1].0.id, "flush batch must be id-sorted");
        }
    }
}
