//! End-to-end determinism contract: an identical replay through an
//! identical bundle and policy produces a byte-identical verdict
//! stream — at any batch size, across process reruns (synth replay is
//! seeded), and whether the bundle is the freshly trained object or
//! its frozen save→load round trip.

use dataset::record::Prepared;
use debunk_core::obs::{LogFormat, ObsSink};
use serving::engine::{serve_stream, ServeOptions, ServeStats};
use serving::policy::Policy;
use serving::source::SynthSpec;
use serving::ModelBundle;
use std::sync::OnceLock;

/// One bundle shared across every test in this file — training is the
/// expensive part and the tests only ever read it.
fn bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let spec = SynthSpec::parse("ustc:7:1").unwrap();
        ModelBundle::train(&Prepared::from_trace(&spec.trace()), 42)
    })
}

fn serve(bundle: &ModelBundle, policy: &Policy, batch: usize) -> (Vec<u8>, ServeStats) {
    let packets = SynthSpec::parse("ustc:11:2").unwrap().replay();
    let sink = ObsSink::stderr(LogFormat::Text);
    let mut out = Vec::new();
    let opts = ServeOptions { batch, idle_timeout: 15.0 };
    let stats = serve_stream(bundle, policy, &packets, &opts, &mut out, &sink).unwrap();
    (out, stats)
}

#[test]
fn verdict_stream_is_invariant_across_batch_sizes() {
    let policy = Policy::parse("*:tcp:443 -> encoder\n*:udp -> knn\ndefault -> gbdt\n").unwrap();
    let (baseline, stats) = serve(bundle(), &policy, 1);
    assert!(stats.verdicts > 0, "replay must classify something");
    for batch in [2, 7, 16, 64, 4096] {
        let (bytes, s) = serve(bundle(), &policy, batch);
        assert_eq!(baseline, bytes, "batch {batch} diverged from batch 1");
        assert_eq!(stats, s, "stats at batch {batch}");
    }
}

#[test]
fn rerun_of_the_same_replay_is_byte_identical() {
    let policy = Policy::route_all("forest");
    let (a, sa) = serve(bundle(), &policy, 16);
    let (b, sb) = serve(bundle(), &policy, 16);
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

#[test]
fn frozen_round_trip_serves_identically_to_the_trained_bundle() {
    let dir = std::env::temp_dir().join("debunk-serving-determinism");
    std::fs::remove_dir_all(&dir).ok();
    bundle().save(&dir).expect("save bundle");
    let loaded = ModelBundle::load(&dir).expect("load bundle");
    let policy = Policy::parse("*:tcp -> encoder\n*:udp -> forest\ndefault -> knn\n").unwrap();
    let (fresh, sa) = serve(bundle(), &policy, 16);
    let (frozen, sb) = serve(&loaded, &policy, 16);
    assert_eq!(fresh, frozen, "save->load must not change a single verdict byte");
    assert_eq!(sa, sb);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_model_target_serves_deterministically() {
    for target in ["encoder", "forest", "gbdt", "knn"] {
        let policy = Policy::route_all(target);
        let (a, sa) = serve(bundle(), &policy, 3);
        let (b, sb) = serve(bundle(), &policy, 17);
        assert!(!a.is_empty(), "{target} produced no verdicts");
        assert_eq!(a, b, "{target} diverged across batch sizes");
        assert_eq!(sa, sb);
        assert_eq!(sa.verdicts, sa.flows, "{target} must classify every flow");
    }
}
