//! End-to-end determinism contract: an identical replay through an
//! identical bundle and policy produces a byte-identical verdict
//! stream — at any batch size, at any worker count, across process
//! reruns (synth replay is seeded), across a mid-replay hot-reload,
//! and whether the bundle is the freshly trained object or its frozen
//! save→load round trip.

use dataset::record::Prepared;
use debunk_core::obs::{LogFormat, ObsSink};
use serving::engine::{serve as serve_engine, EpochBundle, ServeOptions, ServeStats};
use serving::policy::Policy;
use serving::reload::{LiveMsg, ReloadSource};
use serving::source::SynthSpec;
use serving::ModelBundle;
use std::sync::{Arc, OnceLock};

/// One bundle shared across every test in this file — training is the
/// expensive part and the tests only ever read it.
fn bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let spec = SynthSpec::parse("ustc:7:1").unwrap();
        ModelBundle::train(&Prepared::from_trace(&spec.trace()), 42)
    })
}

/// A second bundle (different seed) so reload tests actually swap
/// model weights, not just bump the epoch counter. Arc-wrapped because
/// the live-reload channel hands the engine owned bundles.
fn bundle_b() -> &'static Arc<ModelBundle> {
    static BUNDLE: OnceLock<Arc<ModelBundle>> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let spec = SynthSpec::parse("ustc:7:1").unwrap();
        Arc::new(ModelBundle::train(&Prepared::from_trace(&spec.trace()), 43))
    })
}

/// Same training data as [`bundle`] but with the int8 encoder artifact
/// attached — the refusal test routes to `encoder_int8`.
fn bundle_int8() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let spec = SynthSpec::parse("ustc:7:1").unwrap();
        let mut b = ModelBundle::train(&Prepared::from_trace(&spec.trace()), 42);
        b.quantize_encoder();
        b
    })
}

fn serve_full(
    bundle: &ModelBundle,
    policy: &Policy,
    batch: usize,
    workers: usize,
    reload: ReloadSource<'_>,
) -> (Vec<u8>, ServeStats) {
    let packets = SynthSpec::parse("ustc:11:2").unwrap().replay();
    let sink = ObsSink::stderr(LogFormat::Text);
    let mut out = Vec::new();
    let opts = ServeOptions { batch, idle_timeout: 15.0, workers };
    let stats = serve_engine(bundle, policy, &packets, &opts, reload, &mut out, &sink).unwrap();
    (out, stats)
}

fn serve(bundle: &ModelBundle, policy: &Policy, batch: usize) -> (Vec<u8>, ServeStats) {
    serve_full(bundle, policy, batch, 1, ReloadSource::None)
}

/// A planned single-reload source swapping to `bundle_b` at `boundary`.
fn reload_at(boundary: u64) -> ReloadSource<'static> {
    ReloadSource::planned(vec![(
        boundary,
        EpochBundle::Borrowed(bundle_b().as_ref()),
        String::from("test-epoch-1"),
    )])
}

#[test]
fn verdict_stream_is_invariant_across_batch_sizes() {
    let policy = Policy::parse("*:tcp:443 -> encoder\n*:udp -> knn\ndefault -> gbdt\n").unwrap();
    let (baseline, stats) = serve(bundle(), &policy, 1);
    assert!(stats.verdicts > 0, "replay must classify something");
    for batch in [2, 7, 16, 64, 4096] {
        let (bytes, s) = serve(bundle(), &policy, batch);
        assert_eq!(baseline, bytes, "batch {batch} diverged from batch 1");
        assert_eq!(stats, s, "stats at batch {batch}");
    }
}

#[test]
fn rerun_of_the_same_replay_is_byte_identical() {
    let policy = Policy::route_all("forest");
    let (a, sa) = serve(bundle(), &policy, 16);
    let (b, sb) = serve(bundle(), &policy, 16);
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

#[test]
fn frozen_round_trip_serves_identically_to_the_trained_bundle() {
    let dir = std::env::temp_dir().join("debunk-serving-determinism");
    std::fs::remove_dir_all(&dir).ok();
    bundle().save(&dir).expect("save bundle");
    let loaded = ModelBundle::load(&dir).expect("load bundle");
    let policy = Policy::parse("*:tcp -> encoder\n*:udp -> forest\ndefault -> knn\n").unwrap();
    let (fresh, sa) = serve(bundle(), &policy, 16);
    let (frozen, sb) = serve(&loaded, &policy, 16);
    assert_eq!(fresh, frozen, "save->load must not change a single verdict byte");
    assert_eq!(sa, sb);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_verdict_stream_is_byte_identical_to_single_worker() {
    let policy = Policy::parse("*:tcp:443 -> encoder\n*:udp -> knn\ndefault -> gbdt\n").unwrap();
    let (baseline, stats) = serve(bundle(), &policy, 16);
    assert!(stats.verdicts > 0, "replay must classify something");
    for workers in [2, 4] {
        for batch in [1, 16] {
            let (bytes, s) = serve_full(bundle(), &policy, batch, workers, ReloadSource::None);
            assert_eq!(
                baseline, bytes,
                "workers={workers} batch={batch} diverged from the single-worker stream"
            );
            assert_eq!(stats, s, "stats at workers={workers} batch={batch}");
        }
    }
}

#[test]
fn planned_reload_is_worker_count_invariant() {
    let policy = Policy::parse("*:udp -> knn\ndefault -> forest\n").unwrap();
    let n_packets = SynthSpec::parse("ustc:11:2").unwrap().replay().len() as u64;
    let boundary = n_packets / 2;
    let (baseline, stats) = serve_full(bundle(), &policy, 16, 1, reload_at(boundary));
    assert_eq!(stats.reloads, 1, "the planned reload must fire");
    let text = String::from_utf8(baseline.clone()).unwrap();
    assert!(text.contains("\"epoch\":0"), "some flows must retire under the old bundle");
    assert!(text.contains("\"epoch\":1"), "some flows must retire under the new bundle");
    for workers in [2, 4] {
        let (bytes, s) = serve_full(bundle(), &policy, 16, workers, reload_at(boundary));
        assert_eq!(baseline, bytes, "workers={workers} diverged across the reload boundary");
        assert_eq!(stats, s, "stats at workers={workers}");
    }
}

#[test]
fn live_reload_at_stream_start_matches_planned_boundary_zero() {
    // A live candidate picked up before packet 0 binds to boundary 0 —
    // byte-identical to the planned run at that boundary, which is the
    // exact replayability story `reloads.boundaries` metrics promise.
    let policy = Policy::route_all("forest");
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(LiveMsg::Bundle(Arc::clone(bundle_b()), String::from("live-0"))).unwrap();
    let (live, live_stats) = serve_full(bundle(), &policy, 16, 1, ReloadSource::Live(rx));
    let (planned, planned_stats) = serve_full(bundle(), &policy, 16, 1, reload_at(0));
    assert_eq!(live_stats.reloads, 1);
    assert_eq!(live, planned, "live pickup at seq 0 must replay as planned boundary 0");
    assert_eq!(live_stats, planned_stats);
}

#[test]
fn incompatible_live_candidate_is_refused_and_stream_is_unchanged() {
    // Policy routes to the int8 encoder; the candidate bundle has no
    // int8 artifact, so validation must refuse it mid-stream and the
    // verdict bytes must match a run that never saw a candidate.
    let policy = Policy::route_all("encoder_int8");
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(LiveMsg::Bundle(Arc::clone(bundle_b()), String::from("no-int8"))).unwrap();
    let (with_refusal, stats) = serve_full(bundle_int8(), &policy, 16, 1, ReloadSource::Live(rx));
    let (clean, clean_stats) = serve_full(bundle_int8(), &policy, 16, 1, ReloadSource::None);
    assert_eq!(stats.reloads, 0, "incompatible candidate must not apply");
    assert_eq!(stats.reloads_refused, 1, "refusal must be counted");
    assert_eq!(with_refusal, clean, "a refused candidate must not change a single byte");
    assert_eq!(stats.verdicts, clean_stats.verdicts);
}

#[test]
fn every_model_target_serves_deterministically() {
    for target in ["encoder", "forest", "gbdt", "knn"] {
        let policy = Policy::route_all(target);
        let (a, sa) = serve(bundle(), &policy, 3);
        let (b, sb) = serve(bundle(), &policy, 17);
        assert!(!a.is_empty(), "{target} produced no verdicts");
        assert_eq!(a, b, "{target} diverged across batch sizes");
        assert_eq!(sa, sb);
        assert_eq!(sa.verdicts, sa.flows, "{target} must classify every flow");
    }
}
