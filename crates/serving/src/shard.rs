//! Flow-hash-sharded multi-worker serving.
//!
//! The caller thread is the **dispatcher**: it assigns every packet a
//! global sequence number, hashes its flow key (FNV-1a 64) to pick an
//! owner worker, and streams batched events over channels. Every
//! worker receives a `(seq, ts)` tick for every packet — so each
//! private [`FlowTable`](crate::flow::FlowTable)'s eviction schedule is
//! exactly the single-worker schedule — but only the owner receives
//! the frame bytes. Each worker owns a private flow table, pending
//! queue and classify scratch (one [`Shard`](crate::engine) per
//! thread), and emits verdicts keyed `(evict_seq, flow_id)`.
//!
//! A **merger** thread performs a deterministic k-way merge of the
//! per-worker verdict streams: a verdict is written once every other
//! worker has promised (via a watermark, or by being done) that it can
//! no longer produce a smaller key — the same earliest-wins discipline
//! as `traffic_synth::stream::merge_sorted`, with the tie-break
//! degenerate because flow ids are globally unique. The merged bytes
//! are identical to `--serve-workers 1` at any worker count, across
//! reload boundaries (reload events are broadcast in stream position,
//! so every worker sees a boundary before the first tick at or past
//! it).

use crate::bundle::ModelBundle;
use crate::engine::{EpochBundle, ServeOptions, ServeStats, Shard as EngineShard};
use crate::policy::Policy;
use crate::reload::{ReloadAction, ReloadSource};
use crate::source::ReplayPacket;
use debunk_core::obs::{ObsSink, Value};
use net_packet::frame::{FlowKey, ParsedFrame};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

/// Events per channel send: large enough to amortise channel overhead,
/// small enough that verdict merging stays pipelined with ingest.
const EVENT_BATCH: usize = 256;

/// FNV-1a 64 over the canonical flow-key bytes — the repo-wide stable
/// hash (same constants as `traffic_synth::stream::fnv64`), so shard
/// placement is a pure function of the key, never of memory layout or
/// `std` hasher seeds.
pub fn flow_shard(key: &FlowKey, n_workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&key.lo_ip.to_be_bytes());
    eat(&key.hi_ip.to_be_bytes());
    eat(&key.lo_port.to_be_bytes());
    eat(&key.hi_port.to_be_bytes());
    eat(&[key.protocol]);
    (h % n_workers.max(1) as u64) as usize
}

/// One dispatcher→worker event, delivered in stream order.
enum Event<'a> {
    /// A frame this worker owns (implies the tick at `seq`).
    Frame {
        seq: u64,
        ts: f64,
        frame: Vec<u8>,
    },
    /// Another worker's packet: advance this worker's clock only.
    Tick {
        seq: u64,
        ts: f64,
    },
    /// A reload boundary: flows retired at `boundary` or later are
    /// classified by `bundle`.
    Reload {
        boundary: u64,
        bundle: EpochBundle<'a>,
    },
    End {
        flush_seq: u64,
    },
}

/// One worker→merger message.
enum MergeMsg {
    /// Verdicts in key order (monotone within and across messages from
    /// one worker).
    Verdicts(Vec<(u64, u64, String)>),
    /// Promise: every future verdict from this worker has key >= this.
    Watermark(u64, u64),
    /// No further verdicts from this worker.
    Done,
}

/// Drive one worker: apply events in order, buffer emitted verdicts,
/// and after every event batch publish them plus a fresh watermark.
/// Returns this shard's partial stats and busy seconds.
fn run_worker<'a>(
    idx: usize,
    mut shard: EngineShard<'a>,
    rx: Receiver<Vec<Event<'a>>>,
    tx: &Sender<(usize, MergeMsg)>,
    sink: &ObsSink,
) -> io::Result<(ServeStats, f64)> {
    let mut busy = 0.0f64;
    let mut last_seq = 0u64;
    while let Ok(events) = rx.recv() {
        let t0 = Instant::now();
        let mut verdicts: Vec<(u64, u64, String)> = Vec::new();
        let mut finished = false;
        {
            let mut emit = |s: u64, id: u64, line: String| {
                verdicts.push((s, id, line));
                Ok(())
            };
            for ev in events {
                match ev {
                    Event::Frame { seq, ts, frame } => {
                        shard.frame(seq, ts, &frame, sink);
                        shard.tick(seq, ts, sink, &mut emit)?;
                        last_seq = seq;
                    }
                    Event::Tick { seq, ts } => {
                        shard.tick(seq, ts, sink, &mut emit)?;
                        last_seq = seq;
                    }
                    Event::Reload { boundary, bundle } => shard.add_epoch(boundary, bundle),
                    Event::End { flush_seq } => {
                        shard.finish(flush_seq, sink, &mut emit)?;
                        finished = true;
                    }
                }
            }
        }
        busy += t0.elapsed().as_secs_f64();
        if !verdicts.is_empty() {
            let _ = tx.send((idx, MergeMsg::Verdicts(verdicts)));
        }
        if finished {
            let _ = tx.send((idx, MergeMsg::Done));
            return Ok((shard.stats, busy));
        }
        let (s, id) = shard.emit_bound(last_seq);
        let _ = tx.send((idx, MergeMsg::Watermark(s, id)));
    }
    Err(io::Error::other("event channel closed before End"))
}

/// Merger state for one worker's stream.
struct WorkerStream {
    queue: VecDeque<(u64, u64, String)>,
    /// Lower bound on this worker's next verdict key.
    bound: (u64, u64),
    done: bool,
}

/// Write every verdict whose key is proven globally minimal. A queued
/// verdict from worker `j` is written once, for every other worker,
/// either its queue head is larger (keys are unique, so the strict
/// minimum is unambiguous) or its watermark/done state rules out
/// anything smaller.
fn drain_ready(streams: &mut [WorkerStream], out: &mut dyn Write) -> io::Result<u64> {
    let mut written = 0u64;
    loop {
        let mut best: Option<(usize, (u64, u64))> = None;
        for (j, st) in streams.iter().enumerate() {
            if let Some(&(s, id, _)) = st.queue.front() {
                if best.is_none_or(|(_, k)| (s, id) < k) {
                    best = Some((j, (s, id)));
                }
            }
        }
        let Some((j, key)) = best else { return Ok(written) };
        let safe = streams
            .iter()
            .enumerate()
            .all(|(k, st)| k == j || !st.queue.is_empty() || st.done || st.bound > key);
        if !safe {
            return Ok(written);
        }
        let (_, _, line) = streams[j].queue.pop_front().expect("front checked");
        out.write_all(line.as_bytes())?;
        written += 1;
    }
}

/// The merger thread body: consume worker messages until every worker
/// is done, writing verdicts in global `(evict_seq, flow_id)` order.
fn run_merger(
    n: usize,
    rx: Receiver<(usize, MergeMsg)>,
    out: &mut (dyn Write + Send),
) -> io::Result<()> {
    let mut streams: Vec<WorkerStream> = (0..n)
        .map(|_| WorkerStream { queue: VecDeque::new(), bound: (0, 0), done: false })
        .collect();
    let mut finished = 0usize;
    while finished < n {
        let (i, msg) =
            rx.recv().map_err(|_| io::Error::other("worker verdict channel closed early"))?;
        match msg {
            MergeMsg::Verdicts(v) => streams[i].queue.extend(v),
            MergeMsg::Watermark(s, id) => streams[i].bound = (s, id),
            MergeMsg::Done => {
                streams[i].done = true;
                finished += 1;
            }
        }
        drain_ready(&mut streams, out)?;
    }
    drain_ready(&mut streams, out)?;
    debug_assert!(streams.iter().all(|st| st.queue.is_empty()), "merge left verdicts queued");
    out.flush()
}

/// Turn reload decisions into broadcast events (every worker must see
/// a boundary in stream position) and dispatcher-side counters.
fn broadcast_reloads<'a>(
    actions: Vec<ReloadAction<'a>>,
    bufs: &mut [Vec<Event<'a>>],
    stats: &mut ServeStats,
    sink: &ObsSink,
) {
    for action in actions {
        match action {
            ReloadAction::Apply { boundary, bundle, origin } => {
                for buf in bufs.iter_mut() {
                    buf.push(Event::Reload { boundary, bundle: bundle.clone() });
                }
                stats.reloads += 1;
                sink.record_serving_reload(boundary);
                sink.info(
                    "serve",
                    "bundle reloaded",
                    &[("boundary", Value::U64(boundary)), ("origin", Value::Str(origin))],
                );
            }
            ReloadAction::Refuse { origin, error } => {
                stats.reloads_refused += 1;
                sink.record_serving_reload_refused();
                sink.warn(
                    "serve",
                    "reload candidate refused; old bundle keeps serving",
                    &[("origin", Value::Str(origin)), ("error", Value::Str(error))],
                );
            }
        }
    }
}

/// Sharded serve loop (`opts.workers >= 2`): dispatcher on the caller
/// thread, one shard worker thread per `opts.workers`, one merger
/// thread writing `out`. Verdict bytes are identical to the inline
/// single-worker loop at any worker count.
pub(crate) fn serve_sharded<I>(
    bundle: &ModelBundle,
    policy: &Policy,
    packets: I,
    opts: &ServeOptions,
    mut reload: ReloadSource<'_>,
    out: &mut (dyn Write + Send),
    sink: &ObsSink,
) -> io::Result<ServeStats>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<ReplayPacket>,
{
    let n = opts.workers;
    // Construct every shard up front so a bad configuration (e.g. the
    // idle timeout) is refused before any thread or packet.
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(EngineShard::new(EpochBundle::Borrowed(bundle), policy, opts)?);
    }
    let mut stats = ServeStats::default();
    let t_run = Instant::now();

    let result: io::Result<Vec<(ServeStats, f64)>> = std::thread::scope(|scope| {
        let mut event_txs: Vec<Sender<Vec<Event<'_>>>> = Vec::with_capacity(n);
        let (merge_tx, merge_rx) = channel::<(usize, MergeMsg)>();
        let mut workers = Vec::with_capacity(n);
        for (idx, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = channel::<Vec<Event<'_>>>();
            event_txs.push(tx);
            let merge_tx = merge_tx.clone();
            workers.push(scope.spawn(move || run_worker(idx, shard, rx, &merge_tx, sink)));
        }
        drop(merge_tx);
        let merger = scope.spawn(move || run_merger(n, merge_rx, out));

        let mut bufs: Vec<Vec<Event<'_>>> = (0..n).map(|_| Vec::new()).collect();
        let mut dispatch_secs = 0.0f64;
        let mut seq = 0u64;
        for p in packets {
            let p = std::borrow::Borrow::borrow(&p);
            broadcast_reloads(reload.poll(seq, policy), &mut bufs, &mut stats, sink);
            let t0 = Instant::now();
            stats.packets += 1;
            // The dispatcher parses every frame once to place it; the
            // owner re-parses on push (parsing is deterministic, so
            // both agree on the key). Keyless frames still tick every
            // clock — the single-worker loop polls on them too.
            let owner = ParsedFrame::parse(&p.frame)
                .ok()
                .and_then(|pf| pf.flow_key())
                .map(|key| flow_shard(&key, n));
            if owner.is_none() {
                stats.non_ip += 1;
            }
            for (w, buf) in bufs.iter_mut().enumerate() {
                if owner == Some(w) {
                    buf.push(Event::Frame { seq, ts: p.ts, frame: p.frame.clone() });
                } else {
                    buf.push(Event::Tick { seq, ts: p.ts });
                }
            }
            for w in 0..n {
                if bufs[w].len() >= EVENT_BATCH {
                    let _ = event_txs[w].send(std::mem::take(&mut bufs[w]));
                }
            }
            dispatch_secs += t0.elapsed().as_secs_f64();
            seq += 1;
        }
        // Boundaries landing exactly on the flush sequence still cover
        // the flushed flows (mirrors the inline loop).
        broadcast_reloads(reload.poll(seq, policy), &mut bufs, &mut stats, sink);
        for buf in bufs.iter_mut() {
            buf.push(Event::End { flush_seq: seq });
        }
        for w in 0..n {
            let _ = event_txs[w].send(std::mem::take(&mut bufs[w]));
        }
        drop(event_txs);
        sink.add_stage("serve:dispatch", dispatch_secs);

        let mut parts = Vec::with_capacity(n);
        for h in workers {
            parts.push(h.join().expect("shard worker panicked")?);
        }
        merger.join().expect("verdict merger panicked")?;
        Ok(parts)
    });

    let parts = result?;
    for (idx, (part, busy)) in parts.iter().enumerate() {
        stats.flows += part.flows;
        stats.verdicts += part.verdicts;
        stats.dropped += part.dropped;
        sink.record_serving_shard(idx, part.flows, part.verdicts, *busy);
    }
    sink.record_serving_packets(stats.packets, stats.non_ip);
    sink.add_stage("serve:wall", t_run.elapsed().as_secs_f64());
    sink.debug(
        "serve",
        "sharded replay complete",
        &[
            ("workers", Value::U64(n as u64)),
            ("packets", Value::U64(stats.packets)),
            ("flows", Value::U64(stats.flows)),
            ("verdicts", Value::U64(stats.verdicts)),
            ("reloads", Value::U64(stats.reloads)),
        ],
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_shard_is_stable_and_in_range() {
        let key = FlowKey { lo_ip: 1, hi_ip: 2, lo_port: 80, hi_port: 443, protocol: 6 };
        let a = flow_shard(&key, 4);
        assert_eq!(a, flow_shard(&key, 4), "same key, same shard");
        assert!(a < 4);
        assert_eq!(flow_shard(&key, 1), 0);
        for n in 1..9 {
            assert!(flow_shard(&key, n) < n);
        }
    }

    #[test]
    fn merge_waits_for_watermarks_then_orders_globally() {
        let mut streams: Vec<WorkerStream> = (0..2)
            .map(|_| WorkerStream { queue: VecDeque::new(), bound: (0, 0), done: false })
            .collect();
        let mut out: Vec<u8> = Vec::new();
        streams[0].queue.push_back((5, 1, "a\n".to_string()));
        // Worker 1's bound is still (0,0): nothing can be written yet.
        assert_eq!(drain_ready(&mut streams, &mut out).unwrap(), 0);
        streams[1].bound = (4, 0);
        assert_eq!(drain_ready(&mut streams, &mut out).unwrap(), 0, "bound below head");
        streams[1].queue.push_back((3, 2, "b\n".to_string()));
        streams[1].queue.push_back((9, 4, "c\n".to_string()));
        // Now (3,2) < (5,1) < (9,4) and both heads are present.
        assert_eq!(drain_ready(&mut streams, &mut out).unwrap(), 2);
        assert_eq!(out, b"b\na\n");
        streams[0].done = true;
        assert_eq!(drain_ready(&mut streams, &mut out).unwrap(), 1);
        assert_eq!(out, b"b\na\nc\n");
    }
}
