//! Online flow classification on top of frozen model exports.
//!
//! The train side of the repo (`encoders`, `shallow`, `nn`) fits
//! models; this crate is the inference side: it loads checksummed
//! frozen artifacts ([`bundle::ModelBundle`]), assembles live packets
//! into flows ([`flow::FlowTable`]), routes each retired flow through
//! a user policy ([`policy::Policy`]), and emits a deterministic JSONL
//! verdict stream ([`engine::serve_stream`]). The `serve` binary wraps
//! the two entry points: `serve export` trains and freezes a bundle,
//! `serve run` replays packets against one.
//!
//! Nothing in this crate can train — that split is the point: a
//! serving deploy carries no optimiser, no labels, no gradient code,
//! and refuses corrupt or mismatched artifacts at load time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod engine;
pub mod flow;
pub mod policy;
pub mod reload;
pub mod shard;
pub mod source;

pub use bundle::ModelBundle;
pub use engine::{serve, serve_stream, EpochBundle, ServeOptions, ServeStats};
pub use flow::{FlowTable, TrackedFlow, MAX_STORED_PACKETS};
pub use policy::{Policy, PolicyError, Rule};
pub use reload::{LiveMsg, ReloadSource, ReloadWatcher};
pub use shard::flow_shard;
pub use source::{from_pcap_bytes, from_pcap_file, throttle, ReplayPacket, SynthSpec};
