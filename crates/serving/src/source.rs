//! Packet sources for the serving engine: pcap replay and synthetic
//! live traffic. Both produce the same `(timestamp, frame)` stream, so
//! the engine is source-agnostic and a synthetic replay exercises the
//! exact code path a capture file does.

use net_packet::pcap;
use std::path::Path;
use traffic_synth::{DatasetKind, DatasetSpec};

/// One frame to feed the engine: capture timestamp plus raw Ethernet
/// bytes — exactly what a pcap record or a NIC tap delivers.
#[derive(Debug, Clone)]
pub struct ReplayPacket {
    /// Capture timestamp (seconds).
    pub ts: f64,
    /// Raw Ethernet frame.
    pub frame: Vec<u8>,
}

/// Decode a pcap byte buffer into a replay stream.
pub fn from_pcap_bytes(bytes: &[u8]) -> Result<Vec<ReplayPacket>, String> {
    let packets = pcap::read_all(bytes).map_err(|e| format!("bad pcap: {e}"))?;
    Ok(packets.into_iter().map(|p| ReplayPacket { ts: p.timestamp(), frame: p.data }).collect())
}

/// Read and decode a pcap file.
pub fn from_pcap_file(path: &Path) -> Result<Vec<ReplayPacket>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    from_pcap_bytes(&bytes)
}

/// Stream an on-disk flow-sharded trace directory (written by
/// `traffic-gen --shards` or the out-of-core prepare path) as a replay
/// source. Every run file is checksum-verified before the first packet;
/// the k-way merge then yields frames in capture order while holding
/// only one record per run in memory — the replay is byte-identical to
/// replaying the serial trace, at any shard count.
pub fn from_shard_dir(path: &Path) -> Result<impl Iterator<Item = ReplayPacket>, String> {
    let shards = traffic_synth::stream::ShardDir::discover(path)?;
    Ok(shards.merged()?.map(|r| ReplayPacket { ts: r.ts, frame: r.frame }))
}

/// Pace a replay at roughly `pps` packets per second of wall clock —
/// a live-traffic stand-in for exercising asynchronous behaviour
/// (e.g. a `--reload-dir` watcher firing mid-replay). Pacing touches
/// delivery time only: timestamps stay the capture timestamps, so the
/// verdict stream is byte-identical to the unthrottled replay.
pub fn throttle<I>(packets: I, pps: f64) -> impl Iterator<Item = ReplayPacket>
where
    I: IntoIterator<Item = ReplayPacket>,
{
    let paced = pps > 0.0 && pps.is_finite();
    let start = std::time::Instant::now();
    packets.into_iter().enumerate().map(move |(i, p)| {
        if paced {
            let due = start + std::time::Duration::from_secs_f64(i as f64 / pps);
            if let Some(wait) = due.checked_duration_since(std::time::Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        p
    })
}

/// A synthetic traffic source: `<dataset>:<seed>:<flows_per_class>`
/// (e.g. `ustc:7:4`). Deterministic — the same spec always replays the
/// identical packet stream, which is what the determinism contract and
/// the serving smoke test rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthSpec {
    /// Which dataset recipe to synthesise.
    pub kind: DatasetKind,
    /// Generator seed.
    pub seed: u64,
    /// Flows per class.
    pub flows_per_class: usize,
}

impl SynthSpec {
    /// Parse a `<dataset>:<seed>:<flows_per_class>` spec string. The
    /// dataset is one of `iscx`, `ustc`, `cstnet`.
    pub fn parse(spec: &str) -> Result<SynthSpec, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [kind, seed, fpc] = parts[..] else {
            return Err(format!("bad synth spec '{spec}': want <dataset>:<seed>:<flows>"));
        };
        let kind = match kind {
            "iscx" => DatasetKind::IscxVpn,
            "ustc" => DatasetKind::UstcTfc,
            "cstnet" => DatasetKind::CstnetTls120,
            other => return Err(format!("unknown dataset '{other}' (iscx|ustc|cstnet)")),
        };
        let seed = seed.parse::<u64>().map_err(|_| format!("bad seed '{seed}'"))?;
        let flows_per_class =
            fpc.parse::<usize>().map_err(|_| format!("bad flow count '{fpc}'"))?;
        if flows_per_class == 0 {
            return Err("flows_per_class must be at least 1".into());
        }
        Ok(SynthSpec { kind, seed, flows_per_class })
    }

    /// The generated trace (labelled packets + class table) — used by
    /// `serve export` to train a bundle on the same distribution it
    /// will later classify.
    pub fn trace(&self) -> traffic_synth::Trace {
        DatasetSpec { kind: self.kind, seed: self.seed, flows_per_class: self.flows_per_class }
            .generate()
    }

    /// Replay stream: every frame of the trace — including spurious
    /// non-IP chatter — in capture order, labels stripped. This is what
    /// an online classifier actually sees.
    pub fn replay(&self) -> Vec<ReplayPacket> {
        self.trace()
            .records
            .into_iter()
            .map(|r| ReplayPacket { ts: r.ts, frame: r.frame })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        let s = SynthSpec::parse("ustc:7:4").unwrap();
        assert_eq!(s.kind, DatasetKind::UstcTfc);
        assert_eq!((s.seed, s.flows_per_class), (7, 4));
        assert!(SynthSpec::parse("ustc:7").is_err());
        assert!(SynthSpec::parse("mnist:1:1").is_err());
        assert!(SynthSpec::parse("iscx:x:1").is_err());
        assert!(SynthSpec::parse("iscx:1:0").is_err());
    }

    #[test]
    fn replay_is_deterministic_and_time_ordered() {
        let s = SynthSpec::parse("iscx:3:1").unwrap();
        let a = s.replay();
        let b = s.replay();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ts.to_bits(), y.ts.to_bits());
            assert_eq!(x.frame, y.frame);
        }
        for w in a.windows(2) {
            assert!(w[1].ts >= w[0].ts);
        }
    }

    #[test]
    fn shard_dir_replay_matches_synth_replay() {
        let dir = std::env::temp_dir().join("debunk-serve-sharddir");
        std::fs::remove_dir_all(&dir).ok();
        let s = SynthSpec::parse("ustc:7:2").unwrap();
        let spec = DatasetSpec { kind: s.kind, seed: s.seed, flows_per_class: s.flows_per_class };
        traffic_synth::stream::ShardDir::ensure(&dir, &spec, 3).unwrap();
        let streamed: Vec<ReplayPacket> = from_shard_dir(&dir).unwrap().collect();
        let direct = s.replay();
        assert_eq!(streamed.len(), direct.len());
        for (a, b) in streamed.iter().zip(&direct) {
            assert_eq!(a.ts.to_bits(), b.ts.to_bits());
            assert_eq!(a.frame, b.frame);
        }
        assert!(from_shard_dir(&dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pcap_round_trip_matches_replay() {
        let s = SynthSpec::parse("iscx:5:1").unwrap();
        let bytes = s.trace().to_pcap();
        let from_pcap = from_pcap_bytes(&bytes).unwrap();
        let direct = s.replay();
        assert_eq!(from_pcap.len(), direct.len());
        for (a, b) in from_pcap.iter().zip(&direct) {
            assert_eq!(a.frame, b.frame);
        }
    }
}
