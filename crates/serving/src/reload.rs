//! Model hot-reload: swap a freshly exported [`ModelBundle`] into a
//! running serve loop at a deterministic packet-sequence boundary,
//! without dropping a single tracked flow.
//!
//! Two sources feed the same epoch machinery:
//!
//! - **Planned** boundaries (`serve run --reload-at SEQ:DIR`): the
//!   bundle is loaded and validated before the first packet, and takes
//!   effect exactly at packet `SEQ`. This is the reproducible form — a
//!   live run replayed with its recorded boundaries is byte-identical.
//! - **Live** watching (`serve run --reload-dir DIR`): a background
//!   thread polls `DIR` for new bundle subdirectories, loads and
//!   validates each candidate fully off the hot path, and hands the
//!   engine an `Arc<ModelBundle>`; the engine binds it to the next
//!   unprocessed packet's sequence number (recorded in the serving
//!   metrics as `reloads.boundaries`, so the run can be replayed as a
//!   planned one).
//!
//! Crash-only semantics: a candidate that fails to load (truncated,
//! corrupt, wrong dims) or is incompatible with the active policy
//! (e.g. routes to `encoder_int8` the candidate lacks) is refused and
//! the old bundle keeps serving. A half-written export is never read:
//! [`ModelBundle::save`] writes every artifact via tmp+rename and
//! `labels.txt` last, so the watcher treats `labels.txt` as the
//! completeness gate.

use crate::bundle::ModelBundle;
use crate::engine::{validate_targets, EpochBundle};
use crate::policy::Policy;
use std::collections::{BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the directory watcher hands the engine.
pub enum LiveMsg {
    /// A fully loaded, self-consistent candidate bundle.
    Bundle(Arc<ModelBundle>, String),
    /// A candidate that failed to load; named so the refusal is
    /// observable (counted + warned) without stopping the stream.
    Refused {
        /// Candidate directory name.
        origin: String,
        /// Load error.
        error: String,
    },
}

/// A reload decision the engine acts on before processing a packet.
pub enum ReloadAction<'a> {
    /// Install `bundle` for every flow retired at `boundary` or later.
    Apply {
        /// Packet sequence number where the new epoch starts.
        boundary: u64,
        /// The new epoch's bundle.
        bundle: EpochBundle<'a>,
        /// Where the bundle came from (directory name).
        origin: String,
    },
    /// Candidate rejected; the current bundle keeps serving.
    Refuse {
        /// Candidate directory name.
        origin: String,
        /// Why it was refused.
        error: String,
    },
}

/// Where reloads come from during a serve run.
pub enum ReloadSource<'a> {
    /// No reloading: one bundle serves the whole stream (epoch 0).
    None,
    /// Boundaries fixed up front, sorted by sequence number.
    Planned(VecDeque<(u64, EpochBundle<'a>, String)>),
    /// Candidates arriving from a watcher thread; each binds to the
    /// next unprocessed packet when it is picked up.
    Live(Receiver<LiveMsg>),
}

impl<'a> ReloadSource<'a> {
    /// A planned source from `(boundary, bundle, origin)` triples
    /// (sorted here; callers may pass any order).
    pub fn planned(mut entries: Vec<(u64, EpochBundle<'a>, String)>) -> ReloadSource<'a> {
        entries.sort_by_key(|(b, _, _)| *b);
        ReloadSource::Planned(entries.into())
    }

    /// Actions due before processing packet `seq` (at end of stream,
    /// call once more with the flush sequence — the packet count — so
    /// boundaries landing exactly there still cover flushed flows).
    /// Planned boundaries at or below `seq` fire in order; live
    /// arrivals are validated against `policy` and bound to `seq`.
    pub(crate) fn poll(&mut self, seq: u64, policy: &Policy) -> Vec<ReloadAction<'a>> {
        let mut actions = Vec::new();
        match self {
            ReloadSource::None => {}
            ReloadSource::Planned(queue) => {
                while queue.front().is_some_and(|(b, _, _)| *b <= seq) {
                    let (boundary, bundle, origin) = queue.pop_front().expect("front checked");
                    actions.push(ReloadAction::Apply { boundary, bundle, origin });
                }
            }
            ReloadSource::Live(rx) => loop {
                match rx.try_recv() {
                    Ok(LiveMsg::Bundle(bundle, origin)) => {
                        match validate_targets(&bundle, policy) {
                            Ok(()) => actions.push(ReloadAction::Apply {
                                boundary: seq,
                                bundle: EpochBundle::Owned(bundle),
                                origin,
                            }),
                            Err(error) => actions.push(ReloadAction::Refuse { origin, error }),
                        }
                    }
                    Ok(LiveMsg::Refused { origin, error }) => {
                        actions.push(ReloadAction::Refuse { origin, error });
                    }
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                }
            },
        }
        actions
    }
}

/// Handle to a live `--reload-dir` watcher thread. Dropping the handle
/// (or calling [`ReloadWatcher::stop`]) stops the thread; the engine
/// only ever sees the channel.
pub struct ReloadWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReloadWatcher {
    /// Watch `dir` for new bundle subdirectories, polling every
    /// `poll_ms`. Subdirectories already present at start are treated
    /// as seen (they are the "current" state, not a reload); each new
    /// one is loaded once — completely off the serve hot path — and
    /// sent as a [`LiveMsg`]. A candidate is only considered once its
    /// `labels.txt` exists ([`ModelBundle::save`] writes it last), so a
    /// half-written export is invisible rather than corrupt.
    pub fn spawn(dir: PathBuf, poll_ms: u64) -> (ReloadWatcher, Receiver<LiveMsg>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || watch_loop(&dir, poll_ms, &tx, &stop2));
        (ReloadWatcher { stop, handle: Some(handle) }, rx)
    }

    /// Stop the watcher thread and wait for it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReloadWatcher {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Candidate subdirectories of `dir` whose `labels.txt` gate exists,
/// sorted by name for a deterministic pickup order.
fn complete_candidates(dir: &std::path::Path) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return found };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() && path.join("labels.txt").is_file() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                found.insert(name.to_string());
            }
        }
    }
    found
}

fn watch_loop(dir: &std::path::Path, poll_ms: u64, tx: &Sender<LiveMsg>, stop: &AtomicBool) {
    // Pre-existing bundles are the baseline, not reload candidates.
    let mut seen = complete_candidates(dir);
    while !stop.load(Ordering::Relaxed) {
        for name in complete_candidates(dir) {
            if !seen.insert(name.clone()) {
                continue;
            }
            let msg = match ModelBundle::load(&dir.join(&name)) {
                Ok(bundle) => LiveMsg::Bundle(Arc::new(bundle), name),
                Err(error) => LiveMsg::Refused { origin: name, error },
            };
            if tx.send(msg).is_err() {
                return; // engine gone; stop watching
            }
        }
        std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
    }
}
