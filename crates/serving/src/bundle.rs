//! Frozen model bundles: the on-disk unit `serve run` loads. A bundle
//! directory holds one frozen artifact per verdict model plus the
//! label table:
//!
//! ```text
//! models/
//!   encoder.frozen        frozen Pcap-Encoder (tokenizer + weights)
//!   encoder_int8.frozen   optional int8-quantised encoder (--quant int8)
//!   head.frozen           frozen MLP classification head over encodings
//!   forest.frozen         fitted random forest  (39 header features)
//!   gbdt.frozen           fitted gradient boosting
//!   knn.frozen            fitted k-NN
//!   labels.txt            class names, one per line, indexed by label id
//! ```
//!
//! Every `.frozen` file is a checksummed [`nn::frozen`] envelope;
//! loading needs no training code and refuses corrupt bytes.

use dataset::record::{PacketRecord, Prepared};
use encoders::model::{EncoderModel, ModelKind};
use encoders::{FrozenInt8Encoder, FrozenPcapEncoder};
use nn::frozen::FrozenArtifact;
use nn::{FrozenMlp, Mlp};
use shallow::features::{extract_features, FeatureConfig, N_FEATURES};
use shallow::forest::{ForestParams, RandomForest};
use shallow::gbdt::{GbdtParams, GradientBoosting};
use shallow::KnnClassifier;
use std::io::Write;
use std::path::Path;

/// Feature configuration baked into serving: IP octets excluded, so
/// verdicts rest on header behaviour rather than the explicit flow-ID
/// shortcut the paper debunks (§6.1 "w/o IP addr").
pub const SERVING_FEATURES: FeatureConfig = FeatureConfig { with_ip: false };

/// Hidden width of the exported classification head.
const HEAD_HIDDEN: usize = 32;

/// A complete set of frozen verdict models.
pub struct ModelBundle {
    /// Frozen packet/flow encoder.
    pub encoder: FrozenPcapEncoder,
    /// Optional int8-quantised encoder (`serve export --quant int8`).
    /// Never substituted for the f32 encoder implicitly — a policy must
    /// route to `encoder_int8` explicitly to use it.
    pub encoder_int8: Option<FrozenInt8Encoder>,
    /// Classification head over encoder outputs.
    pub head: FrozenMlp,
    /// Random forest over the 39 header features.
    pub forest: RandomForest,
    /// Gradient boosting over the 39 header features.
    pub gbdt: GradientBoosting,
    /// k-NN over the 39 header features.
    pub knn: KnnClassifier,
    /// Class names, indexed by label.
    pub labels: Vec<String>,
}

/// Per-packet feature rows for a record set.
pub(crate) fn feature_rows(records: &[PacketRecord]) -> Vec<[f32; N_FEATURES]> {
    records.iter().map(|r| extract_features(r, SERVING_FEATURES)).collect()
}

impl ModelBundle {
    /// Train a bundle on a prepared (labelled) trace. Deliberately
    /// small budgets: `serve export` exists to produce a coherent,
    /// deterministic bundle for serving pipelines and smoke tests, not
    /// to reproduce the paper's accuracy tables.
    pub fn train(prepared: &Prepared, seed: u64) -> ModelBundle {
        assert!(!prepared.records.is_empty(), "empty training trace");
        let n_classes = prepared.classes.len().max(1);
        let mut labels = vec![String::new(); n_classes];
        for c in &prepared.classes {
            if let Some(slot) = labels.get_mut(usize::from(c.class)) {
                *slot = c.name.clone();
            }
        }
        let y: Vec<u16> = prepared.records.iter().map(|r| r.class).collect();
        let rows = feature_rows(&prepared.records);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let forest_params = ForestParams { n_trees: 8, ..Default::default() };
        let forest = RandomForest::fit(&refs, &y, n_classes, forest_params, seed);
        let gbdt_params = GbdtParams { rounds: 4, ..Default::default() };
        let gbdt = GradientBoosting::fit(&refs, &y, n_classes, gbdt_params);
        let knn = KnnClassifier::fit(&refs, &y, 5);

        let model = EncoderModel::new(ModelKind::PcapEncoder, seed);
        let encoder = model.freeze();
        let recs: Vec<&PacketRecord> = prepared.records.iter().collect();
        let x = encoder.encode_packets(&recs);
        let mut head = Mlp::new(&[encoder.dim(), HEAD_HIDDEN, n_classes], seed ^ 0x5eed);
        head.fit(&x, &y, 4, 32, 0.01, seed);
        ModelBundle { encoder, encoder_int8: None, head: head.freeze(), forest, gbdt, knn, labels }
    }

    /// Attach an int8-quantised copy of the f32 encoder, making the
    /// `encoder_int8` policy target servable. Quantisation is
    /// deterministic, so calling this on equal bundles yields equal
    /// artifacts.
    pub fn quantize_encoder(&mut self) {
        self.encoder_int8 = Some(self.encoder.quantize());
    }

    /// Write every artifact under `dir` (created if needed). Each file
    /// lands via the frozen tmp+rename discipline; `labels.txt` uses
    /// the same pattern.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let frozen = |e: nn::frozen::FrozenError| match e {
            nn::frozen::FrozenError::Io(io) => io,
            nn::frozen::FrozenError::Format(msg) => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
            }
        };
        self.encoder.save_frozen(&dir.join("encoder.frozen")).map_err(frozen)?;
        if let Some(q) = &self.encoder_int8 {
            q.save_frozen(&dir.join("encoder_int8.frozen")).map_err(frozen)?;
        }
        self.head.save_frozen(&dir.join("head.frozen")).map_err(frozen)?;
        self.forest.save_frozen(&dir.join("forest.frozen")).map_err(frozen)?;
        self.gbdt.save_frozen(&dir.join("gbdt.frozen")).map_err(frozen)?;
        self.knn.save_frozen(&dir.join("knn.frozen")).map_err(frozen)?;
        let labels_path = dir.join("labels.txt");
        let tmp = dir.join("labels.txt.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        for name in &self.labels {
            writeln!(f, "{name}")?;
        }
        f.flush()?;
        drop(f);
        std::fs::rename(&tmp, &labels_path)
    }

    /// Load a bundle from `dir`. Any missing, corrupt or mutually
    /// inconsistent artifact is an error — a half-usable bundle must
    /// never serve.
    pub fn load(dir: &Path) -> Result<ModelBundle, String> {
        let ctx = |name: &str| {
            let p = dir.join(name);
            move |e: nn::frozen::FrozenError| format!("{}: {e}", p.display())
        };
        let encoder = FrozenPcapEncoder::load_frozen(&dir.join("encoder.frozen"))
            .map_err(ctx("encoder.frozen"))?;
        // Optional artifact: absent is fine (the `encoder_int8` target
        // is then refused up front), but a present-and-corrupt file
        // fails the whole load like any other.
        let int8_path = dir.join("encoder_int8.frozen");
        let encoder_int8 = if int8_path.exists() {
            Some(FrozenInt8Encoder::load_frozen(&int8_path).map_err(ctx("encoder_int8.frozen"))?)
        } else {
            None
        };
        let head = FrozenMlp::load_frozen(&dir.join("head.frozen")).map_err(ctx("head.frozen"))?;
        let forest =
            RandomForest::load_frozen(&dir.join("forest.frozen")).map_err(ctx("forest.frozen"))?;
        let gbdt =
            GradientBoosting::load_frozen(&dir.join("gbdt.frozen")).map_err(ctx("gbdt.frozen"))?;
        let knn = KnnClassifier::load_frozen(&dir.join("knn.frozen")).map_err(ctx("knn.frozen"))?;
        let labels_path = dir.join("labels.txt");
        let text = std::fs::read_to_string(&labels_path)
            .map_err(|e| format!("{}: {e}", labels_path.display()))?;
        let labels: Vec<String> = text.lines().map(str::to_string).collect();
        if labels.is_empty() {
            return Err(format!("{}: no labels", labels_path.display()));
        }
        if head.input_dim() != encoder.dim() {
            return Err(format!(
                "bundle mismatch: head expects {} inputs, encoder emits {}",
                head.input_dim(),
                encoder.dim()
            ));
        }
        if head.n_classes() != labels.len() {
            return Err(format!(
                "bundle mismatch: head has {} classes, labels.txt has {}",
                head.n_classes(),
                labels.len()
            ));
        }
        if let Some(q) = &encoder_int8 {
            if q.kind() != encoder.kind() || q.dim() != encoder.dim() {
                return Err(format!(
                    "bundle mismatch: int8 encoder is {} (dim {}), f32 encoder is {} (dim {})",
                    q.kind().name(),
                    q.dim(),
                    encoder.kind().name(),
                    encoder.dim()
                ));
            }
        }
        Ok(ModelBundle { encoder, encoder_int8, head, forest, gbdt, knn, labels })
    }

    /// Human-readable class name for a label.
    pub fn class_name(&self, label: u16) -> &str {
        self.labels.get(usize::from(label)).map_or("?", String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SynthSpec;

    fn tiny_bundle() -> (ModelBundle, Prepared) {
        let prepared = Prepared::from_trace(&SynthSpec::parse("iscx:4:1").unwrap().trace());
        (ModelBundle::train(&prepared, 42), prepared)
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let (bundle, prepared) = tiny_bundle();
        let dir = std::env::temp_dir().join("debunk-bundle-test");
        std::fs::remove_dir_all(&dir).ok();
        bundle.save(&dir).expect("save");
        let back = ModelBundle::load(&dir).expect("load");
        assert_eq!(back.labels, bundle.labels);
        let recs: Vec<&PacketRecord> = prepared.records.iter().take(8).collect();
        let a = bundle.encoder.encode_packets(&recs);
        let b = back.encoder.encode_packets(&recs);
        assert_eq!(a.data, b.data, "encoder bitwise");
        assert_eq!(bundle.head.predict(&a), back.head.predict(&b), "head bitwise");
        let rows = feature_rows(&prepared.records[..8.min(prepared.records.len())]);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        assert_eq!(bundle.forest.predict(&refs), back.forest.predict(&refs));
        assert_eq!(bundle.gbdt.predict(&refs), back.gbdt.predict(&refs));
        assert_eq!(bundle.knn.predict(&refs), back.knn.predict(&refs));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_fails_the_whole_load() {
        let (bundle, _) = tiny_bundle();
        let dir = std::env::temp_dir().join("debunk-bundle-corrupt-test");
        std::fs::remove_dir_all(&dir).ok();
        bundle.save(&dir).expect("save");
        let path = dir.join("gbdt.frozen");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = match ModelBundle::load(&dir) {
            Ok(_) => panic!("corrupt bundle must refuse"),
            Err(e) => e,
        };
        assert!(err.contains("gbdt.frozen"), "error names the artifact: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_artifact_is_an_error() {
        let (bundle, _) = tiny_bundle();
        let dir = std::env::temp_dir().join("debunk-bundle-missing-test");
        std::fs::remove_dir_all(&dir).ok();
        bundle.save(&dir).expect("save");
        std::fs::remove_file(dir.join("knn.frozen")).unwrap();
        assert!(ModelBundle::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
