//! The serving engine: feeds a replay stream through the flow table,
//! batches retired flows through the policy-selected frozen model, and
//! emits one JSONL verdict per classified flow.
//!
//! Determinism contract: the verdict byte stream is a pure function of
//! the input packet stream, the bundle sequence (initial bundle plus
//! reload boundaries), and the policy. Batch size and worker count
//! change throughput, never output — flows are classified
//! independently (encoder math is row-independent; shallow models are
//! per-packet), and emission order is `(evict_seq, flow_id)`: the
//! sequence number of the packet whose arrival retired the flow,
//! tie-broken by flow id. That is exactly the order the single-worker
//! loop produces naturally, and the order the sharded k-way merge
//! ([`crate::shard`]) reconstructs. All observability goes through the
//! out-of-band [`ObsSink`], never into the verdict stream.
//!
//! Epochs: a model hot-reload takes effect at a packet-sequence
//! boundary `B` — every flow retired at `evict_seq >= B` is classified
//! by the new bundle, everything earlier by the old one, regardless of
//! when the classification batch actually runs. A flow's epoch is the
//! number of boundaries at or below its `evict_seq`, recorded in its
//! verdict line, so a live reload replayed as a planned boundary list
//! reproduces the stream byte-for-byte.

use crate::bundle::{feature_rows, ModelBundle};
use crate::flow::{FlowTable, Ingest, TrackedFlow};
use crate::policy::Policy;
use crate::reload::ReloadSource;
use crate::source::ReplayPacket;
use dataset::record::PacketRecord;
use debunk_core::engine::journal::escape_json;
use debunk_core::obs::{EvictionReason, ObsSink, Value};
use encoders::EncodeScratch;
use nn::{MlpScratch, Tensor};
use std::io::{self, Write};
use std::sync::Arc;
use std::time::Instant;

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Flows classified per model invocation. Affects throughput only;
    /// the verdict stream is identical at any value.
    pub batch: usize,
    /// Seconds of silence before a flow is retired as idle.
    pub idle_timeout: f64,
    /// Worker threads sharding ingest by flow-key hash. Affects
    /// throughput only; the verdict stream is identical at any value
    /// (1 runs inline with no threads).
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { batch: 16, idle_timeout: 15.0, workers: 1 }
    }
}

/// End-of-run counters (also reported out of band via the sink).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Frames ingested.
    pub packets: u64,
    /// Frames with no flow key (non-IP / unparseable), dropped.
    pub non_ip: u64,
    /// Flows opened.
    pub flows: u64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Flows retired without a verdict (unmatched or routed to `drop`).
    pub dropped: u64,
    /// Model hot-reloads applied (epoch boundaries crossed).
    pub reloads: u64,
    /// Reload candidates refused (corrupt or policy-incompatible);
    /// the previous bundle kept serving.
    pub reloads_refused: u64,
}

/// Which model a policy target selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelTarget {
    Encoder,
    EncoderInt8,
    Forest,
    Gbdt,
    Knn,
    Drop,
}

impl ModelTarget {
    fn parse(name: &str) -> Option<ModelTarget> {
        match name {
            "encoder" => Some(ModelTarget::Encoder),
            "encoder_int8" => Some(ModelTarget::EncoderInt8),
            "forest" => Some(ModelTarget::Forest),
            "gbdt" => Some(ModelTarget::Gbdt),
            "knn" => Some(ModelTarget::Knn),
            "drop" => Some(ModelTarget::Drop),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ModelTarget::Encoder => "encoder",
            ModelTarget::EncoderInt8 => "encoder_int8",
            ModelTarget::Forest => "forest",
            ModelTarget::Gbdt => "gbdt",
            ModelTarget::Knn => "knn",
            ModelTarget::Drop => "drop",
        }
    }
}

/// Check every policy target against a bundle: unknown targets and
/// `encoder_int8` without the quantised artifact are refused. Used both
/// at startup (refuse before the first packet) and on every reload
/// candidate (refuse off the hot path, old bundle keeps serving).
pub fn validate_targets(bundle: &ModelBundle, policy: &Policy) -> Result<(), String> {
    for t in policy.targets() {
        match ModelTarget::parse(t) {
            None => {
                return Err(format!(
                    "unknown policy target '{t}' (encoder|encoder_int8|forest|gbdt|knn|drop)"
                ));
            }
            // The quantised encoder is opt-in at export time; a policy
            // asking for it against a bundle without one is refused,
            // never silently downgraded.
            Some(ModelTarget::EncoderInt8) if bundle.encoder_int8.is_none() => {
                return Err(
                    "policy routes to 'encoder_int8' but the bundle has no encoder_int8.frozen \
                     (re-export with --quant int8)"
                        .to_string(),
                );
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Majority label over per-packet predictions; ties break to the
/// smallest label so the vote is total-order deterministic.
fn majority(labels: &[u16]) -> u16 {
    let mut counts: Vec<(u16, usize)> = Vec::new();
    for &l in labels {
        match counts.iter_mut().find(|(c, _)| *c == l) {
            Some((_, n)) => *n += 1,
            None => counts.push((l, 1)),
        }
    }
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(l, _)| l).unwrap_or(0)
}

/// A bundle serving one epoch: the initial bundle is borrowed from the
/// caller; hot-reloaded bundles arrive owned (loaded by the watcher or
/// the planned-boundary list).
#[derive(Clone)]
pub enum EpochBundle<'a> {
    /// The caller's bundle (epoch 0 in the common case).
    Borrowed(&'a ModelBundle),
    /// A reloaded bundle, shared across shard workers.
    Owned(Arc<ModelBundle>),
}

impl<'a> EpochBundle<'a> {
    /// The bundle itself.
    pub fn get(&self) -> &ModelBundle {
        match self {
            EpochBundle::Borrowed(b) => b,
            EpochBundle::Owned(b) => b,
        }
    }
}

/// One flow awaiting classification: routed target plus the sequence
/// number of the packet whose arrival retired it (the first half of its
/// verdict-stream sort key, and what pins its bundle epoch).
pub(crate) struct PendingFlow {
    flow: TrackedFlow,
    target: ModelTarget,
    pub(crate) evict_seq: u64,
}

/// Format one verdict line. `class` is escaped — label tables come from
/// user-supplied `labels.txt`.
fn verdict_line(
    flow: &TrackedFlow,
    target: ModelTarget,
    label: u16,
    class: &str,
    epoch: usize,
) -> String {
    format!(
        "{{\"flow\":{},\"first_ts\":{:.6},\"last_ts\":{:.6},\"packets\":{},\"bytes\":{},\
         \"proto\":{},\"target\":\"{}\",\"label\":{},\"class\":\"{}\",\"epoch\":{}}}\n",
        flow.id,
        flow.first_ts,
        flow.last_ts,
        flow.packets,
        flow.bytes,
        flow.key.protocol,
        target.name(),
        label,
        escape_json(class),
        epoch,
    )
}

/// Reusable buffers threaded through every [`classify_batch`] call of
/// one serve loop: encoder token/pooled scratch, the encoding tensor,
/// MLP activations and the label vectors. After the first few batches
/// the encoder path performs no allocation per verdict batch — the
/// whole batch is one set of kernel dispatches against these buffers.
#[derive(Default)]
struct VerdictScratch {
    enc: EncodeScratch,
    x: Tensor,
    mlp: MlpScratch,
    labels_f32: Vec<u16>,
    labels_int8: Vec<u16>,
}

/// Classify a batch of pending flows (all from one epoch) and emit
/// their verdicts in batch order. Returns verdicts emitted.
fn classify_batch(
    bundle: &ModelBundle,
    epoch: usize,
    batch: &[PendingFlow],
    scratch: &mut VerdictScratch,
    sink: &ObsSink,
    emit: &mut dyn FnMut(u64, u64, String) -> io::Result<()>,
) -> io::Result<u64> {
    // Encoder-targeted flows run as one tensor batch; the math is
    // row-independent so grouping is a throughput choice, not a
    // semantic one. The f32 and int8 encoders batch separately — they
    // are different experiments, never mixed within one encoding.
    let encoder_idx: Vec<usize> =
        (0..batch.len()).filter(|&i| batch[i].target == ModelTarget::Encoder).collect();
    scratch.labels_f32.clear();
    if !encoder_idx.is_empty() {
        let flows: Vec<Vec<&PacketRecord>> =
            encoder_idx.iter().map(|&i| batch[i].flow.records.iter().collect()).collect();
        bundle.encoder.encode_flows_into(&flows, &mut scratch.enc, &mut scratch.x);
        bundle.head.predict_into(&scratch.x, &mut scratch.mlp, &mut scratch.labels_f32);
    }
    let int8_idx: Vec<usize> =
        (0..batch.len()).filter(|&i| batch[i].target == ModelTarget::EncoderInt8).collect();
    scratch.labels_int8.clear();
    if !int8_idx.is_empty() {
        let q = bundle.encoder_int8.as_ref().expect("encoder_int8 target validated up front");
        let flows: Vec<Vec<&PacketRecord>> =
            int8_idx.iter().map(|&i| batch[i].flow.records.iter().collect()).collect();
        q.encode_flows_into(&flows, &mut scratch.enc, &mut scratch.x);
        bundle.head.predict_into(&scratch.x, &mut scratch.mlp, &mut scratch.labels_int8);
    }
    let mut next_encoder = 0usize;
    let mut next_int8 = 0usize;
    let mut emitted = 0u64;
    for p in batch {
        let label = match p.target {
            ModelTarget::Drop => continue,
            ModelTarget::Encoder => {
                let l = scratch.labels_f32[next_encoder];
                next_encoder += 1;
                l
            }
            ModelTarget::EncoderInt8 => {
                let l = scratch.labels_int8[next_int8];
                next_int8 += 1;
                l
            }
            ModelTarget::Forest | ModelTarget::Gbdt | ModelTarget::Knn => {
                let rows = feature_rows(&p.flow.records);
                let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
                let per_packet = match p.target {
                    ModelTarget::Forest => bundle.forest.predict(&refs),
                    ModelTarget::Gbdt => bundle.gbdt.predict(&refs),
                    _ => bundle.knn.predict(&refs),
                };
                majority(&per_packet)
            }
        };
        let line = verdict_line(&p.flow, p.target, label, bundle.class_name(label), epoch);
        emit(p.evict_seq, p.flow.id, line)?;
        emitted += 1;
    }
    sink.record_serving_batch(emitted as usize);
    sink.debug(
        "serve",
        "batch classified",
        &[("flows", Value::U64(batch.len() as u64)), ("verdicts", Value::U64(emitted))],
    );
    Ok(emitted)
}

/// One shard's serve state: a private flow table, pending queue and
/// scratch, plus the epoch list (bundle per boundary). The inline
/// single-worker loop drives exactly one of these; the sharded path
/// ([`crate::shard`]) drives one per worker thread — both produce
/// verdicts keyed `(evict_seq, flow_id)` through the same code, which
/// is what makes worker count a pure throughput knob.
pub(crate) struct Shard<'a> {
    table: FlowTable,
    policy: &'a Policy,
    batch_size: usize,
    pending: Vec<PendingFlow>,
    scratch: VerdictScratch,
    /// Bundle for each epoch; `bundles.len() == boundaries.len() + 1`.
    bundles: Vec<EpochBundle<'a>>,
    /// Sorted packet-sequence boundaries; crossing `boundaries[i]`
    /// enters epoch `i + 1`.
    boundaries: Vec<u64>,
    /// Partial stats: flows / verdicts / dropped (the dispatcher owns
    /// packets / non_ip / reload counts).
    pub(crate) stats: ServeStats,
}

impl<'a> Shard<'a> {
    pub(crate) fn new(
        bundle: EpochBundle<'a>,
        policy: &'a Policy,
        opts: &ServeOptions,
    ) -> io::Result<Shard<'a>> {
        let table = FlowTable::new(opts.idle_timeout)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        Ok(Shard {
            table,
            policy,
            batch_size: opts.batch.max(1),
            pending: Vec::new(),
            scratch: VerdictScratch::default(),
            bundles: vec![bundle],
            boundaries: Vec::new(),
            stats: ServeStats::default(),
        })
    }

    /// Install a reloaded bundle taking effect at packet `boundary`.
    /// Boundaries must arrive in increasing order (the dispatcher emits
    /// them in stream order).
    pub(crate) fn add_epoch(&mut self, boundary: u64, bundle: EpochBundle<'a>) {
        debug_assert!(self.boundaries.last().is_none_or(|&b| b <= boundary));
        self.boundaries.push(boundary);
        self.bundles.push(bundle);
    }

    /// The epoch a flow retired at `evict_seq` belongs to.
    fn epoch_of(&self, evict_seq: u64) -> usize {
        self.boundaries.partition_point(|&b| b <= evict_seq)
    }

    /// Ingest one frame owned by this shard (global packet `seq`).
    pub(crate) fn frame(&mut self, seq: u64, ts: f64, frame: &[u8], sink: &ObsSink) -> Ingest {
        let ingest = self.table.push(seq, ts, frame);
        if ingest == (Ingest::Tracked { opened: true }) {
            self.stats.flows += 1;
            sink.record_serving_flow_opened();
        }
        ingest
    }

    /// Advance time to packet `seq` at `ts` (every shard sees every
    /// packet's clock tick, so eviction timing is shard-invariant),
    /// retiring due flows and classifying any full batches.
    pub(crate) fn tick(
        &mut self,
        seq: u64,
        ts: f64,
        sink: &ObsSink,
        emit: &mut dyn FnMut(u64, u64, String) -> io::Result<()>,
    ) -> io::Result<()> {
        for (flow, reason) in self.table.poll(ts) {
            self.route(flow, reason, seq, sink);
        }
        while self.pending.len() >= self.batch_size {
            let rest = self.pending.split_off(self.batch_size);
            let batch = std::mem::replace(&mut self.pending, rest);
            self.classify(&batch, sink, emit)?;
        }
        Ok(())
    }

    /// End-of-stream: retire everything still tracked (at the flush
    /// sequence, one past the last packet) and classify the remainder.
    pub(crate) fn finish(
        &mut self,
        flush_seq: u64,
        sink: &ObsSink,
        emit: &mut dyn FnMut(u64, u64, String) -> io::Result<()>,
    ) -> io::Result<()> {
        for (flow, reason) in self.table.flush() {
            self.route(flow, reason, flush_seq, sink);
        }
        let pending = std::mem::take(&mut self.pending);
        for batch in pending.chunks(self.batch_size) {
            self.classify(batch, sink, emit)?;
        }
        Ok(())
    }

    /// The smallest `(evict_seq, flow_id)` this shard can still emit:
    /// its first pending flow, or — with nothing pending — any flow
    /// retired by a future packet (`last_seq + 1`). The sharded
    /// merge's watermark.
    pub(crate) fn emit_bound(&self, last_seq: u64) -> (u64, u64) {
        match self.pending.first() {
            Some(p) => (p.evict_seq, p.flow.id),
            None => (last_seq + 1, 0),
        }
    }

    fn route(&mut self, flow: TrackedFlow, reason: EvictionReason, evict_seq: u64, sink: &ObsSink) {
        sink.record_serving_eviction(reason);
        match self.policy.match_flow(&flow.key).and_then(|r| ModelTarget::parse(&r.target)) {
            Some(ModelTarget::Drop) | None => self.stats.dropped += 1,
            Some(target) => self.pending.push(PendingFlow { flow, target, evict_seq }),
        }
    }

    /// Classify one batch, splitting it into consecutive same-epoch
    /// runs (epochs are monotone along the pending queue, so runs are
    /// contiguous) — each run goes to its own epoch's bundle.
    fn classify(
        &mut self,
        batch: &[PendingFlow],
        sink: &ObsSink,
        emit: &mut dyn FnMut(u64, u64, String) -> io::Result<()>,
    ) -> io::Result<()> {
        let mut start = 0;
        while start < batch.len() {
            let epoch = self.epoch_of(batch[start].evict_seq);
            let mut end = start + 1;
            while end < batch.len() && self.epoch_of(batch[end].evict_seq) == epoch {
                end += 1;
            }
            self.stats.verdicts += classify_batch(
                self.bundles[epoch].get(),
                epoch,
                &batch[start..end],
                &mut self.scratch,
                sink,
                emit,
            )?;
            start = end;
        }
        Ok(())
    }
}

/// Run the full serve loop over a replay stream: validate the policy
/// against the initial bundle, then drive one inline shard
/// (`opts.workers <= 1`) or the flow-hash-sharded worker pool
/// ([`crate::shard::serve_sharded`]), applying reloads from `reload`
/// at deterministic packet boundaries.
///
/// `packets` is any replay source: a borrowed `&[ReplayPacket]` (the
/// in-memory benches), or an owning iterator such as the shard-dir
/// stream — the engine holds only the flow table, never the replay, so
/// an out-of-core source serves in bounded memory.
pub fn serve<I>(
    bundle: &ModelBundle,
    policy: &Policy,
    packets: I,
    opts: &ServeOptions,
    reload: ReloadSource<'_>,
    out: &mut (dyn Write + Send),
    sink: &ObsSink,
) -> io::Result<ServeStats>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<ReplayPacket>,
{
    validate_targets(bundle, policy).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    if let ReloadSource::Planned(boundaries) = &reload {
        for (_, b, _) in boundaries {
            validate_targets(b.get(), policy)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
    }
    if opts.workers > 1 {
        return crate::shard::serve_sharded(bundle, policy, packets, opts, reload, out, sink);
    }
    serve_inline(bundle, policy, packets, opts, reload, out, sink)
}

/// Fold reload decisions into the inline shard's epoch list and the
/// run stats (the sharded dispatcher broadcasts the same decisions as
/// events instead — see `crate::shard`).
pub(crate) fn apply_reload_actions<'a>(
    actions: Vec<crate::reload::ReloadAction<'a>>,
    shard: &mut Shard<'a>,
    stats: &mut ServeStats,
    sink: &ObsSink,
) {
    for action in actions {
        match action {
            crate::reload::ReloadAction::Apply { boundary, bundle, origin } => {
                shard.add_epoch(boundary, bundle);
                stats.reloads += 1;
                sink.record_serving_reload(boundary);
                sink.info(
                    "serve",
                    "bundle reloaded",
                    &[("boundary", Value::U64(boundary)), ("origin", Value::Str(origin))],
                );
            }
            crate::reload::ReloadAction::Refuse { origin, error } => {
                stats.reloads_refused += 1;
                sink.record_serving_reload_refused();
                sink.warn(
                    "serve",
                    "reload candidate refused; old bundle keeps serving",
                    &[("origin", Value::Str(origin)), ("error", Value::Str(error))],
                );
            }
        }
    }
}

/// The single-worker loop: one [`Shard`] driven on the caller thread,
/// verdicts written straight to `out` (they fall out already in
/// `(evict_seq, flow_id)` order).
fn serve_inline<I>(
    bundle: &ModelBundle,
    policy: &Policy,
    packets: I,
    opts: &ServeOptions,
    reload: ReloadSource<'_>,
    out: &mut (dyn Write + Send),
    sink: &ObsSink,
) -> io::Result<ServeStats>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<ReplayPacket>,
{
    let mut shard = Shard::new(EpochBundle::Borrowed(bundle), policy, opts)?;
    let mut reload = reload;
    let mut stats = ServeStats::default();
    let mut ingest_secs = 0.0f64;
    let mut classify_secs = 0.0f64;
    let t_run = Instant::now();

    let mut seq = 0u64;
    for p in packets {
        let p = std::borrow::Borrow::borrow(&p);
        // Reloads bind to the next unprocessed packet: candidates are
        // validated off the hot path (planned: before the stream; live:
        // by the watcher + target check here), and a refused candidate
        // never perturbs the stream.
        apply_reload_actions(reload.poll(seq, policy), &mut shard, &mut stats, sink);
        let t0 = Instant::now();
        stats.packets += 1;
        if shard.frame(seq, p.ts, &p.frame, sink) == Ingest::NonIp {
            stats.non_ip += 1;
        }
        ingest_secs += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        shard.tick(seq, p.ts, sink, &mut |_, _, line| out.write_all(line.as_bytes()))?;
        classify_secs += t1.elapsed().as_secs_f64();
        seq += 1;
    }
    // Boundaries landing exactly on the flush sequence (the packet
    // count) still cover the flushed flows; anything later never fires.
    apply_reload_actions(reload.poll(seq, policy), &mut shard, &mut stats, sink);
    let t1 = Instant::now();
    shard.finish(seq, sink, &mut |_, _, line| out.write_all(line.as_bytes()))?;
    classify_secs += t1.elapsed().as_secs_f64();
    out.flush()?;

    stats.flows = shard.stats.flows;
    stats.verdicts = shard.stats.verdicts;
    stats.dropped = shard.stats.dropped;
    sink.record_serving_packets(stats.packets, stats.non_ip);
    sink.record_serving_shard(0, stats.flows, stats.verdicts, t_run.elapsed().as_secs_f64());
    sink.add_stage("serve:ingest", ingest_secs);
    sink.add_stage("serve:classify", classify_secs);
    sink.debug(
        "serve",
        "replay complete",
        &[
            ("packets", Value::U64(stats.packets)),
            ("flows", Value::U64(stats.flows)),
            ("verdicts", Value::U64(stats.verdicts)),
            ("dropped", Value::U64(stats.dropped)),
            ("reloads", Value::U64(stats.reloads)),
        ],
    );
    Ok(stats)
}

/// Back-compat single-bundle entry point: no reload source, worker
/// count from `opts` (historically 1).
pub fn serve_stream<I>(
    bundle: &ModelBundle,
    policy: &Policy,
    packets: I,
    opts: &ServeOptions,
    out: &mut (dyn Write + Send),
    sink: &ObsSink,
) -> io::Result<ServeStats>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<ReplayPacket>,
{
    serve(bundle, policy, packets, opts, ReloadSource::None, out, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SynthSpec;
    use dataset::record::Prepared;
    use debunk_core::obs::LogFormat;

    fn tiny() -> (ModelBundle, Vec<ReplayPacket>) {
        let spec = SynthSpec::parse("iscx:4:1").unwrap();
        let bundle = ModelBundle::train(&Prepared::from_trace(&spec.trace()), 42);
        (bundle, SynthSpec::parse("iscx:9:1").unwrap().replay())
    }

    fn run(
        bundle: &ModelBundle,
        packets: &[ReplayPacket],
        policy: &Policy,
        batch: usize,
    ) -> (Vec<u8>, ServeStats) {
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let opts = ServeOptions { batch, ..Default::default() };
        let stats = serve_stream(bundle, policy, packets, &opts, &mut out, &sink).unwrap();
        (out, stats)
    }

    #[test]
    fn majority_breaks_ties_to_smallest_label() {
        assert_eq!(majority(&[3, 1, 3, 1]), 1);
        assert_eq!(majority(&[2, 2, 5]), 2);
        assert_eq!(majority(&[]), 0);
        assert_eq!(majority(&[7]), 7);
    }

    #[test]
    fn verdicts_are_batch_size_invariant() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("forest");
        let (a, sa) = run(&bundle, &packets, &policy, 1);
        let (b, sb) = run(&bundle, &packets, &policy, 7);
        let (c, sc) = run(&bundle, &packets, &policy, 4096);
        assert!(!a.is_empty());
        assert_eq!(a, b, "batch 1 vs 7");
        assert_eq!(a, c, "batch 1 vs 4096");
        assert_eq!(sa, sb);
        assert_eq!(sa, sc);
    }

    #[test]
    fn encoder_verdicts_are_batch_size_invariant() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("encoder");
        let (a, sa) = run(&bundle, &packets, &policy, 1);
        let (b, sb) = run(&bundle, &packets, &policy, 32);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(sa.verdicts, sa.flows, "route_all classifies every flow");
    }

    #[test]
    fn int8_encoder_serves_and_is_batch_size_invariant() {
        let (mut bundle, packets) = tiny();
        bundle.quantize_encoder();
        let policy = Policy::route_all("encoder_int8");
        let (a, sa) = run(&bundle, &packets, &policy, 1);
        let (b, sb) = run(&bundle, &packets, &policy, 32);
        assert!(!a.is_empty());
        assert_eq!(a, b, "int8 verdicts are batch-size invariant");
        assert_eq!(sa, sb);
        assert_eq!(sa.verdicts, sa.flows);
        for line in String::from_utf8(a).unwrap().lines() {
            assert!(line.contains("\"target\":\"encoder_int8\""), "line: {line}");
        }
    }

    #[test]
    fn int8_target_without_artifact_is_refused_up_front() {
        let (bundle, packets) = tiny();
        assert!(bundle.encoder_int8.is_none());
        let policy = Policy::route_all("encoder_int8");
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let err =
            serve_stream(&bundle, &policy, &packets, &ServeOptions::default(), &mut out, &sink)
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("--quant int8"), "{err}");
        assert!(out.is_empty(), "refused before any verdict");
    }

    #[test]
    fn bad_idle_timeout_is_refused_at_startup() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("forest");
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let opts = ServeOptions { idle_timeout: 0.0, ..Default::default() };
        let err = serve_stream(&bundle, &policy, &packets, &opts, &mut out, &sink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("idle timeout"), "{err}");
        assert!(out.is_empty());
    }

    #[test]
    fn replay_is_reproducible() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("gbdt");
        let (a, _) = run(&bundle, &packets, &policy, 16);
        let (b, _) = run(&bundle, &packets, &policy, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn drop_target_and_unmatched_flows_emit_nothing() {
        let (bundle, packets) = tiny();
        let (out, stats) = run(&bundle, &packets, &Policy::route_all("drop"), 16);
        assert!(out.is_empty());
        assert_eq!(stats.verdicts, 0);
        assert_eq!(stats.dropped, stats.flows);
        let empty = Policy::parse("").unwrap();
        let (out2, stats2) = run(&bundle, &packets, &empty, 16);
        assert!(out2.is_empty());
        assert_eq!(stats2.dropped, stats2.flows);
    }

    #[test]
    fn unknown_target_is_refused_up_front() {
        let (bundle, packets) = tiny();
        let policy = Policy::parse("* -> xgboost").unwrap();
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let err =
            serve_stream(&bundle, &policy, &packets, &ServeOptions::default(), &mut out, &sink)
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "refused before any verdict");
    }

    #[test]
    fn verdict_lines_are_well_formed_jsonl() {
        let (bundle, packets) = tiny();
        let policy = Policy::parse("*:tcp -> knn\n*:udp -> forest\ndefault -> encoder").unwrap();
        let (out, stats) = run(&bundle, &packets, &policy, 16);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, stats.verdicts);
        for line in lines {
            assert!(line.starts_with("{\"flow\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"target\":\""), "line: {line}");
            assert!(line.contains("\"class\":\""), "line: {line}");
            assert!(line.contains("\"epoch\":"), "line: {line}");
        }
    }

    #[test]
    fn planned_reload_splits_epochs_without_dropping_flows() {
        let (bundle, packets) = tiny();
        let b2 = ModelBundle::train(
            &Prepared::from_trace(&SynthSpec::parse("iscx:5:1").unwrap().trace()),
            43,
        );
        let policy = Policy::route_all("forest");
        let boundary = (packets.len() / 2) as u64;
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let stats = serve(
            &bundle,
            &policy,
            &packets,
            &ServeOptions::default(),
            ReloadSource::planned(vec![(boundary, EpochBundle::Borrowed(&b2), "b2".to_string())]),
            &mut out,
            &sink,
        )
        .unwrap();
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.verdicts, stats.flows, "no flow dropped across the boundary");
        let text = String::from_utf8(out).unwrap();
        let epochs: Vec<usize> = text
            .lines()
            .map(|l| {
                let tail = l.split("\"epoch\":").nth(1).unwrap();
                tail.trim_end_matches('}').parse().unwrap()
            })
            .collect();
        assert!(epochs.contains(&0), "some flows classified pre-boundary");
        assert!(epochs.contains(&1), "some flows classified post-boundary");
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "epochs monotone in verdict order");
    }

    #[test]
    fn planned_reload_is_batch_size_invariant() {
        let (bundle, packets) = tiny();
        let b2 = ModelBundle::train(
            &Prepared::from_trace(&SynthSpec::parse("iscx:5:1").unwrap().trace()),
            43,
        );
        let policy = Policy::route_all("gbdt");
        let boundary = (packets.len() / 3) as u64;
        let sink = ObsSink::stderr(LogFormat::Text);
        let run_with = |batch: usize| {
            let mut out = Vec::new();
            serve(
                &bundle,
                &policy,
                &packets,
                &ServeOptions { batch, ..Default::default() },
                ReloadSource::planned(vec![(
                    boundary,
                    EpochBundle::Borrowed(&b2),
                    "b2".to_string(),
                )]),
                &mut out,
                &sink,
            )
            .unwrap();
            out
        };
        let a = run_with(1);
        let b = run_with(64);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }
}
