//! The serving engine: feeds a replay stream through the flow table,
//! batches retired flows through the policy-selected frozen model, and
//! emits one JSONL verdict per classified flow.
//!
//! Determinism contract: the verdict byte stream is a pure function of
//! the input packet stream, the bundle, and the policy. Batch size
//! changes throughput, never output — flows are classified
//! independently (encoder math is row-independent; shallow models are
//! per-packet), and emission order is the deterministic eviction order
//! of [`crate::flow::FlowTable`]. All observability goes through the
//! out-of-band [`ObsSink`], never into the verdict stream.

use crate::bundle::{feature_rows, ModelBundle};
use crate::flow::{FlowTable, Ingest, TrackedFlow};
use crate::policy::Policy;
use crate::source::ReplayPacket;
use dataset::record::PacketRecord;
use debunk_core::engine::journal::escape_json;
use debunk_core::obs::{EvictionReason, ObsSink, Value};
use encoders::EncodeScratch;
use nn::{MlpScratch, Tensor};
use std::io::{self, Write};
use std::time::Instant;

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Flows classified per model invocation. Affects throughput only;
    /// the verdict stream is identical at any value.
    pub batch: usize,
    /// Seconds of silence before a flow is retired as idle.
    pub idle_timeout: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { batch: 16, idle_timeout: 15.0 }
    }
}

/// End-of-run counters (also reported out of band via the sink).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Frames ingested.
    pub packets: u64,
    /// Frames with no flow key (non-IP / unparseable), dropped.
    pub non_ip: u64,
    /// Flows opened.
    pub flows: u64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Flows retired without a verdict (unmatched or routed to `drop`).
    pub dropped: u64,
}

/// Which model a policy target selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelTarget {
    Encoder,
    EncoderInt8,
    Forest,
    Gbdt,
    Knn,
    Drop,
}

impl ModelTarget {
    fn parse(name: &str) -> Option<ModelTarget> {
        match name {
            "encoder" => Some(ModelTarget::Encoder),
            "encoder_int8" => Some(ModelTarget::EncoderInt8),
            "forest" => Some(ModelTarget::Forest),
            "gbdt" => Some(ModelTarget::Gbdt),
            "knn" => Some(ModelTarget::Knn),
            "drop" => Some(ModelTarget::Drop),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ModelTarget::Encoder => "encoder",
            ModelTarget::EncoderInt8 => "encoder_int8",
            ModelTarget::Forest => "forest",
            ModelTarget::Gbdt => "gbdt",
            ModelTarget::Knn => "knn",
            ModelTarget::Drop => "drop",
        }
    }
}

/// Majority label over per-packet predictions; ties break to the
/// smallest label so the vote is total-order deterministic.
fn majority(labels: &[u16]) -> u16 {
    let mut counts: Vec<(u16, usize)> = Vec::new();
    for &l in labels {
        match counts.iter_mut().find(|(c, _)| *c == l) {
            Some((_, n)) => *n += 1,
            None => counts.push((l, 1)),
        }
    }
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(l, _)| l).unwrap_or(0)
}

/// One flow awaiting classification, with its routed target.
struct PendingFlow {
    flow: TrackedFlow,
    target: ModelTarget,
}

/// Format one verdict line. `class` is escaped — label tables come from
/// user-supplied `labels.txt`.
fn verdict_line(flow: &TrackedFlow, target: ModelTarget, label: u16, class: &str) -> String {
    format!(
        "{{\"flow\":{},\"first_ts\":{:.6},\"last_ts\":{:.6},\"packets\":{},\"bytes\":{},\
         \"proto\":{},\"target\":\"{}\",\"label\":{},\"class\":\"{}\"}}\n",
        flow.id,
        flow.first_ts,
        flow.last_ts,
        flow.packets,
        flow.bytes,
        flow.key.protocol,
        target.name(),
        label,
        escape_json(class),
    )
}

/// Reusable buffers threaded through every [`classify_batch`] call of
/// one serve loop: encoder token/pooled scratch, the encoding tensor,
/// MLP activations and the label vectors. After the first few batches
/// the encoder path performs no allocation per verdict batch — the
/// whole batch is one set of kernel dispatches against these buffers.
#[derive(Default)]
struct VerdictScratch {
    enc: EncodeScratch,
    x: Tensor,
    mlp: MlpScratch,
    labels_f32: Vec<u16>,
    labels_int8: Vec<u16>,
}

/// Classify a batch of pending flows and write their verdicts in
/// batch order (which is eviction order). Returns verdicts emitted.
fn classify_batch(
    bundle: &ModelBundle,
    batch: &[PendingFlow],
    scratch: &mut VerdictScratch,
    out: &mut dyn Write,
    sink: &ObsSink,
) -> io::Result<u64> {
    // Encoder-targeted flows run as one tensor batch; the math is
    // row-independent so grouping is a throughput choice, not a
    // semantic one. The f32 and int8 encoders batch separately — they
    // are different experiments, never mixed within one encoding.
    let encoder_idx: Vec<usize> =
        (0..batch.len()).filter(|&i| batch[i].target == ModelTarget::Encoder).collect();
    scratch.labels_f32.clear();
    if !encoder_idx.is_empty() {
        let flows: Vec<Vec<&PacketRecord>> =
            encoder_idx.iter().map(|&i| batch[i].flow.records.iter().collect()).collect();
        bundle.encoder.encode_flows_into(&flows, &mut scratch.enc, &mut scratch.x);
        bundle.head.predict_into(&scratch.x, &mut scratch.mlp, &mut scratch.labels_f32);
    }
    let int8_idx: Vec<usize> =
        (0..batch.len()).filter(|&i| batch[i].target == ModelTarget::EncoderInt8).collect();
    scratch.labels_int8.clear();
    if !int8_idx.is_empty() {
        let q = bundle.encoder_int8.as_ref().expect("encoder_int8 target validated up front");
        let flows: Vec<Vec<&PacketRecord>> =
            int8_idx.iter().map(|&i| batch[i].flow.records.iter().collect()).collect();
        q.encode_flows_into(&flows, &mut scratch.enc, &mut scratch.x);
        bundle.head.predict_into(&scratch.x, &mut scratch.mlp, &mut scratch.labels_int8);
    }
    let mut next_encoder = 0usize;
    let mut next_int8 = 0usize;
    let mut emitted = 0u64;
    for p in batch {
        let label = match p.target {
            ModelTarget::Drop => continue,
            ModelTarget::Encoder => {
                let l = scratch.labels_f32[next_encoder];
                next_encoder += 1;
                l
            }
            ModelTarget::EncoderInt8 => {
                let l = scratch.labels_int8[next_int8];
                next_int8 += 1;
                l
            }
            ModelTarget::Forest | ModelTarget::Gbdt | ModelTarget::Knn => {
                let rows = feature_rows(&p.flow.records);
                let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
                let per_packet = match p.target {
                    ModelTarget::Forest => bundle.forest.predict(&refs),
                    ModelTarget::Gbdt => bundle.gbdt.predict(&refs),
                    _ => bundle.knn.predict(&refs),
                };
                majority(&per_packet)
            }
        };
        let line = verdict_line(&p.flow, p.target, label, bundle.class_name(label));
        out.write_all(line.as_bytes())?;
        emitted += 1;
    }
    sink.record_serving_batch(emitted as usize);
    sink.debug(
        "serve",
        "batch classified",
        &[("flows", Value::U64(batch.len() as u64)), ("verdicts", Value::U64(emitted))],
    );
    Ok(emitted)
}

/// Run the full serve loop over a replay stream.
///
/// Every policy target must be one of `encoder`, `forest`, `gbdt`,
/// `knn`, `drop` — an unknown target is refused before the first packet
/// rather than mid-stream.
///
/// `packets` is any replay source: a borrowed `&[ReplayPacket]` (the
/// in-memory benches), or an owning iterator such as the shard-dir
/// stream — the engine holds only the flow table, never the replay, so
/// an out-of-core source serves in bounded memory.
pub fn serve_stream<I>(
    bundle: &ModelBundle,
    policy: &Policy,
    packets: I,
    opts: &ServeOptions,
    out: &mut dyn Write,
    sink: &ObsSink,
) -> io::Result<ServeStats>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<ReplayPacket>,
{
    for t in policy.targets() {
        match ModelTarget::parse(t) {
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "unknown policy target '{t}' (encoder|encoder_int8|forest|gbdt|knn|drop)"
                    ),
                ));
            }
            // The quantised encoder is opt-in at export time; a policy
            // asking for it against a bundle without one is refused
            // before the first packet, never silently downgraded.
            Some(ModelTarget::EncoderInt8) if bundle.encoder_int8.is_none() => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "policy routes to 'encoder_int8' but the bundle has no encoder_int8.frozen \
                     (re-export with --quant int8)",
                ));
            }
            Some(_) => {}
        }
    }
    let batch_size = opts.batch.max(1);
    let mut table = FlowTable::new(opts.idle_timeout);
    let mut stats = ServeStats::default();
    let mut pending: Vec<PendingFlow> = Vec::new();
    let mut scratch = VerdictScratch::default();
    let mut ingest_secs = 0.0f64;
    let mut classify_secs = 0.0f64;

    // Route one retired flow; record its eviction and either queue it
    // for classification or count the drop.
    let route = |flow: TrackedFlow,
                 reason: EvictionReason,
                 pending: &mut Vec<PendingFlow>,
                 stats: &mut ServeStats| {
        sink.record_serving_eviction(reason);
        match policy.match_flow(&flow.key).and_then(|r| ModelTarget::parse(&r.target)) {
            Some(ModelTarget::Drop) | None => stats.dropped += 1,
            Some(target) => pending.push(PendingFlow { flow, target }),
        }
    };

    for p in packets {
        let p = std::borrow::Borrow::borrow(&p);
        let t0 = Instant::now();
        stats.packets += 1;
        match table.push(p.ts, &p.frame) {
            Ingest::NonIp => stats.non_ip += 1,
            Ingest::Tracked { opened } => {
                if opened {
                    stats.flows += 1;
                    sink.record_serving_flow_opened();
                }
            }
        }
        for (flow, reason) in table.poll(p.ts) {
            route(flow, reason, &mut pending, &mut stats);
        }
        ingest_secs += t0.elapsed().as_secs_f64();
        while pending.len() >= batch_size {
            let t1 = Instant::now();
            let rest = pending.split_off(batch_size);
            let batch = std::mem::replace(&mut pending, rest);
            stats.verdicts += classify_batch(bundle, &batch, &mut scratch, out, sink)?;
            classify_secs += t1.elapsed().as_secs_f64();
        }
    }
    for (flow, reason) in table.flush() {
        route(flow, reason, &mut pending, &mut stats);
    }
    for batch in pending.chunks(batch_size) {
        let t1 = Instant::now();
        stats.verdicts += classify_batch(bundle, batch, &mut scratch, out, sink)?;
        classify_secs += t1.elapsed().as_secs_f64();
    }
    out.flush()?;

    sink.record_serving_packets(stats.packets, stats.non_ip);
    sink.add_stage("serve:ingest", ingest_secs);
    sink.add_stage("serve:classify", classify_secs);
    sink.debug(
        "serve",
        "replay complete",
        &[
            ("packets", Value::U64(stats.packets)),
            ("flows", Value::U64(stats.flows)),
            ("verdicts", Value::U64(stats.verdicts)),
            ("dropped", Value::U64(stats.dropped)),
        ],
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SynthSpec;
    use dataset::record::Prepared;
    use debunk_core::obs::LogFormat;

    fn tiny() -> (ModelBundle, Vec<ReplayPacket>) {
        let spec = SynthSpec::parse("iscx:4:1").unwrap();
        let bundle = ModelBundle::train(&Prepared::from_trace(&spec.trace()), 42);
        (bundle, SynthSpec::parse("iscx:9:1").unwrap().replay())
    }

    fn run(
        bundle: &ModelBundle,
        packets: &[ReplayPacket],
        policy: &Policy,
        batch: usize,
    ) -> (Vec<u8>, ServeStats) {
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let opts = ServeOptions { batch, ..Default::default() };
        let stats = serve_stream(bundle, policy, packets, &opts, &mut out, &sink).unwrap();
        (out, stats)
    }

    #[test]
    fn majority_breaks_ties_to_smallest_label() {
        assert_eq!(majority(&[3, 1, 3, 1]), 1);
        assert_eq!(majority(&[2, 2, 5]), 2);
        assert_eq!(majority(&[]), 0);
        assert_eq!(majority(&[7]), 7);
    }

    #[test]
    fn verdicts_are_batch_size_invariant() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("forest");
        let (a, sa) = run(&bundle, &packets, &policy, 1);
        let (b, sb) = run(&bundle, &packets, &policy, 7);
        let (c, sc) = run(&bundle, &packets, &policy, 4096);
        assert!(!a.is_empty());
        assert_eq!(a, b, "batch 1 vs 7");
        assert_eq!(a, c, "batch 1 vs 4096");
        assert_eq!(sa, sb);
        assert_eq!(sa, sc);
    }

    #[test]
    fn encoder_verdicts_are_batch_size_invariant() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("encoder");
        let (a, sa) = run(&bundle, &packets, &policy, 1);
        let (b, sb) = run(&bundle, &packets, &policy, 32);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(sa.verdicts, sa.flows, "route_all classifies every flow");
    }

    #[test]
    fn int8_encoder_serves_and_is_batch_size_invariant() {
        let (mut bundle, packets) = tiny();
        bundle.quantize_encoder();
        let policy = Policy::route_all("encoder_int8");
        let (a, sa) = run(&bundle, &packets, &policy, 1);
        let (b, sb) = run(&bundle, &packets, &policy, 32);
        assert!(!a.is_empty());
        assert_eq!(a, b, "int8 verdicts are batch-size invariant");
        assert_eq!(sa, sb);
        assert_eq!(sa.verdicts, sa.flows);
        for line in String::from_utf8(a).unwrap().lines() {
            assert!(line.contains("\"target\":\"encoder_int8\""), "line: {line}");
        }
    }

    #[test]
    fn int8_target_without_artifact_is_refused_up_front() {
        let (bundle, packets) = tiny();
        assert!(bundle.encoder_int8.is_none());
        let policy = Policy::route_all("encoder_int8");
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let err =
            serve_stream(&bundle, &policy, &packets, &ServeOptions::default(), &mut out, &sink)
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("--quant int8"), "{err}");
        assert!(out.is_empty(), "refused before any verdict");
    }

    #[test]
    fn replay_is_reproducible() {
        let (bundle, packets) = tiny();
        let policy = Policy::route_all("gbdt");
        let (a, _) = run(&bundle, &packets, &policy, 16);
        let (b, _) = run(&bundle, &packets, &policy, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn drop_target_and_unmatched_flows_emit_nothing() {
        let (bundle, packets) = tiny();
        let (out, stats) = run(&bundle, &packets, &Policy::route_all("drop"), 16);
        assert!(out.is_empty());
        assert_eq!(stats.verdicts, 0);
        assert_eq!(stats.dropped, stats.flows);
        let empty = Policy::parse("").unwrap();
        let (out2, stats2) = run(&bundle, &packets, &empty, 16);
        assert!(out2.is_empty());
        assert_eq!(stats2.dropped, stats2.flows);
    }

    #[test]
    fn unknown_target_is_refused_up_front() {
        let (bundle, packets) = tiny();
        let policy = Policy::parse("* -> xgboost").unwrap();
        let sink = ObsSink::stderr(LogFormat::Text);
        let mut out = Vec::new();
        let err =
            serve_stream(&bundle, &policy, &packets, &ServeOptions::default(), &mut out, &sink)
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "refused before any verdict");
    }

    #[test]
    fn verdict_lines_are_well_formed_jsonl() {
        let (bundle, packets) = tiny();
        let policy = Policy::parse("*:tcp -> knn\n*:udp -> forest\ndefault -> encoder").unwrap();
        let (out, stats) = run(&bundle, &packets, &policy, 16);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, stats.verdicts);
        for line in lines {
            assert!(line.starts_with("{\"flow\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"target\":\""), "line: {line}");
            assert!(line.contains("\"class\":\""), "line: {line}");
        }
    }
}
