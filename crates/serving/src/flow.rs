//! Conntrack-backed flow table: groups the raw packet stream into
//! bidirectional flows, tracks TCP lifecycle per flow, and retires
//! flows deterministically (teardown, idle timeout, final flush).
//!
//! Determinism contract: eviction depends only on packet contents and
//! timestamps — never on wall clock, hash-map iteration order or batch
//! size — so an identical replay retires identical flows in an
//! identical order.

use dataset::record::PacketRecord;
use debunk_core::obs::EvictionReason;
use net_packet::conntrack::{ConnTracker, TcpState};
use net_packet::frame::{FlowKey, IpInfo, ParsedFrame};
use std::collections::HashMap;

/// Packets stored per flow for classification. Later packets still
/// update counters and TCP state but are not retained — classification
/// models look at the head of a flow (App. A.2), and an unbounded
/// buffer would let one long flow exhaust memory.
pub const MAX_STORED_PACKETS: usize = 32;

/// How long after a TCP close the flow lingers so trailing ACKs join
/// the same flow instead of opening a spurious one-packet successor.
const CLOSE_LINGER_SECS: f64 = 1.0;

/// One endpoint as (address, port), address widened to u128 so v4 and
/// v6 share a representation (matching [`FlowKey`]).
fn endpoint(parsed: &ParsedFrame) -> (u128, u16) {
    let ip = match parsed.ip {
        IpInfo::V4 { src, .. } => u128::from(src.to_u32()),
        IpInfo::V6 { src, .. } => u128::from_be_bytes(src.0),
    };
    (ip, parsed.transport.src_port())
}

/// A flow being assembled from live packets.
#[derive(Debug, Clone)]
pub struct TrackedFlow {
    /// First-seen order (also the verdict stream's `flow` field).
    pub id: u64,
    /// Canonical bidirectional 5-tuple.
    pub key: FlowKey,
    /// TCP lifecycle (untouched for UDP flows).
    pub conn: ConnTracker,
    /// The first [`MAX_STORED_PACKETS`] packets, as records the
    /// feature extractors and encoders consume directly.
    pub records: Vec<PacketRecord>,
    /// Timestamp of the first packet.
    pub first_ts: f64,
    /// Timestamp of the most recent packet.
    pub last_ts: f64,
    /// Total packets seen (may exceed `records.len()`).
    pub packets: u64,
    /// Total frame bytes seen.
    pub bytes: u64,
    /// (address, port) of the flow opener — defines `from_client`.
    client: (u128, u16),
}

/// Outcome of feeding one frame to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Frame joined a flow (true if it opened a new one).
    Tracked {
        /// Whether this packet opened the flow.
        opened: bool,
    },
    /// Frame has no flow key (non-IP, unparseable) and was dropped.
    NonIp,
}

/// The serving flow table.
pub struct FlowTable {
    flows: HashMap<FlowKey, TrackedFlow>,
    next_id: u64,
    idle_timeout: f64,
}

impl FlowTable {
    /// A table retiring flows after `idle_timeout` seconds of silence.
    pub fn new(idle_timeout: f64) -> FlowTable {
        FlowTable { flows: HashMap::new(), next_id: 0, idle_timeout: idle_timeout.max(0.001) }
    }

    /// Flows currently tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow is in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Feed one frame. Parsing failures and keyless traffic are
    /// reported, never panicked on — capture files contain garbage.
    pub fn push(&mut self, ts: f64, frame: &[u8]) -> Ingest {
        let Ok(parsed) = ParsedFrame::parse(frame) else {
            return Ingest::NonIp;
        };
        let Some(key) = parsed.flow_key() else {
            return Ingest::NonIp;
        };
        let src = endpoint(&parsed);
        let mut opened = false;
        let flow = self.flows.entry(key).or_insert_with(|| {
            opened = true;
            let id = self.next_id;
            self.next_id += 1;
            TrackedFlow {
                id,
                key,
                conn: ConnTracker::new(),
                records: Vec::new(),
                first_ts: ts,
                last_ts: ts,
                packets: 0,
                bytes: 0,
                client: src,
            }
        });
        let from_client = src == flow.client;
        flow.conn.push(&parsed, ts, from_client);
        flow.last_ts = ts;
        flow.packets += 1;
        flow.bytes += frame.len() as u64;
        if flow.records.len() < MAX_STORED_PACKETS {
            flow.records.push(PacketRecord {
                ts,
                frame: frame.to_vec(),
                parsed,
                class: 0, // unknown online; the classifier fills the verdict
                flow_id: flow.id as u32,
                from_client,
            });
        }
        Ingest::Tracked { opened }
    }

    /// Retire every flow that is done as of `now`: TCP-closed flows
    /// past their linger, and any flow idle beyond the timeout.
    /// Returned in first-seen (`id`) order — the verdict stream order.
    pub fn poll(&mut self, now: f64) -> Vec<(TrackedFlow, EvictionReason)> {
        let linger = CLOSE_LINGER_SECS.min(self.idle_timeout);
        let mut due: Vec<(FlowKey, EvictionReason)> = self
            .flows
            .values()
            .filter_map(|f| {
                let idle = now - f.last_ts;
                if f.conn.state() == TcpState::Closed && idle > linger {
                    Some((f.key, EvictionReason::Closed))
                } else if idle > self.idle_timeout {
                    Some((f.key, EvictionReason::Idle))
                } else {
                    None
                }
            })
            .collect();
        due.sort_by_key(|(key, _)| self.flows[key].id);
        due.into_iter()
            .map(|(key, reason)| (self.flows.remove(&key).expect("key just listed"), reason))
            .collect()
    }

    /// End-of-stream: retire everything still tracked, in `id` order.
    pub fn flush(&mut self) -> Vec<(TrackedFlow, EvictionReason)> {
        let mut rest: Vec<TrackedFlow> = self.flows.drain().map(|(_, f)| f).collect();
        rest.sort_by_key(|f| f.id);
        rest.into_iter().map(|f| (f, EvictionReason::Flush)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SynthSpec;

    fn table_after_replay(idle: f64) -> (FlowTable, Vec<(TrackedFlow, EvictionReason)>) {
        let mut table = FlowTable::new(idle);
        let mut evicted = Vec::new();
        for p in SynthSpec::parse("iscx:2:1").unwrap().replay() {
            table.push(p.ts, &p.frame);
            evicted.extend(table.poll(p.ts));
        }
        (table, evicted)
    }

    #[test]
    fn flows_get_first_seen_ids_and_directions() {
        let (mut table, evicted) = table_after_replay(1e9);
        let mut all = evicted;
        all.extend(table.flush());
        assert!(!all.is_empty());
        let ids: Vec<u64> = all.iter().map(|(f, _)| f.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len(), "ids unique");
        for (f, _) in &all {
            assert!(f.packets >= f.records.len() as u64);
            assert!(f.records.len() <= MAX_STORED_PACKETS);
            assert!(f.records.first().is_none_or(|r| r.from_client), "opener is the client");
            assert!(f.last_ts >= f.first_ts);
        }
    }

    #[test]
    fn idle_timeout_retires_quiet_flows() {
        let (_, evicted) = table_after_replay(0.005);
        assert!(
            evicted.iter().any(|(_, r)| *r == EvictionReason::Idle),
            "a 5ms idle cutoff must retire flows mid-replay"
        );
    }

    #[test]
    fn closed_tcp_flows_are_evicted_as_closed() {
        let (mut table, evicted) = table_after_replay(30.0);
        let mut all = evicted;
        // advance time far past every teardown
        all.extend(table.poll(1e6));
        assert!(
            all.iter()
                .any(|(f, r)| *r == EvictionReason::Closed && f.conn.state() == TcpState::Closed),
            "TCP teardown must surface as a Closed eviction"
        );
    }

    #[test]
    fn eviction_order_is_replay_invariant() {
        let (mut ta, mut ea) = table_after_replay(0.05);
        ea.extend(ta.flush());
        let (mut tb, mut eb) = table_after_replay(0.05);
        eb.extend(tb.flush());
        let a: Vec<(u64, &'static str)> = ea.iter().map(|(f, r)| (f.id, r.name())).collect();
        let b: Vec<(u64, &'static str)> = eb.iter().map(|(f, r)| (f.id, r.name())).collect();
        assert_eq!(a, b, "same replay, same eviction stream");
    }

    #[test]
    fn garbage_frames_are_rejected_not_panicked() {
        let mut table = FlowTable::new(1.0);
        assert_eq!(table.push(0.0, &[]), Ingest::NonIp);
        assert_eq!(table.push(0.0, &[0xde, 0xad, 0xbe, 0xef]), Ingest::NonIp);
        assert!(table.is_empty());
    }
}
